//! Threaded functional runner — a concurrency cross-check for the DES.
//!
//! The discrete-event engine in [`crate::sim`] is deterministic; this
//! runner executes the *same* PE programs on real OS threads connected by
//! pluggable [`Transport`] channels. It carries no notion of simulated
//! time — its purpose is to validate that protocol logic (blocking sends
//! and receives, message ordering per channel) is correct under genuine
//! parallel, racy execution, not just under the event queue's
//! serialization. Integration tests run both engines on the same
//! programs and compare the functional outputs.
//!
//! Channel capacity is accounted in **bytes**, matching the DES and the
//! paper's eq. (2) buffer bounds. The transport implementation is chosen
//! per run via [`ThreadedRunner::transport`]: the `Mutex`+`Condvar`
//! reference queue, or the lock-free ring sized to the static bound.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use crate::error::{PlatformError, Result};
use crate::sim::{ChannelId, ChannelSpec, Op, PeId, PeLocal, Program};
use crate::transport::{Transport, TransportError, TransportKind};

/// Default bound on every blocking channel operation before the runner
/// declares a deadlock. Generous: real systems block for microseconds,
/// so half a minute of no progress is unambiguous even on a loaded CI
/// machine.
pub const DEFAULT_DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Functional result of one PE's threaded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedPeResult {
    /// Final keyed store of the PE.
    pub store: HashMap<String, Vec<u8>>,
    /// Messages left unconsumed in the PE's inbox.
    pub leftover_inbox: usize,
}

/// Builder-style configuration for threaded execution.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use spi_platform::{ChannelSpec, ChannelId, Op, Program, ThreadedRunner, TransportKind};
///
/// let channels = vec![ChannelSpec::default()];
/// let producer = Program::new(vec![Op::Send {
///     channel: ChannelId(0),
///     payload: Box::new(|_| vec![42u8; 4]),
/// }], 3);
/// let consumer = Program::new(vec![Op::Recv { channel: ChannelId(0) }], 3);
/// let results = ThreadedRunner::new()
///     .transport(TransportKind::Ring)
///     .timeout(Duration::from_secs(5))
///     .run(&channels, vec![producer, consumer])?;
/// assert_eq!(results[1].leftover_inbox, 3);
/// # Ok::<(), spi_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThreadedRunner {
    kind: TransportKind,
    timeout: Duration,
}

impl Default for ThreadedRunner {
    fn default() -> Self {
        ThreadedRunner {
            kind: TransportKind::default(),
            timeout: DEFAULT_DEADLOCK_TIMEOUT,
        }
    }
}

impl ThreadedRunner {
    /// A runner with the default transport ([`TransportKind::Locked`])
    /// and deadlock timeout ([`DEFAULT_DEADLOCK_TIMEOUT`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the transport implementation used for every channel.
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the deadlock timeout bounding each blocking channel
    /// operation.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The configured transport kind.
    pub fn transport_kind(&self) -> TransportKind {
        self.kind
    }

    /// The configured deadlock timeout.
    pub fn deadlock_timeout(&self) -> Duration {
        self.timeout
    }

    /// Executes `programs` on OS threads over `channels`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Deadlock`] once any thread's blocking operation
    /// times out; [`PlatformError::MessageExceedsCapacity`] when a
    /// payload exceeds the channel's per-message bound;
    /// [`PlatformError::ZeroCapacity`] for unusable channels.
    pub fn run(
        &self,
        channels: &[ChannelSpec],
        programs: Vec<Program>,
    ) -> Result<Vec<ThreadedPeResult>> {
        for (i, c) in channels.iter().enumerate() {
            if c.capacity_bytes == 0 {
                return Err(PlatformError::ZeroCapacity {
                    channel: ChannelId(i),
                });
            }
        }
        let endpoints: Vec<Box<dyn Transport>> =
            channels.iter().map(|c| self.kind.instantiate(c)).collect();
        let timeout = self.timeout;

        let timed_out: Mutex<Vec<PeId>> = Mutex::new(Vec::new());
        let fault: Mutex<Option<PlatformError>> = Mutex::new(None);
        let results: Mutex<Vec<Option<ThreadedPeResult>>> =
            Mutex::new((0..programs.len()).map(|_| None).collect());

        thread::scope(|scope| {
            for (idx, mut program) in programs.into_iter().enumerate() {
                let endpoints = &endpoints;
                let timed_out = &timed_out;
                let fault = &fault;
                let results = &results;
                scope.spawn(move || {
                    let mut local = PeLocal::default();
                    let mut prologue = std::mem::take(&mut program.prologue);
                    let mut aborted = false;
                    for op in &mut prologue {
                        if !step(op, &mut local, endpoints, timeout, idx, timed_out, fault) {
                            aborted = true;
                            break;
                        }
                    }
                    if !aborted {
                        'outer: for iter in 0..program.iterations {
                            local.iter = iter;
                            for op in &mut program.ops {
                                if !step(op, &mut local, endpoints, timeout, idx, timed_out, fault)
                                {
                                    break 'outer;
                                }
                            }
                        }
                    }
                    results.lock().expect("results lock")[idx] = Some(ThreadedPeResult {
                        store: std::mem::take(&mut local.store),
                        leftover_inbox: local.inbox.len(),
                    });
                });
            }
        });

        if let Some(err) = fault.into_inner().expect("fault lock") {
            return Err(err);
        }
        let blocked = timed_out.into_inner().expect("timed_out lock");
        if !blocked.is_empty() {
            return Err(PlatformError::Deadlock { blocked });
        }
        Ok(results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .map(|r| r.expect("every PE thread stores a result"))
            .collect())
    }
}

/// Executes one op; returns `false` when the PE must abort (timeout or
/// transport fault), recording the cause.
fn step(
    op: &mut Op,
    local: &mut PeLocal,
    endpoints: &[Box<dyn Transport>],
    timeout: Duration,
    idx: usize,
    timed_out: &Mutex<Vec<PeId>>,
    fault: &Mutex<Option<PlatformError>>,
) -> bool {
    match op {
        Op::Compute { work, .. } => {
            let _cycles = work(local);
            true
        }
        Op::Send { channel, payload } => {
            let data = payload(local);
            match endpoints[channel.0].send(&data, timeout) {
                Ok(()) => true,
                Err(TransportError::Timeout { .. }) => {
                    timed_out.lock().expect("timed_out lock").push(PeId(idx));
                    false
                }
                Err(e) => {
                    record_fault(fault, *channel, &data, &e, endpoints);
                    false
                }
            }
        }
        Op::Recv { channel } => match endpoints[channel.0].recv(timeout) {
            Ok(data) => {
                local.inbox.push_back((*channel, data));
                true
            }
            Err(_) => {
                timed_out.lock().expect("timed_out lock").push(PeId(idx));
                false
            }
        },
        // The functional runner has no simulated clock.
        Op::WaitUntil { .. } => true,
    }
}

/// Maps a non-timeout transport failure to the platform error space.
fn record_fault(
    fault: &Mutex<Option<PlatformError>>,
    channel: ChannelId,
    data: &[u8],
    err: &TransportError,
    endpoints: &[Box<dyn Transport>],
) {
    // Blocking sends only fail with Timeout (handled by the caller) or
    // TooLarge; map everything else conservatively to the same shape.
    let bytes = match err {
        TransportError::TooLarge { bytes, .. } => *bytes,
        _ => data.len(),
    };
    let mapped = PlatformError::MessageExceedsCapacity {
        channel,
        bytes,
        capacity: endpoints[channel.0].capacity_bytes(),
    };
    let mut slot = fault.lock().expect("fault lock");
    if slot.is_none() {
        *slot = Some(mapped);
    }
}

/// Executes programs with the default (locked) transport; see
/// [`ThreadedRunner`] for transport selection and the module docs for
/// semantics.
///
/// `timeout` bounds every blocking channel operation; a deadlocked
/// program surfaces as [`PlatformError::Deadlock`] once any thread times
/// out.
///
/// # Errors
///
/// As [`ThreadedRunner::run`].
pub fn run_threaded(
    channels: &[ChannelSpec],
    programs: Vec<Program>,
    timeout: Duration,
) -> Result<Vec<ThreadedPeResult>> {
    ThreadedRunner::new()
        .timeout(timeout)
        .run(channels, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ChannelId, ChannelSpec};

    /// Every runner test runs under both transports — the executor must
    /// be implementation-agnostic.
    fn kinds() -> [TransportKind; 2] {
        [TransportKind::Locked, TransportKind::Ring]
    }

    #[test]
    fn threaded_pipeline_matches_expectations() {
        for kind in kinds() {
            let channels = vec![ChannelSpec::default()];
            let producer = Program::new(
                vec![Op::Send {
                    channel: ChannelId(0),
                    payload: Box::new(|l| vec![l.iter as u8 * 3]),
                }],
                4,
            );
            let consumer = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(0),
                    },
                    Op::Compute {
                        label: "fold".into(),
                        work: Box::new(|l| {
                            let v = l.take_from(ChannelId(0)).expect("data");
                            let mut acc = l.store.remove("acc").unwrap_or_default();
                            acc.push(v[0]);
                            l.store.insert("acc".into(), acc);
                            0
                        }),
                    },
                ],
                4,
            );
            let results = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_secs(5))
                .run(&channels, vec![producer, consumer])
                .unwrap();
            assert_eq!(results[1].store["acc"], vec![0, 3, 6, 9], "{kind:?}");
            assert_eq!(results[1].leftover_inbox, 0);
        }
    }

    #[test]
    fn threaded_deadlock_times_out() {
        for kind in kinds() {
            let channels = vec![ChannelSpec::default(), ChannelSpec::default()];
            let a = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(1),
                    },
                    Op::Send {
                        channel: ChannelId(0),
                        payload: Box::new(|_| vec![0]),
                    },
                ],
                1,
            );
            let b = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(0),
                    },
                    Op::Send {
                        channel: ChannelId(1),
                        payload: Box::new(|_| vec![0]),
                    },
                ],
                1,
            );
            let err = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_millis(100))
                .run(&channels, vec![a, b]);
            assert!(
                matches!(err, Err(PlatformError::Deadlock { .. })),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn zero_capacity_rejected_up_front() {
        let channels = vec![ChannelSpec {
            capacity_bytes: 0,
            ..ChannelSpec::default()
        }];
        let err = run_threaded(&channels, vec![], Duration::from_secs(1));
        assert!(matches!(err, Err(PlatformError::ZeroCapacity { .. })));
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        // One-slot channel: producer cannot run more than one message
        // ahead; with a slow consumer the run still completes.
        for kind in kinds() {
            let channels = vec![ChannelSpec {
                capacity_bytes: 4,
                word_bytes: 4,
                ..ChannelSpec::default()
            }];
            let producer = Program::new(
                vec![Op::Send {
                    channel: ChannelId(0),
                    payload: Box::new(|_| vec![1, 2, 3, 4]),
                }],
                16,
            );
            let consumer = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(0),
                    },
                    Op::Compute {
                        label: "drop".into(),
                        work: Box::new(|l| {
                            let _ = l.take_from(ChannelId(0));
                            std::thread::sleep(Duration::from_millis(1));
                            0
                        }),
                    },
                ],
                16,
            );
            let results = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_secs(10))
                .run(&channels, vec![producer, consumer])
                .unwrap();
            assert_eq!(results[1].leftover_inbox, 0, "{kind:?}");
        }
    }

    #[test]
    fn oversized_message_surfaces_as_capacity_error() {
        // Ring slots are the declared max message size; a payload larger
        // than the slot is a programming error, not a deadlock.
        let channels = vec![ChannelSpec {
            capacity_bytes: 16,
            max_message_bytes: 4,
            ..ChannelSpec::default()
        }];
        let producer = Program::new(
            vec![Op::Send {
                channel: ChannelId(0),
                payload: Box::new(|_| vec![0u8; 9]),
            }],
            1,
        );
        let consumer = Program::new(
            vec![Op::Recv {
                channel: ChannelId(0),
            }],
            1,
        );
        let err = ThreadedRunner::new()
            .transport(TransportKind::Ring)
            .timeout(Duration::from_millis(200))
            .run(&channels, vec![producer, consumer]);
        assert!(matches!(
            err,
            Err(PlatformError::MessageExceedsCapacity { bytes: 9, .. })
        ));
    }

    #[test]
    fn default_runner_uses_locked_transport_and_default_timeout() {
        let r = ThreadedRunner::new();
        assert_eq!(r.transport_kind(), TransportKind::Locked);
        assert_eq!(r.deadlock_timeout(), DEFAULT_DEADLOCK_TIMEOUT);
    }
}

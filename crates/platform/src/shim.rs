//! Instrumentable concurrency primitives for the transport layer.
//!
//! Every atomic, lock, park/unpark and clock read on the
//! [`RingTransport`](crate::RingTransport) hot path goes through this
//! module instead of using `std` directly. In a normal build the
//! wrappers compile down to the exact `std` operation (the types are
//! `repr`-identical newtypes and every method is `#[inline]`), so the
//! production semantics and codegen are unchanged.
//!
//! With the `verify-shim` cargo feature enabled, each operation first
//! consults the bounded model checker in [`crate::verify`]: when the
//! calling thread belongs to an active exploration session the
//! operation becomes a *schedule point* — the thread pauses, declares
//! the operation it is about to perform, and waits for the explorer to
//! grant it. This is how the DFS/sleep-set explorer enumerates
//! interleavings of the ring + waitlist protocol. When no session is
//! active (the common case even with the feature on, e.g. in release
//! benches that merely link `spi-verify`), the cost is one relaxed
//! load of a global counter per operation.
//!
//! The module also centralizes the *time source* ([`now`]): real runs
//! read the monotonic clock once per blocking slice and reuse it for
//! both the supervision deadline and progress accounting, while model
//! runs observe a frozen clock so park timeouts can never fire inside
//! an exploration (a lost wakeup therefore surfaces as a deadlock, not
//! as a silently-absorbed timeout).

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

#[cfg(feature = "verify-shim")]
use crate::verify;

/// A `usize` atomic that doubles as a model-checker schedule point.
///
/// Mirrors the subset of [`std::sync::atomic::AtomicUsize`] the
/// transport uses: `load`, `store` and `compare_exchange_weak`.
#[derive(Debug)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl AtomicUsize {
    /// Creates an atomic with an identifying label (shown in model
    /// traces; ignored in normal builds).
    #[inline]
    pub fn labeled(v: usize, label: &'static str) -> Self {
        #[cfg(not(feature = "verify-shim"))]
        let _ = label;
        Self {
            inner: std::sync::atomic::AtomicUsize::new(v),
            #[cfg(feature = "verify-shim")]
            id: verify::next_object_id(label),
        }
    }

    /// Creates an unlabeled atomic.
    #[inline]
    pub fn new(v: usize) -> Self {
        Self::labeled(v, "atomic")
    }

    /// Atomic load; a schedule point under an active model session.
    #[inline]
    pub fn load(&self, order: Ordering) -> usize {
        #[cfg(feature = "verify-shim")]
        verify::op_load(self.id);
        self.inner.load(order)
    }

    /// Atomic store; a schedule point under an active model session.
    #[inline]
    pub fn store(&self, v: usize, order: Ordering) {
        #[cfg(feature = "verify-shim")]
        verify::op_store(self.id);
        self.inner.store(v, order);
    }

    /// Weak compare-exchange; a schedule point under an active model
    /// session (declared as a read-modify-write).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        #[cfg(feature = "verify-shim")]
        verify::op_rmw(self.id);
        self.inner
            .compare_exchange_weak(current, new, success, failure)
    }
}

/// Memory fence. Under the model this is a no-op: the explorer only
/// enumerates sequentially-consistent interleavings (one thread runs
/// at a time, every effect is globally visible before the next grant),
/// so fences add no behavior — see DESIGN.md §12 for what that model
/// can and cannot find.
#[inline]
pub fn fence(order: Ordering) {
    std::sync::atomic::fence(order);
}

/// A mutex whose acquire/release are model schedule points.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl<T> Mutex<T> {
    /// Creates a mutex with an identifying label for model traces.
    #[inline]
    pub fn labeled(value: T, label: &'static str) -> Self {
        #[cfg(not(feature = "verify-shim"))]
        let _ = label;
        Self {
            inner: std::sync::Mutex::new(value),
            #[cfg(feature = "verify-shim")]
            id: verify::next_object_id(label),
        }
    }

    /// Acquires the lock, panicking on poisoning (the transport never
    /// unwinds while holding its waitlist lock in a healthy run).
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "verify-shim")]
        verify::op_lock(self.id);
        MutexGuard {
            inner: Some(self.inner.lock().expect("shim mutex poisoned")),
            #[cfg(feature = "verify-shim")]
            id: self.id,
        }
    }
}

/// Guard returned by [`Mutex::lock`]; release is a schedule point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Declare the release *before* dropping the inner guard: the
        // explorer clears the model-side owner at the grant, and no
        // other model thread can be granted the lock until this thread
        // reaches its next schedule point — by which time the real
        // guard below is gone.
        #[cfg(feature = "verify-shim")]
        verify::op_unlock(self.id);
        self.inner.take();
    }
}

/// Identity of a thread as seen by the wait list (OS thread id in real
/// runs, model thread index under an exploration session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadIdent {
    os: std::thread::ThreadId,
    #[cfg(feature = "verify-shim")]
    model: Option<usize>,
}

/// A parkable thread handle (the shim analogue of
/// [`std::thread::Thread`]) stored in transport wait lists.
#[derive(Debug, Clone)]
pub struct ThreadHandle {
    os: std::thread::Thread,
    #[cfg(feature = "verify-shim")]
    model: Option<usize>,
}

impl ThreadHandle {
    /// Stable identity for deregistration (`retain` by id).
    #[inline]
    pub fn id(&self) -> ThreadIdent {
        ThreadIdent {
            os: self.os.id(),
            #[cfg(feature = "verify-shim")]
            model: self.model,
        }
    }

    /// Makes a park token available to the thread. Under the model the
    /// token is session state and the grant is a schedule point; in
    /// real runs this is exactly [`std::thread::Thread::unpark`].
    #[inline]
    pub fn unpark(&self) {
        #[cfg(feature = "verify-shim")]
        if let Some(tid) = self.model {
            if verify::op_unpark(tid) {
                return;
            }
        }
        self.os.unpark();
    }
}

/// Handle for the calling thread (model-aware [`std::thread::current`]).
#[inline]
pub fn current() -> ThreadHandle {
    ThreadHandle {
        os: std::thread::current(),
        #[cfg(feature = "verify-shim")]
        model: verify::worker_tid(),
    }
}

/// Blocks the calling thread until a park token is available or the
/// timeout elapses. Under the model the timeout *never* fires (the
/// session clock is frozen), so a wakeup that production code would
/// paper over with its bounded park slice becomes an observable
/// deadlock in the explorer.
#[inline]
pub fn park_timeout(dur: Duration) {
    #[cfg(feature = "verify-shim")]
    if verify::op_park() {
        return;
    }
    std::thread::park_timeout(dur);
}

/// Reads the transport time source. Real runs read the monotonic
/// clock; under a model session every call returns the session epoch,
/// freezing deadlines for the duration of the exploration.
#[inline]
pub fn now() -> Instant {
    #[cfg(feature = "verify-shim")]
    if let Some(t) = verify::frozen_now() {
        return t;
    }
    Instant::now()
}

/// Scales a spin budget: model sessions spin zero times (a spin
/// retry is indistinguishable from a scheduling choice the explorer
/// already enumerates), real runs keep the configured budget.
#[inline]
pub fn spin_budget(real: u32) -> u32 {
    #[cfg(feature = "verify-shim")]
    if verify::in_session() {
        return 0;
    }
    real
}

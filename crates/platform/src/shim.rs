//! Instrumentable concurrency primitives for the transport layer.
//!
//! Every atomic, lock, condvar, park/unpark, sleep, spawn and clock
//! read on the transport hot paths goes through this module instead of
//! using `std` directly. In a normal build the wrappers compile down to
//! the exact `std` operation (the types are `repr`-identical newtypes
//! and every method is `#[inline]`), so the production semantics and
//! codegen are unchanged.
//!
//! With the `verify-shim` cargo feature enabled, each operation first
//! consults the two model engines in this crate:
//!
//! * the bounded model checker in [`crate::verify`] (DFS + sleep sets
//!   over a fixed thread set, frozen clock), and
//! * the seeded whole-system simulator in [`crate::simrt`] (one random
//!   schedule per seed, dynamic threads, virtual clock).
//!
//! When the calling thread belongs to an active session of either
//! engine the operation becomes a *schedule point* — the thread pauses,
//! declares the operation it is about to perform, and waits for the
//! controller to grant it. When no session is active (the common case
//! even with the feature on), the cost is one relaxed load of a global
//! counter per operation.
//!
//! The module also centralizes the *time source* ([`now`]): real runs
//! read the monotonic clock once per blocking slice and reuse it for
//! both the supervision deadline and progress accounting; `verify`
//! sessions observe a frozen clock so park timeouts can never fire
//! inside an exploration; `simrt` sessions observe a virtual clock that
//! advances only when every simulated thread is blocked on a deadline.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

#[cfg(feature = "verify-shim")]
use crate::simrt;
#[cfg(feature = "verify-shim")]
use crate::verify;

#[cfg(feature = "verify-shim")]
#[inline]
fn object_id(label: &'static str) -> usize {
    // At most one engine has a session on the calling thread; ids are
    // per-session, so the namespaces never mix.
    if let Some(id) = simrt::next_object_id(label) {
        return id;
    }
    verify::next_object_id(label)
}

/// A `usize` atomic that doubles as a model-checker schedule point.
///
/// Mirrors the subset of [`std::sync::atomic::AtomicUsize`] the
/// transport uses: `load`, `store` and `compare_exchange_weak`.
#[derive(Debug)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl AtomicUsize {
    /// Creates an atomic with an identifying label (shown in model
    /// traces; ignored in normal builds).
    #[inline]
    pub fn labeled(v: usize, label: &'static str) -> Self {
        #[cfg(not(feature = "verify-shim"))]
        let _ = label;
        Self {
            inner: std::sync::atomic::AtomicUsize::new(v),
            #[cfg(feature = "verify-shim")]
            id: object_id(label),
        }
    }

    /// Creates an unlabeled atomic.
    #[inline]
    pub fn new(v: usize) -> Self {
        Self::labeled(v, "atomic")
    }

    /// Atomic load; a schedule point under an active model session.
    #[inline]
    pub fn load(&self, order: Ordering) -> usize {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_load(self.id);
            verify::op_load(self.id);
        }
        self.inner.load(order)
    }

    /// Atomic store; a schedule point under an active model session.
    #[inline]
    pub fn store(&self, v: usize, order: Ordering) {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_store(self.id);
            verify::op_store(self.id);
        }
        self.inner.store(v, order);
    }

    /// Weak compare-exchange; a schedule point under an active model
    /// session (declared as a read-modify-write).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_rmw(self.id);
            verify::op_rmw(self.id);
        }
        self.inner
            .compare_exchange_weak(current, new, success, failure)
    }
}

/// A `bool` atomic that doubles as a model schedule point (the socket
/// transport's `closed` / `hungry` flags).
#[derive(Debug)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl AtomicBool {
    /// Creates a bool atomic with an identifying label for model traces.
    #[inline]
    pub fn labeled(v: bool, label: &'static str) -> Self {
        #[cfg(not(feature = "verify-shim"))]
        let _ = label;
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
            #[cfg(feature = "verify-shim")]
            id: object_id(label),
        }
    }

    /// Creates an unlabeled bool atomic.
    #[inline]
    pub fn new(v: bool) -> Self {
        Self::labeled(v, "flag")
    }

    /// Atomic load; a schedule point under an active model session.
    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_load(self.id);
            verify::op_load(self.id);
        }
        self.inner.load(order)
    }

    /// Atomic store; a schedule point under an active model session.
    #[inline]
    pub fn store(&self, v: bool, order: Ordering) {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_store(self.id);
            verify::op_store(self.id);
        }
        self.inner.store(v, order);
    }

    /// Atomic swap; a schedule point (read-modify-write) under a model
    /// session.
    #[inline]
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_rmw(self.id);
            verify::op_rmw(self.id);
        }
        self.inner.swap(v, order)
    }
}

/// Memory fence. Under the model this is a no-op: the explorer only
/// enumerates sequentially-consistent interleavings (one thread runs
/// at a time, every effect is globally visible before the next grant),
/// so fences add no behavior — see DESIGN.md §12 for what that model
/// can and cannot find.
#[inline]
pub fn fence(order: Ordering) {
    std::sync::atomic::fence(order);
}

/// A mutex whose acquire/release are model schedule points.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl<T> Mutex<T> {
    /// Creates a mutex with an identifying label for model traces.
    #[inline]
    pub fn labeled(value: T, label: &'static str) -> Self {
        #[cfg(not(feature = "verify-shim"))]
        let _ = label;
        Self {
            inner: std::sync::Mutex::new(value),
            #[cfg(feature = "verify-shim")]
            id: object_id(label),
        }
    }

    /// Creates an unlabeled mutex.
    #[inline]
    pub fn new(value: T) -> Self {
        Self::labeled(value, "mutex")
    }

    /// Acquires the lock, panicking on poisoning (the transport never
    /// unwinds while holding its locks in a healthy run).
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_lock(self.id);
            verify::op_lock(self.id);
        }
        MutexGuard {
            inner: Some(self.inner.lock().expect("shim mutex poisoned")),
            lock: self,
        }
    }
}

/// Guard returned by [`Mutex::lock`]; release is a schedule point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Back-reference so [`Condvar`] can re-acquire the same mutex
    /// after a modeled wait.
    lock: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Declare the release *before* dropping the inner guard: the
        // explorer clears the model-side owner at the grant, and no
        // other model thread can be granted the lock until this thread
        // reaches its next schedule point — by which time the real
        // guard below is gone.
        #[cfg(feature = "verify-shim")]
        {
            simrt::op_unlock(self.lock.id);
            verify::op_unlock(self.lock.id);
        }
        self.inner.take();
    }
}

/// A condition variable whose wait/notify are model schedule points.
///
/// Mirrors the subset of [`std::sync::Condvar`] the transports use.
/// Under a `simrt` session the wait is virtual: the deadline is a
/// virtual-clock instant and the simulated clock only advances to it
/// when no other simulated thread can run.
#[derive(Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
    #[cfg(feature = "verify-shim")]
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a condvar with an identifying label for model traces.
    #[inline]
    pub fn labeled(label: &'static str) -> Self {
        #[cfg(not(feature = "verify-shim"))]
        let _ = label;
        Self {
            inner: std::sync::Condvar::new(),
            #[cfg(feature = "verify-shim")]
            id: object_id(label),
        }
    }

    /// Creates an unlabeled condvar.
    #[inline]
    pub fn new() -> Self {
        Self::labeled("condvar")
    }

    /// Wakes one thread waiting on this condvar.
    #[inline]
    pub fn notify_one(&self) {
        #[cfg(feature = "verify-shim")]
        if simrt::op_cv_notify(self.id, false) {
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every thread waiting on this condvar.
    #[inline]
    pub fn notify_all(&self) {
        #[cfg(feature = "verify-shim")]
        if simrt::op_cv_notify(self.id, true) {
            return;
        }
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing and re-acquiring the guard's
    /// mutex around the wait.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    /// Blocks until notified or `dur` elapses. Returns the re-acquired
    /// guard and whether the wait timed out.
    #[inline]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        self.wait_inner(guard, Some(dur))
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        // Take the inner std guard out without running the shim guard's
        // Drop (which would declare a spurious model unlock — under a
        // sim session the release is part of the CvWait declaration).
        let mut g = std::mem::ManuallyDrop::new(guard);
        let inner = g.inner.take().expect("guard taken");
        #[cfg(feature = "verify-shim")]
        if simrt::in_session() {
            // Modeled wait: atomically (from the model's view, at the
            // CvWait declaration) release the mutex and enqueue on the
            // condvar; the real guard is dropped first so the real
            // mutex is free for whichever thread the controller grants
            // next.
            drop(inner);
            let timed_out = simrt::op_cv_wait(self.id, lock.id, dur);
            return (lock.lock(), timed_out);
        }
        match dur {
            Some(d) => {
                let (inner, res) = self
                    .inner
                    .wait_timeout(inner, d)
                    .expect("shim mutex poisoned");
                (
                    MutexGuard {
                        inner: Some(inner),
                        lock,
                    },
                    res.timed_out(),
                )
            }
            None => {
                let inner = self.inner.wait(inner).expect("shim mutex poisoned");
                (
                    MutexGuard {
                        inner: Some(inner),
                        lock,
                    },
                    false,
                )
            }
        }
    }
}

/// Identity of a thread as seen by the wait list (OS thread id in real
/// runs, model thread index under a model session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadIdent {
    os: std::thread::ThreadId,
    #[cfg(feature = "verify-shim")]
    model: Option<usize>,
    #[cfg(feature = "verify-shim")]
    sim: Option<usize>,
}

/// A parkable thread handle (the shim analogue of
/// [`std::thread::Thread`]) stored in transport wait lists.
#[derive(Debug, Clone)]
pub struct ThreadHandle {
    os: std::thread::Thread,
    #[cfg(feature = "verify-shim")]
    model: Option<usize>,
    #[cfg(feature = "verify-shim")]
    sim: Option<usize>,
}

impl ThreadHandle {
    /// Stable identity for deregistration (`retain` by id).
    #[inline]
    pub fn id(&self) -> ThreadIdent {
        ThreadIdent {
            os: self.os.id(),
            #[cfg(feature = "verify-shim")]
            model: self.model,
            #[cfg(feature = "verify-shim")]
            sim: self.sim,
        }
    }

    /// Makes a park token available to the thread. Under a model the
    /// token is session state and the grant is a schedule point; in
    /// real runs this is exactly [`std::thread::Thread::unpark`].
    #[inline]
    pub fn unpark(&self) {
        #[cfg(feature = "verify-shim")]
        {
            if let Some(tid) = self.sim {
                if simrt::op_unpark(tid) {
                    return;
                }
            }
            if let Some(tid) = self.model {
                if verify::op_unpark(tid) {
                    return;
                }
            }
        }
        self.os.unpark();
    }
}

/// Handle for the calling thread (model-aware [`std::thread::current`]).
#[inline]
pub fn current() -> ThreadHandle {
    ThreadHandle {
        os: std::thread::current(),
        #[cfg(feature = "verify-shim")]
        model: verify::worker_tid(),
        #[cfg(feature = "verify-shim")]
        sim: simrt::worker_tid(),
    }
}

/// Blocks the calling thread until a park token is available or the
/// timeout elapses. Under `verify` the timeout *never* fires (the
/// session clock is frozen), so a wakeup that production code would
/// paper over with its bounded park slice becomes an observable
/// deadlock in the explorer. Under `simrt` the timeout is a virtual
/// deadline: it fires only when the whole simulation is otherwise
/// blocked (and never fires in strict-park mode).
#[inline]
pub fn park_timeout(dur: Duration) {
    #[cfg(feature = "verify-shim")]
    {
        if simrt::op_park(Some(dur)) {
            return;
        }
        if verify::op_park() {
            return;
        }
    }
    std::thread::park_timeout(dur);
}

/// Suspends the calling thread for `dur`. Under a `simrt` session this
/// is a virtual-clock sleep (a schedule point with a deadline); in real
/// runs it is exactly [`std::thread::sleep`].
#[inline]
pub fn sleep(dur: Duration) {
    #[cfg(feature = "verify-shim")]
    if simrt::op_sleep(dur) {
        return;
    }
    std::thread::sleep(dur);
}

/// Reads the transport time source. Real runs read the monotonic
/// clock; under a `verify` session every call returns the session
/// epoch (frozen), and under a `simrt` session the session epoch plus
/// the current virtual offset.
#[inline]
pub fn now() -> Instant {
    #[cfg(feature = "verify-shim")]
    {
        if let Some(t) = simrt::virtual_now() {
            return t;
        }
        if let Some(t) = verify::frozen_now() {
            return t;
        }
    }
    Instant::now()
}

/// Scales a spin budget: model sessions spin zero times (a spin
/// retry is indistinguishable from a scheduling choice the explorer
/// already enumerates), real runs keep the configured budget.
#[inline]
pub fn spin_budget(real: u32) -> u32 {
    #[cfg(feature = "verify-shim")]
    if verify::in_session() || simrt::in_session() {
        return 0;
    }
    real
}

/// Spawns a detached background thread (the socket transport's ack
/// reader, deadline flusher and receive pump). Under a `simrt` session
/// the thread is registered as a simulated thread: its every shim
/// operation becomes a schedule point and the run does not complete
/// until it exits — a background thread that never terminates surfaces
/// as a simulated hang instead of a leaked OS thread.
pub fn spawn(name: &'static str, f: impl FnOnce() + Send + 'static) {
    #[cfg(feature = "verify-shim")]
    if let Some(sess) = simrt::session_handle() {
        let tid = simrt::register_child(&sess, name.to_string());
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || simrt::child_main(sess, tid, f))
            .expect("spawn shim thread");
        return;
    }
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawn shim thread");
}

/// Model-aware [`std::thread::scope`]: threads spawned through the
/// [`Scope`] become simulated threads under a `simrt` session, and the
/// implicit joins at scope exit are modeled as explicit join schedule
/// points (so the controller never sees the scope owner silently block
/// in a real join).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            #[cfg(feature = "verify-shim")]
            sim: simrt::session_handle(),
            #[cfg(feature = "verify-shim")]
            children: std::cell::RefCell::new(Vec::new()),
        };
        let out = f(&wrapper);
        // Model the joins std::thread::scope is about to perform: each
        // is a schedule point enabled once the child's simulated thread
        // has finished (after which its real exit is imminent, so the
        // real join below blocks only momentarily).
        #[cfg(feature = "verify-shim")]
        if wrapper.sim.is_some() {
            for tid in wrapper.children.borrow().iter() {
                simrt::op_join(*tid);
            }
        }
        out
    })
}

/// Spawn handle collection for [`scope`]. Only the closure-spawning
/// subset of [`std::thread::Scope`] the runners use is mirrored; under
/// a sim session spawning from any thread but the scope owner is not
/// supported (the child registry is single-threaded).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    #[cfg(feature = "verify-shim")]
    sim: Option<simrt::SessionHandle>,
    #[cfg(feature = "verify-shim")]
    children: std::cell::RefCell<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread with a deterministic display name for
    /// model traces and event logs.
    pub fn spawn_named<F>(&self, name: String, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        #[cfg(feature = "verify-shim")]
        if let Some(sess) = &self.sim {
            let tid = simrt::register_child(sess, name.clone());
            self.children.borrow_mut().push(tid);
            let sess = sess.clone();
            std::thread::Builder::new()
                .name(name)
                .spawn_scoped(self.inner, move || simrt::child_main(sess, tid, f))
                .expect("spawn scoped shim thread");
            return;
        }
        std::thread::Builder::new()
            .name(name)
            .spawn_scoped(self.inner, f)
            .expect("spawn scoped shim thread");
    }

    /// Spawns a scoped thread (auto-named `t<index>` in model traces).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_named(format!("t{}", self.next_name_index()), f);
    }

    fn next_name_index(&self) -> usize {
        #[cfg(feature = "verify-shim")]
        {
            self.children.borrow().len()
        }
        #[cfg(not(feature = "verify-shim"))]
        {
            0
        }
    }
}

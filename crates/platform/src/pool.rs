//! Pooled token buffers — the paper's shared-memory message store.
//!
//! The SPI optimization this module reproduces is §5.2's pointer
//! exchange: `SPI_send`/`SPI_receive` never copy payloads, they pass
//! *pointers into statically bounded shared buffers*. [`BufferPool`] is
//! that buffer: a slab of `slots × slot_bytes` bytes allocated once at
//! setup — when sized from the builder this is exactly the eq. (2)
//! bound `B(e) = (Γ + delay(e)) · c(e)` cut into eq. (1) packed-token
//! slots `c(e)` — and never touched by the allocator again.
//!
//! Ownership of a slot moves through the system as a [`TokenBuf`]
//! lease:
//!
//! 1. the producer *acquires* a free slot (blocking when the pool is
//!    exhausted — that is the eq. (2) backpressure),
//! 2. writes the payload in place and *sends* the lease — only the slot
//!    index crosses the transport (see `PointerTransport`),
//! 3. the consumer *receives* a lease over the same bytes, reads them
//!    in place,
//! 4. dropping the lease *releases* the slot back to the pool — the
//!    UBS-style acknowledgement closing the flow-control loop.
//!
//! The free list is itself a lock-free index ring (the proven Vyukov
//! ring from [`crate::transport`], carrying 4-byte slot indices), so
//! acquisition parks/wakes exactly like a transport operation and the
//! whole protocol stays explorable by the `verify-shim` model checker.
//!
//! Leases release on *any* drop path — normal consumption, early
//! return, panic unwind, or a fault injector discarding a message — so
//! the pool cannot leak slots while leases are used linearly
//! (`mem::forget` excepted, as for every RAII resource).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

use crate::transport::{RingTransport, Transport, TransportError};

/// Bytes of one slot-index message on the pool's free ring.
const IDX_BYTES: usize = 4;

/// Shared pool state: the payload slab plus the free-index ring. Owned
/// jointly by the pool handle and every outstanding lease, so a lease
/// can outlive the transport that produced it.
pub(crate) struct PoolInner {
    slot_bytes: usize,
    slots: usize,
    /// `slots × slot_bytes` contiguous payload bytes. A slot's bytes
    /// are only touched by the party currently holding its index — the
    /// producer between acquire and send, the consumer between receive
    /// and release — with the index handoffs ordered by the rings'
    /// release/acquire sequence protocol.
    slab: Box<[UnsafeCell<u8>]>,
    /// Free slot indices, carried as 4-byte messages. Releasing a slot
    /// enqueues its index (never blocks: indices are conserved, the
    /// ring holds exactly `slots`); acquiring dequeues one, parking
    /// when the pool is exhausted.
    free: RingTransport,
}

// SAFETY: slab bytes are only accessed through a slot's exclusive
// owner (see field docs); the free/data ring seq protocols provide the
// release/acquire edges between successive owners.
unsafe impl Sync for PoolInner {}

impl PoolInner {
    /// # Safety
    ///
    /// Caller must hold the lease for `slot` and keep `off + len`
    /// within `slot_bytes`.
    unsafe fn slice(&self, slot: u32, off: u32, len: u32) -> &[u8] {
        let base = slot as usize * self.slot_bytes + off as usize;
        std::slice::from_raw_parts(self.slab[base].get() as *const u8, len as usize)
    }

    /// # Safety
    ///
    /// As [`PoolInner::slice`], plus the caller must be the unique
    /// accessor for the duration of the borrow (guaranteed by holding
    /// `&mut TokenBuf`).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, slot: u32, off: u32, len: u32) -> &mut [u8] {
        let base = slot as usize * self.slot_bytes + off as usize;
        std::slice::from_raw_parts_mut(self.slab[base].get(), len as usize)
    }

    fn release(&self, slot: u32) {
        // Conserved indices: the free ring always has room for every
        // slot it was built for, so this cannot legitimately fail.
        self.free
            .try_send(&slot.to_le_bytes())
            .expect("free ring can always take a released slot back");
    }
}

/// A fixed slab of eq. (1)-sized token slots with a lock-free free
/// list — allocation-free after construction.
///
/// Cloning the handle is cheap (an `Arc` bump) and shares the slots.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use spi_platform::BufferPool;
///
/// let pool = BufferPool::new(4, 64);
/// let mut lease = pool.acquire(Duration::from_secs(1)).unwrap();
/// lease[..5].copy_from_slice(b"token");
/// lease.truncate(5);
/// assert_eq!(&*lease, b"token");
/// drop(lease); // slot returns to the pool
/// assert_eq!(pool.available(), 4);
/// ```
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("slots", &self.inner.slots)
            .field("slot_bytes", &self.inner.slot_bytes)
            .field("available", &self.available())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of `slots` slots (at least one) of `slot_bytes`
    /// (at least one byte) each. All allocation happens here.
    pub fn new(slots: usize, slot_bytes: usize) -> Self {
        let slots = slots.max(1);
        let slot_bytes = slot_bytes.max(1);
        let slab: Box<[UnsafeCell<u8>]> = (0..slots * slot_bytes)
            .map(|_| UnsafeCell::new(0))
            .collect();
        let free = RingTransport::new(slots * IDX_BYTES, IDX_BYTES);
        for i in 0..slots {
            free.try_send(&(i as u32).to_le_bytes())
                .expect("fresh free ring holds every slot index");
        }
        BufferPool {
            inner: Arc::new(PoolInner {
                slot_bytes,
                slots,
                slab,
                free,
            }),
        }
    }

    /// Number of slots in the pool (the eq. (2) bound in messages when
    /// built by the SPI system builder).
    pub fn slots(&self) -> usize {
        self.inner.slots
    }

    /// Bytes per slot (the eq. (1) packed-token capacity).
    pub fn slot_bytes(&self) -> usize {
        self.inner.slot_bytes
    }

    /// Slots currently free (point-in-time snapshot). A leak test
    /// asserts this returns to [`BufferPool::slots`] once every lease
    /// is dropped.
    pub fn available(&self) -> usize {
        self.inner.free.occupancy()
    }

    /// Whether `lease` was acquired from this pool (same slab).
    pub fn owns(&self, lease: &TokenBuf) -> bool {
        Arc::ptr_eq(&self.inner, &lease.inner)
    }

    /// Blocking acquisition of a free slot; the returned lease spans
    /// the full slot ([`TokenBuf::truncate`] before sending). Parks
    /// while the pool is exhausted — eq. (2) backpressure.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when no slot frees up in time; the
    /// `idle` field reports how long no release has been observed.
    pub fn acquire(&self, timeout: Duration) -> Result<TokenBuf, TransportError> {
        let mut slot = 0u32;
        self.inner.free.recv_index(&mut slot, timeout)?;
        Ok(self.lease(slot, 0, self.inner.slot_bytes as u32))
    }

    /// Non-blocking acquisition; `None` when the pool is exhausted.
    pub fn try_acquire(&self) -> Option<TokenBuf> {
        let mut slot = 0u32;
        self.inner.free.try_recv_index(&mut slot).ok()?;
        Some(self.lease(slot, 0, self.inner.slot_bytes as u32))
    }

    /// Wraps an owned slot index in a lease (crate-internal: the
    /// transport builds receive-side leases from ring descriptors).
    pub(crate) fn lease(&self, slot: u32, off: u32, len: u32) -> TokenBuf {
        TokenBuf {
            inner: Arc::clone(&self.inner),
            slot,
            off,
            len,
            detached: false,
        }
    }

    /// Consumes a lease without releasing its slot, returning the
    /// `(slot, off, len)` descriptor. The caller takes over the slot's
    /// ownership (crate-internal: the send path's pointer exchange).
    pub(crate) fn detach(lease: TokenBuf) -> (u32, u32, u32) {
        let mut lease = lease;
        lease.detached = true;
        (lease.slot, lease.off, lease.len)
    }
}

/// An exclusive lease over one pool slot — SPI's message token.
///
/// Dereferences to the payload bytes (`&[u8]` / `&mut [u8]`). Dropping
/// the lease releases the slot back to its pool, on every path
/// (including panic unwind), which is the pointer-exchange protocol's
/// slot-release acknowledgement.
pub struct TokenBuf {
    inner: Arc<PoolInner>,
    slot: u32,
    /// First payload byte within the slot (advanced by
    /// [`TokenBuf::trim_front`], e.g. to strip a verified frame header
    /// in place).
    off: u32,
    /// Payload length in bytes.
    len: u32,
    /// Set when the slot's ownership moved elsewhere (sent through a
    /// pointer transport); drop then releases nothing.
    detached: bool,
}

// SAFETY: a lease is the unique owner of its slot's bytes; moving it
// between threads moves that ownership (the rings order the handoff),
// and shared references only permit reads.
unsafe impl Send for TokenBuf {}
unsafe impl Sync for TokenBuf {}

impl TokenBuf {
    /// Payload length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes still addressable by this lease (slot size minus the
    /// trimmed front).
    pub fn capacity(&self) -> usize {
        self.inner.slot_bytes - self.off as usize
    }

    /// Shortens the payload to `len` bytes (no effect when already
    /// shorter). Producers acquire full-slot leases and truncate to
    /// the bytes actually written.
    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len as u32);
    }

    /// Drops the first `n` payload bytes *in place* — a pointer bump,
    /// no copy. Used to strip verified headers (supervision frames,
    /// SPI headers) off a received token.
    pub fn trim_front(&mut self, n: usize) {
        let n = (n as u32).min(self.len);
        self.off += n;
        self.len -= n;
    }
}

impl Deref for TokenBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // SAFETY: the lease owns the slot; off + len stay within the
        // slot by construction.
        unsafe { self.inner.slice(self.slot, self.off, self.len) }
    }
}

impl DerefMut for TokenBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as `deref`, and `&mut self` makes the borrow unique.
        unsafe { self.inner.slice_mut(self.slot, self.off, self.len) }
    }
}

impl Drop for TokenBuf {
    fn drop(&mut self) {
        if !self.detached {
            self.inner.release(self.slot);
        }
    }
}

impl fmt::Debug for TokenBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TokenBuf")
            .field("slot", &self.slot)
            .field("off", &self.off)
            .field("len", &self.len)
            .finish()
    }
}

impl AsRef<[u8]> for TokenBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A received message: either an owned heap buffer (copying
/// transports, the DES) or a pooled lease (pointer transports). Both
/// dereference to the payload bytes, so consuming code reads one type
/// regardless of the transport underneath.
#[derive(Debug)]
pub enum Token {
    /// Heap-owned payload (the historical representation).
    Owned(Vec<u8>),
    /// A zero-copy lease over pooled slot bytes.
    Pooled(TokenBuf),
}

impl Token {
    /// Payload length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            Token::Owned(v) => v.len(),
            Token::Pooled(t) => t.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this token is a pooled lease (true zero-copy path).
    pub fn is_pooled(&self) -> bool {
        matches!(self, Token::Pooled(_))
    }

    /// Drops the first `n` payload bytes in place: a pointer bump for
    /// pooled leases, a front drain for owned buffers.
    pub fn trim_front(&mut self, n: usize) {
        match self {
            Token::Owned(v) => {
                v.drain(..n.min(v.len()));
            }
            Token::Pooled(t) => t.trim_front(n),
        }
    }

    /// Extracts an owned `Vec<u8>`, copying only when pooled.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Token::Owned(v) => v,
            Token::Pooled(t) => t.to_vec(),
        }
    }
}

impl Deref for Token {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Token::Owned(v) => v,
            Token::Pooled(t) => t,
        }
    }
}

impl DerefMut for Token {
    fn deref_mut(&mut self) -> &mut [u8] {
        match self {
            Token::Owned(v) => v,
            Token::Pooled(t) => t,
        }
    }
}

impl From<Vec<u8>> for Token {
    fn from(v: Vec<u8>) -> Self {
        Token::Owned(v)
    }
}

impl From<TokenBuf> for Token {
    fn from(t: TokenBuf) -> Self {
        Token::Pooled(t)
    }
}

/// Deep clone: a pooled lease clones to an owned copy (a lease is
/// exclusive by construction). Only cold paths clone tokens — the
/// supervised runner's iteration checkpoints and replay logs.
impl Clone for Token {
    fn clone(&self) -> Self {
        match self {
            Token::Owned(v) => Token::Owned(v.clone()),
            Token::Pooled(t) => Token::Owned(t.to_vec()),
        }
    }
}

impl PartialEq for Token {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Token {}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn acquire_write_read_release_roundtrip() {
        let pool = BufferPool::new(2, 16);
        assert_eq!(pool.available(), 2);
        let mut a = pool.acquire(T).unwrap();
        assert_eq!(a.len(), 16, "fresh lease spans the whole slot");
        a[..4].copy_from_slice(b"spi!");
        a.truncate(4);
        assert_eq!(&*a, b"spi!");
        assert_eq!(pool.available(), 1);
        drop(a);
        assert_eq!(pool.available(), 2, "drop releases the slot");
    }

    #[test]
    fn exhausted_pool_blocks_then_times_out() {
        let pool = BufferPool::new(1, 8);
        let held = pool.acquire(T).unwrap();
        assert!(pool.try_acquire().is_none());
        assert!(matches!(
            pool.acquire(Duration::from_millis(30)),
            Err(TransportError::Timeout { .. })
        ));
        drop(held);
        assert!(pool.try_acquire().is_some());
    }

    #[test]
    fn release_unblocks_a_parked_acquirer() {
        let pool = BufferPool::new(1, 8);
        let held = pool.acquire(T).unwrap();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || p2.acquire(Duration::from_secs(5)).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn trim_front_is_a_pointer_bump() {
        let pool = BufferPool::new(1, 16);
        let mut lease = pool.acquire(T).unwrap();
        lease[..8].copy_from_slice(b"hdrrbody");
        lease.truncate(8);
        lease.trim_front(4);
        assert_eq!(&*lease, b"body");
        assert_eq!(lease.capacity(), 12);
        // Trimming past the end clamps instead of panicking.
        lease.trim_front(100);
        assert!(lease.is_empty());
    }

    #[test]
    fn leases_release_on_panic_unwind() {
        let pool = BufferPool::new(2, 8);
        let p = pool.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _lease = p.acquire(T).unwrap();
            panic!("actor firing died");
        }));
        assert!(result.is_err());
        assert_eq!(pool.available(), 2, "unwind returned the slot");
    }

    #[test]
    fn every_slot_is_distinct_storage() {
        let pool = BufferPool::new(3, 4);
        let mut leases: Vec<TokenBuf> = (0..3).map(|_| pool.acquire(T).unwrap()).collect();
        for (i, l) in leases.iter_mut().enumerate() {
            l.copy_from_slice(&[i as u8; 4]);
        }
        for (i, l) in leases.iter().enumerate() {
            assert_eq!(&**l, &[i as u8; 4]);
        }
        assert_eq!(pool.available(), 0);
        drop(leases);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn token_unifies_owned_and_pooled_views() {
        let pool = BufferPool::new(1, 8);
        let mut lease = pool.acquire(T).unwrap();
        lease[..3].copy_from_slice(b"abc");
        lease.truncate(3);
        let pooled = Token::from(lease);
        let owned = Token::from(b"abc".to_vec());
        assert_eq!(pooled, owned);
        assert!(pooled.is_pooled() && !owned.is_pooled());
        let mut clone = pooled.clone();
        assert!(!clone.is_pooled(), "clones are deep owned copies");
        clone.trim_front(1);
        assert_eq!(&*clone, b"bc");
        assert_eq!(pooled.into_vec(), b"abc");
        assert_eq!(pool.available(), 1, "into_vec released the lease");
    }
}

//! # spi-platform — simulated multi-PE FPGA platform
//!
//! The hardware substrate of the DATE 2008 SPI reproduction. The paper
//! evaluates on a Xilinx Virtex-4; this crate substitutes (see
//! `DESIGN.md`) a cycle-level **discrete-event simulator** of processing
//! elements connected by hardware FIFOs:
//!
//! * [`Machine`] / [`Program`] / [`Op`] — PEs execute looped
//!   compute/send/receive programs with real payload bytes, so runs are
//!   simultaneously functional and timed;
//! * [`ChannelSpec`] — FIFO capacity, word width, wire latency and
//!   per-message occupancy;
//! * [`MpiEndpoint`] — a faithful generic-MPI baseline (envelopes,
//!   matching, rendezvous) that SPI is compared against;
//! * [`ResourceEstimate`] / [`Device`] — the additive area model standing
//!   in for ISE synthesis reports (tables 1–2);
//! * [`Transport`] / [`LockedTransport`] / [`RingTransport`] — pluggable
//!   byte-accurate inter-thread channels; the ring is a lock-free SPSC
//!   buffer sized exactly to the paper's eq. (2) bound `B(e)`;
//! * [`run_threaded`] / [`ThreadedRunner`] — an OS-thread functional
//!   runner cross-checking the DES's protocol logic under real
//!   concurrency, executing over any [`Transport`];
//! * [`Tracer`] / [`NopTracer`] — runtime probe points both engines emit
//!   through (firing begin/end, send/receive with payload digests and
//!   occupancy, block/unblock); the `spi-trace` crate supplies the
//!   lock-free capture buffer, exporters, and the conformance checker
//!   that validates the paper's eq. (2) bounds against observed runs;
//! * [`SupervisionPolicy`] / [`DegradePolicy`] — supervised execution
//!   for the threaded runner: CRC-checked sequence-numbered frames,
//!   bounded retry with backoff, UBS-style substitute/skip degradation
//!   and iteration-boundary checkpoint/restart, with every recovery
//!   decision emitted as a `Fault*` probe event. [`TransportDecorator`]
//!   is the seam deterministic fault injectors (`spi-fault`) plug into.
//!
//! # Examples
//!
//! ```
//! use spi_platform::{ChannelSpec, Machine, Op, Program};
//!
//! let mut m = Machine::new();
//! let ch = m.add_channel(ChannelSpec::default());
//! m.add_pe(Program::new(vec![
//!     Op::Compute { label: "produce".into(), work: Box::new(|_| 10) },
//!     Op::Send { channel: ch, payload: Box::new(|_| vec![0u8; 16]) },
//! ], 100));
//! m.add_pe(Program::new(vec![Op::Recv { channel: ch }], 100));
//! let report = m.run()?;
//! assert_eq!(report.channels[ch.0].messages, 100);
//! println!("makespan: {:.1} µs at 100 MHz", report.makespan_us(100.0));
//! # Ok::<(), spi_platform::PlatformError>(())
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the lock-free ring in `transport` and
// the SSE4.2 hardware CRC in `supervise` need scoped
// `#[allow(unsafe_code)]`; everything else stays safe Rust.
#![deny(unsafe_code)]

mod error;
mod mpi;
mod pool;
mod resource;
mod runner;
pub mod shim;
mod sim;
#[cfg(feature = "verify-shim")]
pub mod simrt;
mod supervise;
mod trace;
mod transport;
#[cfg(feature = "verify-shim")]
pub mod verify;

pub use error::{BlockKind, BlockedOp, PlatformError, Result};
pub use mpi::{
    MpiConfig, MpiEndpoint, CONTROL_BYTES, EAGER_LIMIT_BYTES, ENVELOPE_BYTES, MARSHAL_CYCLES,
    MATCH_CYCLES,
};
pub use pool::{BufferPool, Token, TokenBuf};
pub use resource::{components, Device, ResourceEstimate, ResourcePercent};
pub use runner::{
    run_threaded, ThreadedPeResult, ThreadedRunner, TransportDecorator, DEFAULT_DEADLOCK_TIMEOUT,
};
pub use sim::{
    BusSpec, ChannelId, ChannelSpec, ChannelStats, ComputeFn, Machine, Op, OrderedBusSpec,
    PayloadFn, PeId, PeLocal, PeLocalSnapshot, PeStats, Program, SimReport, TraceEvent, TraceKind,
    WaitFn,
};
pub use supervise::{
    crc32, decode_frame, encode_frame_into, framed_spec, DegradePolicy, FrameError,
    SupervisionPolicy, FRAME_HEADER_BYTES,
};
pub use trace::{payload_digest, FlushReason, NopTracer, ProbeEvent, ProbeKind, Tracer};
pub use transport::{
    InjectedFault, LockedTransport, PointerTransport, RingTransport, Transport, TransportError,
    TransportKind,
};

//! Pluggable channel transports for the OS-thread runner.
//!
//! The discrete-event engine in [`crate::sim`] accounts channel
//! occupancy in *bytes* against the statically derived capacity
//! `B(e) = (Γ + delay(e)) · c(e)` of the paper's eq. (2). The threaded
//! runner historically approximated that bound by message count through
//! one hardwired `Mutex`+`Condvar` queue; this module turns the channel
//! into a first-class [`Transport`] abstraction with two byte-accurate
//! implementations:
//!
//! * [`LockedTransport`] — the reference implementation: a bounded FIFO
//!   of owned payloads behind a `Mutex` with two `Condvar`s. Simple,
//!   obviously correct, and the baseline the ring is benchmarked
//!   against.
//! * [`RingTransport`] — a lock-free ring buffer of fixed packed-token
//!   slots, sized exactly `capacity_bytes / max_message_bytes` slots of
//!   `max_message_bytes` each, so the eq. (2) bound *is* the allocation.
//!   Head/tail move with atomics (per-slot sequence numbers, Vyukov
//!   style), payloads are written into the ring storage in place
//!   ([`Transport::send_with`] / [`Transport::recv_with`] never touch
//!   the heap), and a full/empty ring backpressures via
//!   `thread::park_timeout` / `unpark` instead of a condition variable.
//! * [`PointerTransport`] — the paper's §5.2 pointer exchange: payloads
//!   live in a [`BufferPool`] slab sized to eq. (2), and only 12-byte
//!   slot *descriptors* travel through a Vyukov ring. Send acquires a
//!   pool slot (that acquisition is the eq. (2) backpressure), receive
//!   hands out a [`crate::TokenBuf`] lease over the slot bytes — zero
//!   payload copies and zero heap allocation in the steady state; the
//!   lease's drop is the UBS-style slot-release acknowledgement.
//!
//! SPI edges are point-to-point, so the rings are used single-producer /
//! single-consumer in practice; the per-slot sequence protocol keeps
//! them memory-safe (merely slower) if a hand-written program ever
//! shares an endpoint between threads.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::pool::{BufferPool, Token, TokenBuf};
use crate::shim;
use crate::sim::ChannelSpec;

/// A declared, injected fault surfaced by a fault-injecting transport
/// decorator (see the `spi-fault` crate).
///
/// The variants describe what happened to the message so a supervising
/// runner can pick the right recovery: a dropped message was never
/// delivered (retransmit it), a corrupted one *was* delivered in
/// mangled form (retransmit; the receiver discards the bad frame by
/// CRC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectedFault {
    /// The message was silently discarded instead of delivered.
    Dropped,
    /// A corrupted copy of the message was delivered.
    Corrupted,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFault::Dropped => write!(f, "message dropped"),
            InjectedFault::Corrupted => write!(f, "message corrupted"),
        }
    }
}

/// Errors surfaced by [`Transport`] operations.
///
/// Blocking operations fail with [`TransportError::Timeout`] (the
/// runner's deadlock detector), non-blocking ones with
/// [`TransportError::Full`] / [`TransportError::Empty`], and both send
/// paths reject messages that could never fit with
/// [`TransportError::TooLarge`]. Fault-injecting decorators report
/// declared faults with [`TransportError::Injected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// A blocking send or receive gave up after its timeout — the
    /// runner interprets this as a deadlocked processing element.
    Timeout {
        /// The timeout that elapsed.
        after: Duration,
        /// How long the peer side had shown no progress when the
        /// deadline fired. Equal to `after` when the channel was dead
        /// for the whole wait; smaller when the peer kept moving (e.g.
        /// draining a byte-bounded queue) without freeing enough space
        /// — the difference between a stalled link and a deadlock.
        idle: Duration,
    },
    /// A non-blocking send found the channel full.
    Full,
    /// A non-blocking receive found the channel empty.
    Empty,
    /// The message can never be accepted: it exceeds the per-message
    /// bound (ring slot size) or the whole channel capacity.
    TooLarge {
        /// Payload size in bytes.
        bytes: usize,
        /// Largest acceptable message in bytes.
        max: usize,
    },
    /// A fault-injecting decorator applied a declared fault to this
    /// operation. Supervised runners treat these as transient and
    /// retry; unsupervised runners surface them as channel faults.
    Injected {
        /// What the injector did to the message.
        fault: InjectedFault,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout { after, idle } => {
                write!(
                    f,
                    "transport operation timed out after {after:?} (peer idle {idle:?})"
                )
            }
            TransportError::Full => write!(f, "channel full"),
            TransportError::Empty => write!(f, "channel empty"),
            TransportError::TooLarge { bytes, max } => {
                write!(
                    f,
                    "message of {bytes} bytes exceeds transport maximum of {max} bytes"
                )
            }
            TransportError::Injected { fault } => {
                write!(f, "injected fault: {fault}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A bounded, blocking, FIFO point-to-point channel between OS threads.
///
/// Capacity is accounted in **bytes**, matching the discrete-event
/// engine and the paper's eq. (1)/(2) buffer bounds, not in message
/// counts. All methods take `&self`; implementations are internally
/// synchronized.
pub trait Transport: Send + Sync {
    /// Total payload capacity in bytes. For [`RingTransport`] this is
    /// exactly `slots × slot_bytes`, i.e. the eq. (2) allocation.
    fn capacity_bytes(&self) -> usize;

    /// Largest single message this transport accepts, in bytes.
    fn max_message_bytes(&self) -> usize;

    /// Payload bytes currently buffered in the channel.
    ///
    /// Exact for [`LockedTransport`]; for [`RingTransport`] it is
    /// **slot-granular** (`occupancy() × slot size` — the ring reserves
    /// a full packed-token slot per message, which is also what the
    /// eq. (2) bound accounts). Under concurrent traffic the value is a
    /// point-in-time snapshot, never an over-estimate of what a
    /// linearized observer could have seen.
    fn len_bytes(&self) -> usize;

    /// Messages currently buffered in the channel (same snapshot
    /// semantics as [`Transport::len_bytes`]).
    fn occupancy(&self) -> usize;

    /// `(len_bytes, occupancy)` from a single observation. Semantically
    /// identical to calling the two accessors back to back, but
    /// implementations override it to read their shared state once —
    /// this sits on the traced runner's per-message path, where a
    /// redundant load of a cache line owned by the peer thread is
    /// measurable.
    fn snapshot(&self) -> (usize, usize) {
        (self.len_bytes(), self.occupancy())
    }

    /// Blocking send of an owned payload; gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::TooLarge`] if the payload can never fit;
    /// [`TransportError::Timeout`] if no space freed up in time.
    fn send(&self, data: &[u8], timeout: Duration) -> Result<(), TransportError> {
        self.send_with(data.len(), &mut |buf| buf.copy_from_slice(data), timeout)
    }

    /// Non-blocking send.
    ///
    /// # Errors
    ///
    /// [`TransportError::Full`] when no space is available right now;
    /// [`TransportError::TooLarge`] if the payload can never fit.
    fn try_send(&self, data: &[u8]) -> Result<(), TransportError>;

    /// Blocking receive of an owned payload; gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if no message arrived in time.
    fn recv(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let mut out = Vec::new();
        self.recv_with(&mut |bytes| out.extend_from_slice(bytes), timeout)?;
        Ok(out)
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TransportError::Empty`] when no message is waiting.
    fn try_recv(&self) -> Result<Vec<u8>, TransportError>;

    /// Blocking zero-copy send: reserves `len` bytes of channel storage
    /// and invokes `fill` to write the payload directly into it. The
    /// ring implementation performs **no heap allocation** on this path;
    /// the locked implementation allocates its owned queue entry.
    ///
    /// # Errors
    ///
    /// As [`Transport::send`].
    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError>;

    /// Blocking zero-copy receive: invokes `consume` on the payload
    /// bytes while they still live in channel storage, then releases
    /// the slot. No heap allocation on the ring implementation.
    ///
    /// # Errors
    ///
    /// As [`Transport::recv`].
    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError>;

    /// Blocking in-place framing send: reserves up to `max_len` bytes of
    /// writable channel storage, invokes `frame` to build the message in
    /// place, and sends the prefix of `frame`'s returned length.
    /// [`RingTransport`] frames directly into the claimed ring slot and
    /// [`PointerTransport`] into the acquired pool slot — no heap
    /// allocation on either; the default copies through a scratch
    /// buffer, preserving semantics for owned-payload transports.
    ///
    /// # Errors
    ///
    /// As [`Transport::send`]; `max_len` itself must satisfy the
    /// per-message bound.
    fn send_in_place(
        &self,
        max_len: usize,
        frame: &mut dyn FnMut(&mut [u8]) -> usize,
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if max_len > self.max_message_bytes() {
            return Err(TransportError::TooLarge {
                bytes: max_len,
                max: self.max_message_bytes(),
            });
        }
        let mut buf = vec![0u8; max_len];
        let n = frame(&mut buf).min(max_len);
        self.send(&buf[..n], timeout)
    }

    /// Ownership-passing send of a [`Token`].
    ///
    /// On [`PointerTransport`], a pooled lease from the transport's own
    /// pool moves slot *ownership* to the consumer — the paper's §5.2
    /// pointer exchange, no payload bytes touched. Every other
    /// transport (and foreign-pool leases) copies the bytes like
    /// [`Transport::send`]; the token's lease, if any, releases its
    /// slot on return.
    ///
    /// # Errors
    ///
    /// As [`Transport::send`].
    fn send_token(&self, token: Token, timeout: Duration) -> Result<(), TransportError> {
        self.send(&token, timeout)
    }

    /// Blocking receive returning a [`Token`]: a zero-copy pooled lease
    /// on [`PointerTransport`] (dropping it is the slot-release
    /// acknowledgement), an owned heap buffer elsewhere.
    ///
    /// # Errors
    ///
    /// As [`Transport::recv`].
    fn recv_token(&self, timeout: Duration) -> Result<Token, TransportError> {
        self.recv(timeout).map(Token::Owned)
    }

    /// Non-blocking variant of [`Transport::send_token`].
    ///
    /// # Errors
    ///
    /// As [`Transport::try_send`].
    fn try_send_token(&self, token: Token) -> Result<(), TransportError> {
        self.try_send(&token)
    }

    /// Non-blocking variant of [`Transport::recv_token`].
    ///
    /// # Errors
    ///
    /// As [`Transport::try_recv`].
    fn try_recv_token(&self) -> Result<Token, TransportError> {
        self.try_recv().map(Token::Owned)
    }

    /// The buffer pool backing this transport's payloads, when it has
    /// one ([`PointerTransport`]; decorators forward their inner
    /// transport's pool). Fault injectors use it to stage duplicated
    /// payloads in pool slots instead of fresh heap buffers.
    fn pool(&self) -> Option<&BufferPool> {
        None
    }
}

/// Which [`Transport`] implementation a runner should instantiate per
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// `Mutex`+`Condvar` bounded queue ([`LockedTransport`]) — the
    /// reference implementation.
    #[default]
    Locked,
    /// Lock-free SPSC ring of fixed slots ([`RingTransport`]).
    Ring,
    /// Pointer exchange through a pooled slab ([`PointerTransport`]):
    /// payloads stay in place, only slot descriptors move.
    Pointer,
}

impl TransportKind {
    /// Builds a transport for `spec`.
    ///
    /// The per-message bound comes from [`ChannelSpec::max_message_bytes`]
    /// when declared (the SPI builder always declares it — the packed
    /// token size `c(e) = c_sdf(e) · b_max(e)` plus header); otherwise it
    /// falls back to the channel word size, preserving the historical
    /// "capacity ÷ word" message-count approximation for hand-written
    /// programs.
    pub fn instantiate(self, spec: &ChannelSpec) -> Box<dyn Transport> {
        let max_msg = if spec.max_message_bytes > 0 {
            spec.max_message_bytes
        } else {
            spec.word_bytes.max(1) as usize
        };
        match self {
            TransportKind::Locked => Box::new(LockedTransport::new(
                spec.capacity_bytes,
                spec.capacity_bytes.max(max_msg),
            )),
            TransportKind::Ring => Box::new(RingTransport::new(spec.capacity_bytes, max_msg)),
            TransportKind::Pointer => Box::new(PointerTransport::new(spec.capacity_bytes, max_msg)),
        }
    }
}

// ---------------------------------------------------------------------
// LockedTransport
// ---------------------------------------------------------------------

struct LockedInner {
    queue: VecDeque<Vec<u8>>,
    used_bytes: usize,
    /// Monotonic count of completed enqueues — a blocked receiver
    /// watches this to tell "peer is alive but slow" from "peer is
    /// gone" when its deadline fires.
    pushes: u64,
    /// Monotonic count of completed dequeues (watched by blocked
    /// senders).
    pops: u64,
}

/// The reference transport: a byte-accounted bounded FIFO behind a
/// `Mutex` with separate not-full / not-empty `Condvar`s (std's mpsc
/// offers no `send_timeout`, and deadlock detection needs timeouts in
/// both directions).
pub struct LockedTransport {
    inner: Mutex<LockedInner>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity_bytes: usize,
    max_message_bytes: usize,
}

impl LockedTransport {
    /// Creates a queue holding at most `capacity_bytes` of payload, with
    /// single messages capped at `max_message_bytes`.
    pub fn new(capacity_bytes: usize, max_message_bytes: usize) -> Self {
        let capacity_bytes = capacity_bytes.max(1);
        LockedTransport {
            inner: Mutex::new(LockedInner {
                queue: VecDeque::new(),
                used_bytes: 0,
                pushes: 0,
                pops: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity_bytes,
            max_message_bytes: max_message_bytes.clamp(1, capacity_bytes),
        }
    }
}

impl Transport for LockedTransport {
    fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    fn max_message_bytes(&self) -> usize {
        self.max_message_bytes
    }

    fn len_bytes(&self) -> usize {
        self.inner.lock().expect("transport lock").used_bytes
    }

    fn occupancy(&self) -> usize {
        self.inner.lock().expect("transport lock").queue.len()
    }

    fn snapshot(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("transport lock");
        (inner.used_bytes, inner.queue.len())
    }

    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        if data.len() > self.max_message_bytes {
            return Err(TransportError::TooLarge {
                bytes: data.len(),
                max: self.max_message_bytes,
            });
        }
        let mut inner = self.inner.lock().expect("transport lock");
        if inner.used_bytes + data.len() > self.capacity_bytes && !inner.queue.is_empty() {
            return Err(TransportError::Full);
        }
        inner.used_bytes += data.len();
        inner.pushes += 1;
        inner.queue.push_back(data.to_vec());
        self.not_empty.notify_one();
        Ok(())
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        let mut inner = self.inner.lock().expect("transport lock");
        match inner.queue.pop_front() {
            Some(data) => {
                inner.used_bytes -= data.len();
                inner.pops += 1;
                self.not_full.notify_one();
                Ok(data)
            }
            None => Err(TransportError::Empty),
        }
    }

    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if len > self.max_message_bytes {
            return Err(TransportError::TooLarge {
                bytes: len,
                max: self.max_message_bytes,
            });
        }
        let mut data = vec![0u8; len];
        fill(&mut data);
        let start = Instant::now();
        let deadline = start + timeout;
        let mut inner = self.inner.lock().expect("transport lock");
        // An empty queue always admits one message: `max_message_bytes`
        // is clamped to the capacity, so progress is never wedged.
        let mut seen_pops = inner.pops;
        let mut progress_at = start;
        while inner.used_bytes + len > self.capacity_bytes && !inner.queue.is_empty() {
            let now = Instant::now();
            if inner.pops != seen_pops {
                seen_pops = inner.pops;
                progress_at = now;
            }
            if now >= deadline {
                return Err(TransportError::Timeout {
                    after: timeout,
                    idle: now.duration_since(progress_at),
                });
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(inner, deadline - now)
                .expect("transport lock");
            inner = guard;
        }
        inner.used_bytes += len;
        inner.pushes += 1;
        inner.queue.push_back(data);
        self.not_empty.notify_one();
        Ok(())
    }

    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut inner = self.inner.lock().expect("transport lock");
        let mut seen_pushes = inner.pushes;
        let mut progress_at = start;
        loop {
            if let Some(data) = inner.queue.pop_front() {
                inner.used_bytes -= data.len();
                inner.pops += 1;
                drop(inner);
                self.not_full.notify_one();
                consume(&data);
                return Ok(());
            }
            let now = Instant::now();
            if inner.pushes != seen_pushes {
                seen_pushes = inner.pushes;
                progress_at = now;
            }
            if now >= deadline {
                return Err(TransportError::Timeout {
                    after: timeout,
                    idle: now.duration_since(progress_at),
                });
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("transport lock");
            inner = guard;
        }
    }
}

// ---------------------------------------------------------------------
// RingTransport
// ---------------------------------------------------------------------

/// A set of threads parked on one side (producer or consumer) of a
/// ring. The fast path is a single relaxed load of `waiting`; the mutex
/// is only touched when a thread actually has to park — i.e. when the
/// ring is full or empty and blocking was inevitable anyway.
struct WaitList {
    waiting: shim::AtomicUsize,
    threads: shim::Mutex<Vec<shim::ThreadHandle>>,
    /// Pre-PR 3 wake behavior: dequeue entries while waking. Only the
    /// `verify-shim` regression oracle can set this (see
    /// [`RingTransport::new_with_reverted_wakeup`]); production
    /// constructors always leave it `false`. Kept as a plain field so
    /// the production wake path stays byte-identical either way.
    wake_dequeues: bool,
}

impl WaitList {
    fn new(waiting_label: &'static str, list_label: &'static str) -> Self {
        WaitList {
            waiting: shim::AtomicUsize::labeled(0, waiting_label),
            threads: shim::Mutex::labeled(Vec::new(), list_label),
            wake_dequeues: false,
        }
    }
    /// Wakes every registered thread. Entries are *not* removed — only
    /// the owning thread deregisters itself in [`WaitList::park_until`],
    /// so a waiter whose wake token gets absorbed early (consumed by an
    /// interleaved park on another channel's wait list — the park token
    /// is per-thread, not per-list) is simply re-unparked by the next
    /// wake. Removing on wake would orphan such a re-parking thread for
    /// good. SPI edges are SPSC, so "every" is at most one thread.
    ///
    /// The caller has just stored new slot state (a `seq` publish or
    /// recycle). The fence pairs with the one in [`WaitList::park_until`]
    /// — the store-buffer (Dekker) pattern: without it, this thread's
    /// slot store and the parker's `waiting` store can both sit in store
    /// buffers while each side's subsequent load reads stale state, so
    /// the parker re-checks "still blocked" *and* this load reads
    /// "nobody waiting", losing the wakeup for good.
    fn wake_one(&self) {
        shim::fence(Ordering::SeqCst);
        if self.waiting.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut threads = self.threads.lock();
        if self.wake_dequeues {
            // The mechanically reverted PR 3 bug, reachable only from
            // the model-checker oracle: draining on wake orphans a
            // waiter that re-parks after its token was absorbed
            // elsewhere — the next wake finds an empty list.
            for t in threads.drain(..) {
                t.unpark();
            }
            self.waiting.store(0, Ordering::Release);
        } else {
            for t in threads.iter() {
                t.unpark();
            }
        }
    }

    /// Longest single park before re-checking `ready` regardless of
    /// wake tokens. Parking only happens once the channel is already
    /// full/empty — i.e. off the throughput path — so a periodic
    /// re-check costs nothing measurable, and it bounds the damage of
    /// any wake lost to scheduler pathology to one slice instead of the
    /// full deadlock-detection timeout.
    const MAX_PARK_SLICE: Duration = Duration::from_millis(50);

    /// Registers the current thread, re-checks `ready`, and parks until
    /// `deadline` if it still holds false. Returns `false` on timeout.
    ///
    /// The registration-before-recheck order closes the lost-wakeup
    /// race: a publisher that misses the registration is ordered before
    /// the re-check; one that sees it will unpark us. The SeqCst fence
    /// between registration and re-check makes that ordering real on
    /// hardware with store buffers (see [`WaitList::wake_one`]).
    fn park_until(&self, deadline: Instant, ready: &dyn Fn() -> bool) -> bool {
        {
            let mut threads = self.threads.lock();
            threads.push(shim::current());
            self.waiting.store(threads.len(), Ordering::Release);
        }
        shim::fence(Ordering::SeqCst);
        let mut timed_out = false;
        loop {
            if ready() {
                break;
            }
            // One `shim::now()` read per slice, shared between the
            // deadline test and the park duration — the same clock the
            // supervision deadline derives from, and a frozen constant
            // under a model session (so the timeout below can never
            // fire inside an exploration).
            let now = shim::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            shim::park_timeout((deadline - now).min(Self::MAX_PARK_SLICE));
        }
        {
            let mut threads = self.threads.lock();
            let me = shim::current().id();
            threads.retain(|t| t.id() != me);
            self.waiting.store(threads.len(), Ordering::Release);
        }
        !timed_out
    }
}

/// A lock-free bounded ring of fixed-size packed-token slots.
///
/// Layout: `slots × slot_bytes` of payload storage, a length word per
/// slot, and a per-slot sequence number driving the claim/publish
/// protocol (Vyukov's bounded queue). `capacity_bytes()` is exactly the
/// storage allocation, so when the SPI builder sizes a channel to the
/// eq. (2) bound `B(e)` with slot size `c(e)`, those numbers *are* the
/// runtime buffer — no approximation layer in between.
///
/// Designed for the single-producer / single-consumer topology of SPI's
/// point-to-point edges; the sequence protocol keeps concurrent misuse
/// memory-safe. `send_with` / `recv_with` move payload bytes directly
/// between caller buffers and ring storage with zero heap allocation
/// per message.
pub struct RingTransport {
    slot_bytes: usize,
    slots: usize,
    /// Claim/publish state per slot, in a doubled sequence space so the
    /// states stay distinct even for a single-slot ring: `seq == 2·pos`
    /// ⇒ free for the enqueuer at position `pos`; `seq == 2·pos + 1` ⇒
    /// holds the message published at `pos`, free for the dequeuer,
    /// which recycles it to `2·(pos + slots)`.
    seq: Box<[shim::AtomicUsize]>,
    /// Payload length per slot; written by the owning producer before
    /// the publishing seq store, read by the consumer after its
    /// acquiring seq load.
    lens: Box<[UnsafeCell<usize>]>,
    /// Slot payload storage, `slots × slot_bytes` contiguous bytes.
    buf: Box<[UnsafeCell<u8>]>,
    /// Next dequeue position.
    head: shim::AtomicUsize,
    /// Next enqueue position.
    tail: shim::AtomicUsize,
    /// Consumers parked on an empty ring.
    recv_waiters: WaitList,
    /// Producers parked on a full ring.
    send_waiters: WaitList,
}

// SAFETY: slot payload (`lens`, `buf`) is only accessed by the thread
// that currently owns the slot via the `seq` claim/publish protocol;
// the release/acquire pairs on `seq` order those accesses.
unsafe impl Sync for RingTransport {}

impl RingTransport {
    /// Claim retries spun through before a blocked send/receive parks.
    /// Roughly a few hundred nanoseconds of polling — shorter than one
    /// park/unpark round trip, long enough to ride out a pipelined
    /// peer's typical slot turnaround. Zero on single-hardware-thread
    /// hosts, where spinning only delays the peer that would free the
    /// slot.
    fn spin_claims() -> u32 {
        static N: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
        *N.get_or_init(|| match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => 64,
            _ => 0,
        })
    }

    /// Creates a ring with `capacity_bytes / slot_bytes` slots (at least
    /// one) of `slot_bytes` each.
    pub fn new(capacity_bytes: usize, slot_bytes: usize) -> Self {
        let slot_bytes = slot_bytes.max(1);
        let slots = (capacity_bytes / slot_bytes).max(1);
        let seq: Box<[shim::AtomicUsize]> = (0..slots)
            .map(|i| shim::AtomicUsize::labeled(2 * i, "seq"))
            .collect();
        let lens: Box<[UnsafeCell<usize>]> = (0..slots).map(|_| UnsafeCell::new(0)).collect();
        let buf: Box<[UnsafeCell<u8>]> = (0..slots * slot_bytes)
            .map(|_| UnsafeCell::new(0))
            .collect();
        RingTransport {
            slot_bytes,
            slots,
            seq,
            lens,
            buf,
            head: shim::AtomicUsize::labeled(0, "head"),
            tail: shim::AtomicUsize::labeled(0, "tail"),
            recv_waiters: WaitList::new("recv_waiting", "recv_waitlist"),
            send_waiters: WaitList::new("send_waiting", "send_waitlist"),
        }
    }

    /// Like [`RingTransport::new`], but with the PR 3 lost-wakeup fix
    /// mechanically reverted (wake-all *with* dequeue). This is the
    /// model checker's regression oracle — `spi-verify` asserts the
    /// explorer finds a deadlocking schedule for this variant and none
    /// for the fixed one. Never reachable from production builds.
    #[cfg(feature = "verify-shim")]
    pub fn new_with_reverted_wakeup(capacity_bytes: usize, slot_bytes: usize) -> Self {
        let mut t = Self::new(capacity_bytes, slot_bytes);
        t.recv_waiters.wake_dequeues = true;
        t.send_waiters.wake_dequeues = true;
        t
    }

    /// Number of message slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Claims the next enqueue position, or `None` when the ring is
    /// full. On success the caller owns slot `pos % slots` until it
    /// publishes `seq = pos + 1`.
    fn claim_send(&self) -> Option<usize> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let idx = pos % self.slots;
            let seq = self.seq[idx].load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_mul(2) as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(pos),
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                // Slot still holds an unconsumed message from one lap
                // ago: the ring is full.
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Claims the next dequeue position, or `None` when the ring is
    /// empty. On success the caller owns slot `pos % slots` until it
    /// releases `seq = pos + slots`.
    fn claim_recv(&self) -> Option<usize> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let idx = pos % self.slots;
            let seq = self.seq[idx].load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_mul(2).wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(pos),
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Writes the claimed slot and publishes it to the consumer side.
    fn publish(&self, pos: usize, len: usize, fill: &mut dyn FnMut(&mut [u8])) {
        let idx = pos % self.slots;
        // SAFETY: the claim protocol gives this thread exclusive access
        // to slot `idx` between `claim_send` and the seq store below;
        // slots are disjoint byte ranges of `buf`.
        unsafe {
            *self.lens[idx].get() = len;
            let dst = std::slice::from_raw_parts_mut(self.buf[idx * self.slot_bytes].get(), len);
            fill(dst);
        }
        self.seq[idx].store(pos.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        self.recv_waiters.wake_one();
    }

    /// Reads the claimed slot, then recycles it to the producer side.
    fn consume_slot(&self, pos: usize, consume: &mut dyn FnMut(&[u8])) {
        let idx = pos % self.slots;
        // SAFETY: symmetric to `publish` — exclusive access between
        // `claim_recv` and the seq store below.
        unsafe {
            let len = *self.lens[idx].get();
            let src =
                std::slice::from_raw_parts(self.buf[idx * self.slot_bytes].get() as *const u8, len);
            consume(src);
        }
        self.seq[idx].store(
            pos.wrapping_add(self.slots).wrapping_mul(2),
            Ordering::Release,
        );
        self.send_waiters.wake_one();
    }

    /// Blocking slot claim shared by every send path: immediate
    /// attempt, brief spin, then park with peer-progress tracking for
    /// the timeout's idle report. On success the caller owns the slot
    /// and **must** publish it.
    fn claim_send_blocking(&self, timeout: Duration) -> Result<usize, TransportError> {
        if let Some(pos) = self.claim_send() {
            return Ok(pos);
        }
        // Brief spin before parking: a pipelined peer typically frees a
        // slot within a few hundred nanoseconds, far cheaper to catch
        // here than via a park/unpark round trip through the kernel.
        for _ in 0..shim::spin_budget(Self::spin_claims()) {
            std::hint::spin_loop();
            if let Some(pos) = self.claim_send() {
                return Ok(pos);
            }
        }
        let start = shim::now();
        let deadline = start + timeout;
        // A blocked sender watches the consumer's claim counter: any
        // movement is peer progress, and its absence over the whole
        // wait marks the timeout as a dead link rather than a slow one.
        let mut seen_head = self.head.load(Ordering::Relaxed);
        let mut progress_at = start;
        loop {
            if let Some(pos) = self.claim_send() {
                return Ok(pos);
            }
            let parked = self.send_waiters.park_until(deadline, &|| self.can_send());
            // One clock read per wake, shared by the progress stamp and
            // the idle computation below.
            let now = shim::now();
            let head = self.head.load(Ordering::Relaxed);
            if head != seen_head {
                seen_head = head;
                progress_at = now;
            }
            if !parked {
                // One last claim attempt closes the race where space
                // freed up exactly at the deadline.
                if let Some(pos) = self.claim_send() {
                    return Ok(pos);
                }
                return Err(TransportError::Timeout {
                    after: timeout,
                    idle: now.duration_since(progress_at),
                });
            }
        }
    }

    /// Blocking dequeue claim, symmetric to
    /// [`RingTransport::claim_send_blocking`]: a blocked receiver
    /// watches the producer's claim counter for signs of life. On
    /// success the caller **must** consume the slot.
    fn claim_recv_blocking(&self, timeout: Duration) -> Result<usize, TransportError> {
        if let Some(pos) = self.claim_recv() {
            return Ok(pos);
        }
        for _ in 0..shim::spin_budget(Self::spin_claims()) {
            std::hint::spin_loop();
            if let Some(pos) = self.claim_recv() {
                return Ok(pos);
            }
        }
        let start = shim::now();
        let deadline = start + timeout;
        let mut seen_tail = self.tail.load(Ordering::Relaxed);
        let mut progress_at = start;
        loop {
            if let Some(pos) = self.claim_recv() {
                return Ok(pos);
            }
            let parked = self.recv_waiters.park_until(deadline, &|| self.can_recv());
            let now = shim::now();
            let tail = self.tail.load(Ordering::Relaxed);
            if tail != seen_tail {
                seen_tail = tail;
                progress_at = now;
            }
            if !parked {
                if let Some(pos) = self.claim_recv() {
                    return Ok(pos);
                }
                return Err(TransportError::Timeout {
                    after: timeout,
                    idle: now.duration_since(progress_at),
                });
            }
        }
    }

    /// Non-blocking in-place receive (crate-internal: the pool's free
    /// list reads fixed-size index messages without allocating).
    pub(crate) fn try_recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
    ) -> Result<(), TransportError> {
        match self.claim_recv() {
            Some(pos) => {
                self.consume_slot(pos, consume);
                Ok(())
            }
            None => Err(TransportError::Empty),
        }
    }

    /// Blocking receive of one 4-byte little-endian index message into
    /// `out` — no heap allocation (the pool free-list hot path).
    pub(crate) fn recv_index(
        &self,
        out: &mut u32,
        timeout: Duration,
    ) -> Result<(), TransportError> {
        self.recv_with(
            &mut |b| *out = u32::from_le_bytes(b.try_into().expect("4-byte index message")),
            timeout,
        )
    }

    /// Non-blocking variant of [`RingTransport::recv_index`].
    pub(crate) fn try_recv_index(&self, out: &mut u32) -> Result<(), TransportError> {
        self.try_recv_with(&mut |b| {
            *out = u32::from_le_bytes(b.try_into().expect("4-byte index message"));
        })
    }

    /// Whether an enqueue can currently claim a slot (used as the park
    /// re-check; exact in the SPSC case).
    fn can_send(&self) -> bool {
        let pos = self.tail.load(Ordering::Relaxed);
        let seq = self.seq[pos % self.slots].load(Ordering::Acquire);
        seq as isize - pos.wrapping_mul(2) as isize >= 0
    }

    /// Whether a dequeue can currently claim a slot.
    fn can_recv(&self) -> bool {
        let pos = self.head.load(Ordering::Relaxed);
        let seq = self.seq[pos % self.slots].load(Ordering::Acquire);
        seq as isize - pos.wrapping_mul(2).wrapping_add(1) as isize >= 0
    }
}

impl Transport for RingTransport {
    fn capacity_bytes(&self) -> usize {
        self.slots * self.slot_bytes
    }

    fn max_message_bytes(&self) -> usize {
        self.slot_bytes
    }

    fn len_bytes(&self) -> usize {
        self.occupancy() * self.slot_bytes
    }

    fn occupancy(&self) -> usize {
        // `tail` and `head` are monotonic claim counters; their
        // difference is the number of occupied (claimed-or-published)
        // slots. Loading `tail` first means a racing consumer can only
        // shrink the difference (possibly below zero, which clamps to
        // empty), so the snapshot never over-estimates.
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        let diff = tail.wrapping_sub(head);
        if diff > self.slots {
            0
        } else {
            diff
        }
    }

    fn snapshot(&self) -> (usize, usize) {
        let occ = self.occupancy();
        (occ * self.slot_bytes, occ)
    }

    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        if data.len() > self.slot_bytes {
            return Err(TransportError::TooLarge {
                bytes: data.len(),
                max: self.slot_bytes,
            });
        }
        match self.claim_send() {
            Some(pos) => {
                self.publish(pos, data.len(), &mut |buf| buf.copy_from_slice(data));
                Ok(())
            }
            None => Err(TransportError::Full),
        }
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        match self.claim_recv() {
            Some(pos) => {
                let mut out = Vec::new();
                self.consume_slot(pos, &mut |bytes| out.extend_from_slice(bytes));
                Ok(out)
            }
            None => Err(TransportError::Empty),
        }
    }

    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if len > self.slot_bytes {
            return Err(TransportError::TooLarge {
                bytes: len,
                max: self.slot_bytes,
            });
        }
        let pos = self.claim_send_blocking(timeout)?;
        self.publish(pos, len, fill);
        Ok(())
    }

    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        let pos = self.claim_recv_blocking(timeout)?;
        self.consume_slot(pos, consume);
        Ok(())
    }

    fn send_in_place(
        &self,
        max_len: usize,
        frame: &mut dyn FnMut(&mut [u8]) -> usize,
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if max_len > self.slot_bytes {
            return Err(TransportError::TooLarge {
                bytes: max_len,
                max: self.slot_bytes,
            });
        }
        let pos = self.claim_send_blocking(timeout)?;
        let idx = pos % self.slots;
        // SAFETY: as `publish` — the claim protocol gives this thread
        // exclusive access to slot `idx` until the seq store below.
        unsafe {
            let dst =
                std::slice::from_raw_parts_mut(self.buf[idx * self.slot_bytes].get(), max_len);
            let n = frame(dst).min(max_len);
            *self.lens[idx].get() = n;
        }
        self.seq[idx].store(pos.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        self.recv_waiters.wake_one();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// PointerTransport
// ---------------------------------------------------------------------

/// Bytes of one slot descriptor on the wire: `[slot][off][len]`, each a
/// little-endian `u32`. Carrying the offset lets a trimmed lease (e.g.
/// a frame header stripped in place) be forwarded without compaction.
const DESC_BYTES: usize = 12;

fn encode_desc(slot: u32, off: u32, len: u32) -> [u8; DESC_BYTES] {
    let mut d = [0u8; DESC_BYTES];
    d[0..4].copy_from_slice(&slot.to_le_bytes());
    d[4..8].copy_from_slice(&off.to_le_bytes());
    d[8..12].copy_from_slice(&len.to_le_bytes());
    d
}

fn decode_desc(d: &[u8]) -> (u32, u32, u32) {
    (
        u32::from_le_bytes(d[0..4].try_into().expect("slot word")),
        u32::from_le_bytes(d[4..8].try_into().expect("offset word")),
        u32::from_le_bytes(d[8..12].try_into().expect("length word")),
    )
}

/// The paper's §5.2 pointer exchange: payloads live in a [`BufferPool`]
/// slab sized to the eq. (2) bound, and only 12-byte slot descriptors
/// travel through a Vyukov ring.
///
/// * **Send** acquires a free pool slot (blocking there *is* the
///   eq. (2) backpressure), writes the payload in place — or, for
///   [`Transport::send_token`] with a same-pool lease, writes nothing
///   at all — and publishes the slot's descriptor.
/// * **Receive** dequeues a descriptor and hands out a [`TokenBuf`]
///   lease over the slot bytes; dropping the lease releases the slot
///   back to the pool — the UBS-style acknowledgement closing the
///   flow-control loop.
///
/// Steady state touches the payload bytes exactly as many times as the
/// application requires and performs **zero heap allocations** per
/// message (asserted by a counting-allocator test in `spi`).
pub struct PointerTransport {
    pool: BufferPool,
    /// FIFO of `(slot, off, len)` descriptors, with exactly as many
    /// descriptor slots as the pool has payload slots. Descriptors are
    /// conserved the same way free indices are: every in-flight message
    /// holds a distinct pool slot, so at most `slots` descriptors exist
    /// and publishing one can never find this ring full.
    ring: RingTransport,
}

impl PointerTransport {
    /// Creates a pointer transport with `capacity_bytes / slot_bytes`
    /// pool slots (at least one) of `slot_bytes` each — the same sizing
    /// rule as [`RingTransport::new`], so the eq. (2) bound is the
    /// slab allocation.
    pub fn new(capacity_bytes: usize, slot_bytes: usize) -> Self {
        let slot_bytes = slot_bytes.max(1);
        let slots = (capacity_bytes / slot_bytes).max(1);
        PointerTransport {
            pool: BufferPool::new(slots, slot_bytes),
            ring: RingTransport::new(slots * DESC_BYTES, DESC_BYTES),
        }
    }

    /// A pointer transport publishing into an existing `pool` — the
    /// §5.2 forwarding case, where several edges of a processing chain
    /// share one statically bounded slab (sized to the *sum* of the
    /// edges' eq. (2) bounds). A same-pool lease received from one
    /// transport passes through the next as a bare descriptor: a relay
    /// or in-place-filter PE moves frames down the chain without the
    /// payload bytes ever being copied.
    ///
    /// The descriptor ring is sized to the pool's full slot count, so
    /// the conservation argument on [`PointerTransport::ring`] holds
    /// regardless of how the shared slots distribute across edges.
    pub fn with_pool(pool: BufferPool) -> Self {
        let slots = pool.slots();
        PointerTransport {
            pool,
            ring: RingTransport::new(slots * DESC_BYTES, DESC_BYTES),
        }
    }

    /// The backing pool — e.g. to pre-acquire leases and frame payloads
    /// in place before [`Transport::send_token`].
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Number of pool slots (= maximum in-flight messages).
    pub fn slots(&self) -> usize {
        self.pool.slots()
    }

    /// Moves a same-pool lease's slot ownership into the descriptor
    /// ring. Infallible by the conservation argument on
    /// [`PointerTransport::ring`]; if that invariant is ever broken the
    /// slot is returned to the pool rather than leaked.
    fn publish_lease(&self, lease: TokenBuf) -> Result<(), TransportError> {
        let (slot, off, len) = BufferPool::detach(lease);
        match self.ring.try_send(&encode_desc(slot, off, len)) {
            Ok(()) => Ok(()),
            Err(e) => {
                drop(self.pool.lease(slot, 0, 0));
                Err(e)
            }
        }
    }
}

impl Transport for PointerTransport {
    fn capacity_bytes(&self) -> usize {
        self.pool.slots() * self.pool.slot_bytes()
    }

    fn max_message_bytes(&self) -> usize {
        self.pool.slot_bytes()
    }

    fn len_bytes(&self) -> usize {
        // Slot-granular, like the ring: eq. (2) accounts a full
        // packed-token slot per in-flight message.
        self.ring.occupancy() * self.pool.slot_bytes()
    }

    fn occupancy(&self) -> usize {
        self.ring.occupancy()
    }

    fn snapshot(&self) -> (usize, usize) {
        let occ = self.ring.occupancy();
        (occ * self.pool.slot_bytes(), occ)
    }

    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        if data.len() > self.pool.slot_bytes() {
            return Err(TransportError::TooLarge {
                bytes: data.len(),
                max: self.pool.slot_bytes(),
            });
        }
        let Some(mut lease) = self.pool.try_acquire() else {
            return Err(TransportError::Full);
        };
        lease[..data.len()].copy_from_slice(data);
        lease.truncate(data.len());
        self.publish_lease(lease)
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        let mut desc = (0u32, 0u32, 0u32);
        self.ring.try_recv_with(&mut |d| desc = decode_desc(d))?;
        Ok(self.pool.lease(desc.0, desc.1, desc.2).to_vec())
    }

    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if len > self.pool.slot_bytes() {
            return Err(TransportError::TooLarge {
                bytes: len,
                max: self.pool.slot_bytes(),
            });
        }
        let mut lease = self.pool.acquire(timeout)?;
        fill(&mut lease[..len]);
        lease.truncate(len);
        self.publish_lease(lease)
    }

    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        let mut desc = (0u32, 0u32, 0u32);
        self.ring
            .recv_with(&mut |d| desc = decode_desc(d), timeout)?;
        // The lease releases the slot when it drops — including if
        // `consume` panics mid-read.
        let lease = self.pool.lease(desc.0, desc.1, desc.2);
        consume(&lease);
        Ok(())
    }

    fn send_in_place(
        &self,
        max_len: usize,
        frame: &mut dyn FnMut(&mut [u8]) -> usize,
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if max_len > self.pool.slot_bytes() {
            return Err(TransportError::TooLarge {
                bytes: max_len,
                max: self.pool.slot_bytes(),
            });
        }
        let mut lease = self.pool.acquire(timeout)?;
        let n = frame(&mut lease[..max_len]).min(max_len);
        lease.truncate(n);
        self.publish_lease(lease)
    }

    fn send_token(&self, token: Token, timeout: Duration) -> Result<(), TransportError> {
        match token {
            // The zero-copy path: the lease's slot changes hands, the
            // payload bytes never move.
            Token::Pooled(lease) if self.pool.owns(&lease) => self.publish_lease(lease),
            // Owned buffers and foreign-pool leases copy into a local
            // slot (the foreign lease releases on drop, after the copy).
            token => self.send(&token, timeout),
        }
    }

    fn recv_token(&self, timeout: Duration) -> Result<Token, TransportError> {
        let mut desc = (0u32, 0u32, 0u32);
        self.ring
            .recv_with(&mut |d| desc = decode_desc(d), timeout)?;
        Ok(Token::Pooled(self.pool.lease(desc.0, desc.1, desc.2)))
    }

    fn try_send_token(&self, token: Token) -> Result<(), TransportError> {
        match token {
            Token::Pooled(lease) if self.pool.owns(&lease) => self.publish_lease(lease),
            token => self.try_send(&token),
        }
    }

    fn try_recv_token(&self) -> Result<Token, TransportError> {
        let mut desc = (0u32, 0u32, 0u32);
        self.ring.try_recv_with(&mut |d| desc = decode_desc(d))?;
        Ok(Token::Pooled(self.pool.lease(desc.0, desc.1, desc.2)))
    }

    fn pool(&self) -> Option<&BufferPool> {
        Some(&self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn all(capacity: usize, slot: usize) -> Vec<Box<dyn Transport>> {
        vec![
            Box::new(LockedTransport::new(capacity, slot)),
            Box::new(RingTransport::new(capacity, slot)),
            Box::new(PointerTransport::new(capacity, slot)),
        ]
    }

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn fifo_order_preserved() {
        for t in all(64, 8) {
            for i in 0..5u8 {
                t.send(&[i; 3], T).unwrap();
            }
            for i in 0..5u8 {
                assert_eq!(t.recv(T).unwrap(), vec![i; 3]);
            }
        }
    }

    #[test]
    fn capacity_is_byte_accurate() {
        let locked = LockedTransport::new(24, 8);
        assert_eq!(locked.capacity_bytes(), 24);
        let ring = RingTransport::new(24, 8);
        assert_eq!(ring.capacity_bytes(), 24);
        assert_eq!(ring.slots(), 3);
        assert_eq!(ring.max_message_bytes(), 8);
        // Capacity not divisible by the slot size rounds down (eq. (2)
        // sizing always divides exactly; raw specs may not).
        assert_eq!(RingTransport::new(20, 8).slots(), 2);
        assert_eq!(RingTransport::new(4, 8).slots(), 1, "at least one slot");
    }

    #[test]
    fn full_channel_rejects_try_send_then_times_out() {
        for t in all(8, 8) {
            t.send(&[1; 8], T).unwrap();
            assert_eq!(t.try_send(&[2; 8]), Err(TransportError::Full));
            assert!(matches!(
                t.send(&[2; 8], Duration::from_millis(30)),
                Err(TransportError::Timeout { .. })
            ));
            assert_eq!(t.recv(T).unwrap(), vec![1; 8]);
            assert_eq!(t.try_recv(), Err(TransportError::Empty));
        }
    }

    #[test]
    fn oversized_message_rejected() {
        for t in all(64, 8) {
            assert_eq!(
                t.send(&[0; 9], T),
                Err(TransportError::TooLarge { bytes: 9, max: 8 })
            );
            assert_eq!(
                t.try_send(&[0; 9]),
                Err(TransportError::TooLarge { bytes: 9, max: 8 })
            );
        }
    }

    #[test]
    fn empty_recv_times_out() {
        for t in all(64, 8) {
            assert!(matches!(
                t.recv(Duration::from_millis(30)),
                Err(TransportError::Timeout { .. })
            ));
        }
    }

    #[test]
    fn zero_length_messages_flow() {
        for t in all(16, 4) {
            t.send(&[], T).unwrap();
            t.send(&[7], T).unwrap();
            assert_eq!(t.recv(T).unwrap(), Vec::<u8>::new());
            assert_eq!(t.recv(T).unwrap(), vec![7]);
        }
    }

    #[test]
    fn in_place_send_and_recv_roundtrip() {
        for t in all(32, 8) {
            t.send_with(6, &mut |buf| buf.copy_from_slice(b"packed"), T)
                .unwrap();
            let mut got = Vec::new();
            t.recv_with(&mut |bytes| got.extend_from_slice(bytes), T)
                .unwrap();
            assert_eq!(got, b"packed");
        }
    }

    #[test]
    fn blocked_sender_wakes_on_recv() {
        for (kind, t) in [
            (
                "locked",
                Arc::new(LockedTransport::new(4, 4)) as Arc<dyn Transport>,
            ),
            (
                "ring",
                Arc::new(RingTransport::new(4, 4)) as Arc<dyn Transport>,
            ),
            (
                "pointer",
                Arc::new(PointerTransport::new(4, 4)) as Arc<dyn Transport>,
            ),
        ] {
            t.send(&[1; 4], T).unwrap();
            let t2 = Arc::clone(&t);
            let sender = thread::spawn(move || t2.send(&[2; 4], Duration::from_secs(5)));
            thread::sleep(Duration::from_millis(20));
            assert_eq!(t.recv(T).unwrap(), vec![1; 4], "{kind}");
            sender.join().unwrap().unwrap();
            assert_eq!(t.recv(T).unwrap(), vec![2; 4], "{kind}");
        }
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        for t in [
            Arc::new(LockedTransport::new(16, 4)) as Arc<dyn Transport>,
            Arc::new(RingTransport::new(16, 4)) as Arc<dyn Transport>,
            Arc::new(PointerTransport::new(16, 4)) as Arc<dyn Transport>,
        ] {
            let t2 = Arc::clone(&t);
            let receiver = thread::spawn(move || t2.recv(Duration::from_secs(5)));
            thread::sleep(Duration::from_millis(20));
            t.send(&[9; 4], T).unwrap();
            assert_eq!(receiver.join().unwrap().unwrap(), vec![9; 4]);
        }
    }

    #[test]
    fn ring_streams_many_messages_across_threads() {
        let ring = Arc::new(RingTransport::new(8 * 16, 16));
        let tx = Arc::clone(&ring);
        let n: u32 = 20_000;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.send_with(
                    4,
                    &mut |buf| buf.copy_from_slice(&i.to_le_bytes()),
                    Duration::from_secs(10),
                )
                .unwrap();
            }
        });
        let mut next = 0u32;
        for _ in 0..n {
            ring.recv_with(
                &mut |bytes| {
                    let got = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
                    assert_eq!(got, next);
                    next += 1;
                },
                Duration::from_secs(10),
            )
            .unwrap();
        }
        producer.join().unwrap();
        assert_eq!(next, n);
    }

    #[test]
    fn transport_kind_sizes_from_spec() {
        let spec = ChannelSpec {
            capacity_bytes: 48,
            max_message_bytes: 6,
            ..ChannelSpec::default()
        };
        let ring = TransportKind::Ring.instantiate(&spec);
        assert_eq!(ring.capacity_bytes(), 48);
        assert_eq!(ring.max_message_bytes(), 6);
        let locked = TransportKind::Locked.instantiate(&spec);
        assert_eq!(locked.capacity_bytes(), 48);
        let pointer = TransportKind::Pointer.instantiate(&spec);
        assert_eq!(pointer.capacity_bytes(), 48);
        assert_eq!(pointer.max_message_bytes(), 6);
        // Undeclared bound falls back to word granularity for the ring.
        let raw = ChannelSpec {
            capacity_bytes: 16,
            ..ChannelSpec::default()
        };
        assert_eq!(TransportKind::Ring.instantiate(&raw).max_message_bytes(), 4);
    }

    #[test]
    fn occupancy_tracks_sends_and_recvs() {
        // Locked is byte-exact; the ring reports slot-granular bytes.
        let locked = LockedTransport::new(64, 8);
        locked.send(&[1; 3], T).unwrap();
        locked.send(&[2; 5], T).unwrap();
        assert_eq!(locked.occupancy(), 2);
        assert_eq!(locked.len_bytes(), 8);
        locked.recv(T).unwrap();
        assert_eq!((locked.occupancy(), locked.len_bytes()), (1, 5));

        let ring = RingTransport::new(64, 8);
        assert_eq!((ring.occupancy(), ring.len_bytes()), (0, 0));
        ring.send(&[1; 3], T).unwrap();
        ring.send(&[2; 5], T).unwrap();
        assert_eq!(ring.occupancy(), 2);
        assert_eq!(ring.len_bytes(), 16, "slot-granular: 2 slots × 8 B");
        ring.recv(T).unwrap();
        ring.recv(T).unwrap();
        assert_eq!((ring.occupancy(), ring.len_bytes()), (0, 0));
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        for t in all(16, 4) {
            for _ in 0..4 {
                t.send(&[0; 4], T).unwrap();
            }
            assert_eq!(t.occupancy(), 4);
            assert_eq!(t.len_bytes(), 16);
        }
    }

    #[test]
    fn send_in_place_frames_into_channel_storage() {
        for t in all(32, 8) {
            t.send_in_place(
                8,
                &mut |buf| {
                    buf[..6].copy_from_slice(b"framed");
                    6
                },
                T,
            )
            .unwrap();
            assert_eq!(t.recv(T).unwrap(), b"framed");
            assert_eq!(
                t.send_in_place(9, &mut |_| 0, T),
                Err(TransportError::TooLarge { bytes: 9, max: 8 })
            );
        }
    }

    #[test]
    fn recv_token_is_owned_on_copying_transports() {
        for t in [
            Box::new(LockedTransport::new(16, 8)) as Box<dyn Transport>,
            Box::new(RingTransport::new(16, 8)),
        ] {
            t.send(b"abc", T).unwrap();
            let tok = t.recv_token(T).unwrap();
            assert!(!tok.is_pooled());
            assert_eq!(&*tok, b"abc");
        }
    }

    #[test]
    fn pointer_send_token_moves_the_slot_without_copying() {
        let t = PointerTransport::new(4 * 16, 16);
        let mut lease = t.buffer_pool().acquire(T).unwrap();
        lease[..5].copy_from_slice(b"zcopy");
        lease.truncate(5);
        let addr = lease.as_ptr();
        t.send_token(Token::Pooled(lease), T).unwrap();
        let got = t.recv_token(T).unwrap();
        assert!(got.is_pooled());
        assert_eq!(&*got, b"zcopy");
        assert_eq!(
            got.as_ptr(),
            addr,
            "same slot bytes on both sides — pointer exchange, not a copy"
        );
        drop(got);
        assert_eq!(t.buffer_pool().available(), 4, "drop released the slot");
    }

    #[test]
    fn shared_pool_chain_relays_without_copying() {
        // Two edges of a chain share one slab (§5.2 forwarding): a
        // token received from the first hop passes through the second
        // as a bare descriptor, payload bytes staying put.
        let t1 = PointerTransport::new(4 * 16, 16);
        let t2 = PointerTransport::with_pool(t1.buffer_pool().clone());
        t1.send(b"chained", T).unwrap();
        let mut token = t1.recv_token(T).unwrap();
        let addr = token.as_ptr();
        // An in-place transform over the lease, as a filter PE would.
        token[0] = b'C';
        t2.send_token(token, T).unwrap();
        let got = t2.recv_token(T).unwrap();
        assert_eq!(&*got, b"Chained");
        assert_eq!(got.as_ptr(), addr, "both hops served from one slot");
        drop(got);
        assert_eq!(t1.buffer_pool().available(), 4);
        assert_eq!(t2.buffer_pool().available(), 4, "same pool");
    }

    #[test]
    fn pointer_forwards_trimmed_leases_by_offset() {
        let t = PointerTransport::new(2 * 16, 16);
        let mut lease = t.buffer_pool().acquire(T).unwrap();
        lease[..8].copy_from_slice(b"hdr!body");
        lease.truncate(8);
        lease.trim_front(4);
        t.send_token(Token::Pooled(lease), T).unwrap();
        assert_eq!(t.recv(T).unwrap(), b"body");
    }

    #[test]
    fn pointer_foreign_tokens_fall_back_to_copy() {
        let t = PointerTransport::new(2 * 8, 8);
        t.send_token(Token::Owned(b"owned".to_vec()), T).unwrap();
        let other = BufferPool::new(1, 8);
        let mut lease = other.acquire(T).unwrap();
        lease[..3].copy_from_slice(b"for");
        lease.truncate(3);
        t.send_token(Token::Pooled(lease), T).unwrap();
        assert_eq!(other.available(), 1, "foreign lease released after copy");
        assert_eq!(t.recv(T).unwrap(), b"owned");
        assert_eq!(t.recv(T).unwrap(), b"for");
    }

    #[test]
    fn pointer_streams_many_tokens_across_threads() {
        let t = Arc::new(PointerTransport::new(8 * 16, 16));
        let tx = Arc::clone(&t);
        let n: u32 = 20_000;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.send_in_place(
                    4,
                    &mut |buf| {
                        buf.copy_from_slice(&i.to_le_bytes());
                        4
                    },
                    Duration::from_secs(10),
                )
                .unwrap();
            }
        });
        for i in 0..n {
            let tok = t.recv_token(Duration::from_secs(10)).unwrap();
            assert_eq!(u32::from_le_bytes(tok[..4].try_into().unwrap()), i);
        }
        producer.join().unwrap();
        assert_eq!(t.buffer_pool().available(), 8, "all slots back in the pool");
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = TransportError::TooLarge {
            bytes: 100,
            max: 64,
        };
        assert!(e.to_string().contains("100") && e.to_string().contains("64"));
        assert!(TransportError::Full.to_string().contains("full"));
    }
}

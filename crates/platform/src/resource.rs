//! FPGA resource modeling — the substitute for ISE synthesis reports.
//!
//! Tables 1 and 2 of the paper report post-synthesis area (slices, slice
//! flip-flops, 4-input LUTs, block RAMs, DSP48s) for the full system and
//! for the SPI library relative to the full system. Without an HDL flow
//! we model area *additively*: every hardware component carries a
//! [`ResourceEstimate`], designs aggregate their components, and
//! utilization is reported against a Virtex-4 device capacity table.
//! Component costs are calibrated to typical Virtex-4-era IP sizes so
//! the *relative* conclusions (SPI's share of the system) are meaningful;
//! absolute counts are indicative only.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

/// Post-synthesis area estimate in Virtex-4 resource categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Occupied slices.
    pub slices: u64,
    /// Slice flip-flops.
    pub slice_ffs: u64,
    /// 4-input LUTs.
    pub lut4: u64,
    /// 18-kbit block RAMs.
    pub bram: u64,
    /// DSP48 blocks.
    pub dsp48: u64,
}

impl ResourceEstimate {
    /// A zero estimate.
    pub const ZERO: ResourceEstimate = ResourceEstimate {
        slices: 0,
        slice_ffs: 0,
        lut4: 0,
        bram: 0,
        dsp48: 0,
    };

    /// Creates an estimate from the five category counts.
    pub fn new(slices: u64, slice_ffs: u64, lut4: u64, bram: u64, dsp48: u64) -> Self {
        ResourceEstimate {
            slices,
            slice_ffs,
            lut4,
            bram,
            dsp48,
        }
    }

    /// Fraction of `self` relative to `total`, per category (0–100 %).
    /// Categories where `total` is zero report 0.
    pub fn percent_of(&self, total: &ResourceEstimate) -> ResourcePercent {
        let pct = |a: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                100.0 * a as f64 / b as f64
            }
        };
        ResourcePercent {
            slices: pct(self.slices, total.slices),
            slice_ffs: pct(self.slice_ffs, total.slice_ffs),
            lut4: pct(self.lut4, total.lut4),
            bram: pct(self.bram, total.bram),
            dsp48: pct(self.dsp48, total.dsp48),
        }
    }
}

impl Add for ResourceEstimate {
    type Output = ResourceEstimate;

    fn add(self, rhs: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            slices: self.slices + rhs.slices,
            slice_ffs: self.slice_ffs + rhs.slice_ffs,
            lut4: self.lut4 + rhs.lut4,
            bram: self.bram + rhs.bram,
            dsp48: self.dsp48 + rhs.dsp48,
        }
    }
}

impl AddAssign for ResourceEstimate {
    fn add_assign(&mut self, rhs: ResourceEstimate) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for ResourceEstimate {
    type Output = ResourceEstimate;

    fn mul(self, n: u64) -> ResourceEstimate {
        ResourceEstimate {
            slices: self.slices * n,
            slice_ffs: self.slice_ffs * n,
            lut4: self.lut4 * n,
            bram: self.bram * n,
            dsp48: self.dsp48 * n,
        }
    }
}

impl Sum for ResourceEstimate {
    fn sum<I: Iterator<Item = ResourceEstimate>>(iter: I) -> ResourceEstimate {
        iter.fold(ResourceEstimate::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} slices, {} FFs, {} LUT4, {} BRAM, {} DSP48",
            self.slices, self.slice_ffs, self.lut4, self.bram, self.dsp48
        )
    }
}

/// Per-category utilization percentages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourcePercent {
    /// Slices, percent.
    pub slices: f64,
    /// Slice flip-flops, percent.
    pub slice_ffs: f64,
    /// 4-input LUTs, percent.
    pub lut4: f64,
    /// Block RAMs, percent.
    pub bram: f64,
    /// DSP48s, percent.
    pub dsp48: f64,
}

impl fmt::Display for ResourcePercent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% slices, {:.2}% FFs, {:.2}% LUT4, {:.2}% BRAM, {:.2}% DSP48",
            self.slices, self.slice_ffs, self.lut4, self.bram, self.dsp48
        )
    }
}

/// Device capacity table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Total capacity in each category.
    pub capacity: ResourceEstimate,
}

impl Device {
    /// Xilinx Virtex-4 SX35 (the paper's device family, speed grade −10):
    /// 15 360 slices, 30 720 FFs/LUTs, 192 BRAMs, 192 DSP48s.
    pub fn virtex4_sx35() -> Device {
        Device {
            name: "Virtex-4 SX35",
            capacity: ResourceEstimate::new(15_360, 30_720, 30_720, 192, 192),
        }
    }

    /// Utilization of `used` on this device.
    pub fn utilization(&self, used: &ResourceEstimate) -> ResourcePercent {
        used.percent_of(&self.capacity)
    }
}

/// Calibrated component library (typical Virtex-4-era IP sizes).
///
/// These constants are this reproduction's substitute for ISE synthesis;
/// see `DESIGN.md` for the substitution rationale.
pub mod components {
    use super::ResourceEstimate;

    /// One SPI_send actor for the static interface: edge-ID header
    /// emission + FIFO write port + pointer logic.
    pub fn spi_send_static() -> ResourceEstimate {
        ResourceEstimate::new(30, 45, 55, 0, 0)
    }

    /// One SPI_receive actor for the static interface.
    pub fn spi_receive_static() -> ResourceEstimate {
        ResourceEstimate::new(28, 40, 52, 0, 0)
    }

    /// SPI_send for the dynamic interface: adds a message-size header
    /// field and size counter.
    pub fn spi_send_dynamic() -> ResourceEstimate {
        ResourceEstimate::new(42, 62, 78, 0, 0)
    }

    /// SPI_receive for the dynamic interface: size-field parse + variable
    /// length countdown.
    pub fn spi_receive_dynamic() -> ResourceEstimate {
        ResourceEstimate::new(40, 58, 74, 0, 0)
    }

    /// SPI_init (per subsystem): edge table + pointer initialization.
    pub fn spi_init() -> ResourceEstimate {
        ResourceEstimate::new(18, 22, 30, 0, 0)
    }

    /// One inter-processor FIFO buffer of `bytes` capacity: BRAM-backed
    /// above 512 B (one 18-kbit BRAM per 2 KiB), distributed RAM below.
    pub fn ipc_fifo(bytes: u64) -> ResourceEstimate {
        if bytes > 512 {
            let brams = bytes.div_ceil(2048);
            ResourceEstimate::new(20, 24, 28, brams, 0)
        } else {
            // LUT-RAM: ~1 LUT per 2 bytes plus control.
            ResourceEstimate::new(16 + bytes / 8, 20, 24 + bytes / 2, 0, 0)
        }
    }

    /// Radix-2 streaming FFT datapath for `n`-point frames.
    pub fn fft_core(n: u64) -> ResourceEstimate {
        let stages = 64 - u64::from(n.max(2).leading_zeros()) - 1;
        ResourceEstimate::new(
            350 + 40 * stages,
            700 + 60 * stages,
            900 + 90 * stages,
            2,
            4 * stages,
        )
    }

    /// LU-decomposition solver for an `m × m` system.
    pub fn lu_solver(m: u64) -> ResourceEstimate {
        ResourceEstimate::new(250 + 12 * m, 420 + 18 * m, 600 + 30 * m, 2, 8)
    }

    /// Prediction-error generator over frames of `n` samples with model
    /// order `m`: a double-precision MAC pipeline with section memory —
    /// substantial on 2008-era fabric.
    pub fn error_generator(m: u64) -> ResourceEstimate {
        ResourceEstimate::new(1_350 + 20 * m, 2_100 + 30 * m, 2_700 + 40 * m, 1, 8)
    }

    /// Huffman encoder (canonical, table in BRAM).
    pub fn huffman_encoder() -> ResourceEstimate {
        ResourceEstimate::new(180, 260, 380, 2, 0)
    }

    /// Frame reader / I/O interface.
    pub fn io_interface() -> ResourceEstimate {
        ResourceEstimate::new(90, 150, 200, 1, 0)
    }

    /// One particle-filter PE handling `particles` particles: state
    /// propagation, likelihood (exp) evaluation, weight update and local
    /// resampling datapaths — the dominant blocks of the paper's
    /// application 2 ("the computational requirement was relatively
    /// high and hence only 2 PEs could be accommodated").
    pub fn particle_filter_pe(particles: u64) -> ResourceEstimate {
        // Particle memory: 16 B/particle state+weight in BRAM.
        let brams = (particles * 16).div_ceil(2048).max(1) + 4;
        ResourceEstimate::new(5_200, 8_600, 9_400, brams, 32)
    }

    /// Gaussian noise generator (Box–Muller, table-assisted).
    pub fn noise_generator() -> ResourceEstimate {
        ResourceEstimate::new(220, 380, 520, 1, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_composes() {
        let a = ResourceEstimate::new(1, 2, 3, 4, 5);
        let b = ResourceEstimate::new(10, 20, 30, 40, 50);
        assert_eq!(a + b, ResourceEstimate::new(11, 22, 33, 44, 55));
        assert_eq!(a * 3, ResourceEstimate::new(3, 6, 9, 12, 15));
        let sum: ResourceEstimate = vec![a, b, a].into_iter().sum();
        assert_eq!(sum, ResourceEstimate::new(12, 24, 36, 48, 60));
    }

    #[test]
    fn percent_of_handles_zero_categories() {
        let spi = ResourceEstimate::new(50, 0, 0, 0, 0);
        let total = ResourceEstimate::new(1000, 0, 0, 0, 0);
        let p = spi.percent_of(&total);
        assert!((p.slices - 5.0).abs() < 1e-12);
        assert_eq!(p.dsp48, 0.0);
    }

    #[test]
    fn virtex4_capacities_match_datasheet() {
        let dev = Device::virtex4_sx35();
        assert_eq!(dev.capacity.slices, 15_360);
        assert_eq!(dev.capacity.bram, 192);
        assert_eq!(dev.capacity.dsp48, 192);
    }

    #[test]
    fn fifo_model_switches_to_bram() {
        let small = components::ipc_fifo(256);
        assert_eq!(small.bram, 0);
        let big = components::ipc_fifo(4096);
        assert_eq!(big.bram, 2);
    }

    #[test]
    fn spi_components_are_small_relative_to_cores() {
        let spi_pair = components::spi_send_dynamic() + components::spi_receive_dynamic();
        let fft = components::fft_core(1024);
        assert!(
            spi_pair.slices * 4 < fft.slices,
            "SPI must be small vs. compute cores"
        );
    }

    #[test]
    fn utilization_is_bounded_for_real_designs() {
        let dev = Device::virtex4_sx35();
        let design = components::fft_core(1024)
            + components::lu_solver(16)
            + components::huffman_encoder()
            + components::io_interface();
        let u = dev.utilization(&design);
        assert!(u.slices < 100.0);
        assert!(u.lut4 < 100.0);
    }

    #[test]
    fn display_formats_every_category() {
        let e = ResourceEstimate::new(1, 2, 3, 4, 5);
        let s = e.to_string();
        for cat in ["slices", "FFs", "LUT4", "BRAM", "DSP48"] {
            assert!(s.contains(cat));
        }
    }
}

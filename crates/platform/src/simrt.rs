//! Seeded whole-system simulation runtime (the engine behind `spi-sim`).
//!
//! Where [`crate::verify`] exhaustively explores the interleavings of a
//! small fixed-thread scenario, this module runs *one* schedule per
//! seed over an arbitrarily large dynamic-thread system — the
//! FoundationDB style of deterministic simulation testing:
//!
//! * Real OS threads execute the scenario, but only one runs at a time:
//!   every shim operation (atomics, locks, condvars, park/unpark,
//!   sleep, spawn/join — see [`crate::shim`]) is a *schedule point*
//!   where the thread declares what it is about to do and waits for the
//!   controller's grant.
//! * The controller picks the next thread with a seeded PRNG, so the
//!   same seed deterministically reproduces the same schedule — and the
//!   same canonical event log, byte for byte.
//! * Time is virtual: [`crate::shim::now`] reads the session epoch plus
//!   a virtual offset that advances **only when no thread can run**, and
//!   then jumps straight to the earliest pending deadline (park slice,
//!   condvar timeout, sleep). A run where every thread is blocked with
//!   no deadline in sight is a deadlock, reported with each thread's
//!   blocked operation.
//! * Threads register dynamically: [`crate::shim::scope`] and
//!   [`crate::shim::spawn`] enroll children into the running session,
//!   so the full stack — runner PEs, supervision retry loops, and the
//!   `spi-net` background ack/flush/pump threads — simulates without
//!   scenario-side plumbing.
//!
//! Failures carry the granted schedule; [`shrink`] reuses the greedy
//! context-switch-deferral minimizer shared with the model checker to
//! reduce it, and [`replay`] re-executes a schedule exactly.
//!
//! In *strict park* mode ([`SimOptions::strict_park`]) park deadlines
//! never fire — the production code's bounded park slices cannot paper
//! over a lost wakeup, which is how the PR 3 `RingTransport` regression
//! is rediscovered from a seed sweep (see `spi-sim`'s tests).

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::verify::{self, FailureKind, Step};

/// Number of live simulation sessions, process-wide (shim fast path).
static SIM_ACTIVE: StdAtomicUsize = StdAtomicUsize::new(0);

thread_local! {
    static SIM_CTX: std::cell::RefCell<Option<SimCtx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
struct SimCtx {
    sess: SessionHandle,
    tid: usize,
}

/// Shared handle to a running simulation session (used by
/// [`crate::shim::spawn`] / [`crate::shim::scope`] to enroll children).
pub(crate) type SessionHandle = Arc<Session>;

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// A visible operation a simulated thread is about to perform.
/// Deadlines are virtual-clock offsets from the session epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SOp {
    Start,
    Load(usize),
    Store(usize),
    Rmw(usize),
    Lock(usize),
    Unlock(usize),
    Park {
        deadline: Option<Duration>,
    },
    Unpark(usize),
    CvWait {
        cv: usize,
        deadline: Option<Duration>,
    },
    CvNotify {
        cv: usize,
        all: bool,
    },
    Sleep {
        until: Duration,
    },
    Join(usize),
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

struct ThreadSt {
    name: String,
    /// Declared-but-not-yet-granted operation.
    pending: Option<SOp>,
    finished: bool,
    /// Park token (std semantics: at most one).
    token: bool,
    /// Condvar wakeup flag, set by a granted CvNotify.
    notified: bool,
    /// Result slot read back by the waiter after a CvWait grant.
    timed_out: bool,
}

impl ThreadSt {
    fn new(name: String) -> Self {
        ThreadSt {
            name,
            pending: None,
            finished: false,
            token: false,
            notified: false,
            timed_out: false,
        }
    }
}

struct St {
    threads: Vec<ThreadSt>,
    /// Thread currently granted (running between schedule points).
    current: Option<usize>,
    /// Mutex object id -> owning simulated thread.
    lock_owner: HashMap<usize, usize>,
    labels: HashMap<usize, &'static str>,
    panicked: Option<(usize, String)>,
    abort: bool,
    /// Virtual time since the session epoch.
    vnow: Duration,
    next_obj: usize,
}

pub(crate) struct Session {
    st: Mutex<St>,
    /// Broadcast to grant a worker. Unlike `verify`'s per-worker
    /// targeted condvars (tuned for millions of tiny runs), a sim
    /// session is one run with a dynamic thread set — a shared condvar
    /// keeps registration growable and the stampede is bounded by the
    /// handful of threads blocked at any instant.
    worker_cv: Condvar,
    ctrl_cv: Condvar,
    epoch: Instant,
}

impl Session {
    fn new() -> SessionHandle {
        Arc::new(Session {
            st: Mutex::new(St {
                threads: Vec::new(),
                current: None,
                lock_owner: HashMap::new(),
                labels: HashMap::new(),
                panicked: None,
                abort: false,
                vnow: Duration::ZERO,
                next_obj: 1,
            }),
            worker_cv: Condvar::new(),
            ctrl_cv: Condvar::new(),
            epoch: Instant::now(),
        })
    }

    /// Declares `op` for `tid` and blocks until the controller grants
    /// it, returning the state guard (so callers can read result
    /// slots). When the run has been abandoned this unwinds via
    /// `ModelAbort` — or, if the thread is already unwinding (a Drop
    /// impl issuing shim ops), returns `None` and the op is skipped.
    fn declare_and_wait<'a>(
        &self,
        mut st: MutexGuard<'a, St>,
        tid: usize,
        op: SOp,
    ) -> Option<MutexGuard<'a, St>> {
        if st.abort {
            drop(st);
            verify::abort_unwind();
            return None;
        }
        st.threads[tid].pending = Some(op);
        // Only clear `current` when the declarer held it: a freshly
        // spawned child declares Start while its parent still runs.
        if st.current == Some(tid) {
            st.current = None;
        }
        self.ctrl_cv.notify_one();
        loop {
            if st.abort {
                drop(st);
                verify::abort_unwind();
                return None;
            }
            if st.current == Some(tid) {
                return Some(st);
            }
            st = self.worker_cv.wait(st).expect("sim session state");
        }
    }

    fn lock_st(&self) -> MutexGuard<'_, St> {
        self.st.lock().expect("sim session state")
    }

    fn schedule_point(&self, tid: usize, op: SOp) {
        let st = self.lock_st();
        drop(self.declare_and_wait(st, tid, op));
    }

    /// The condvar wait protocol: atomically (in the model's view, at
    /// this declaration) release `mutex` and enqueue on `cv`; the grant
    /// arrives once notified or the virtual deadline fires. Returns
    /// whether the wait timed out. The caller re-acquires the mutex
    /// through a separate Lock schedule point.
    fn cv_wait(&self, tid: usize, cv: usize, mutex: usize, dur: Option<Duration>) -> bool {
        let mut st = self.lock_st();
        if !st.abort {
            debug_assert_eq!(st.lock_owner.get(&mutex).copied(), Some(tid));
            st.lock_owner.remove(&mutex);
            st.threads[tid].notified = false;
        }
        let deadline = dur.map(|d| st.vnow + d);
        match self.declare_and_wait(st, tid, SOp::CvWait { cv, deadline }) {
            Some(st) => st.threads[tid].timed_out,
            None => true,
        }
    }

    fn park(&self, tid: usize, dur: Option<Duration>) {
        let st = self.lock_st();
        let deadline = dur.map(|d| st.vnow + d);
        drop(self.declare_and_wait(st, tid, SOp::Park { deadline }));
    }

    fn sleep_op(&self, tid: usize, dur: Duration) {
        let st = self.lock_st();
        let until = st.vnow + dur;
        drop(self.declare_and_wait(st, tid, SOp::Sleep { until }));
    }

    fn thread_done(&self, tid: usize, result: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.st.lock().expect("sim session state");
        st.threads[tid].finished = true;
        if let Err(payload) = result {
            if !verify::is_model_abort(payload.as_ref()) && st.panicked.is_none() {
                st.panicked = Some((tid, verify::panic_message(payload.as_ref())));
            }
        }
        if st.current == Some(tid) {
            st.current = None;
        }
        self.ctrl_cv.notify_one();
    }
}

// ---------------------------------------------------------------------------
// Shim entry points
// ---------------------------------------------------------------------------

fn ctx() -> Option<SimCtx> {
    if SIM_ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SIM_CTX.with(|c| c.borrow().clone())
}

fn worker_point(op: SOp) {
    if let Some(c) = ctx() {
        c.sess.schedule_point(c.tid, op);
    }
}

pub(crate) fn op_load(obj: usize) {
    worker_point(SOp::Load(obj));
}

pub(crate) fn op_store(obj: usize) {
    worker_point(SOp::Store(obj));
}

pub(crate) fn op_rmw(obj: usize) {
    worker_point(SOp::Rmw(obj));
}

pub(crate) fn op_lock(obj: usize) {
    worker_point(SOp::Lock(obj));
}

pub(crate) fn op_unlock(obj: usize) {
    worker_point(SOp::Unlock(obj));
}

/// Returns `true` when the park was handled by the simulator.
pub(crate) fn op_park(dur: Option<Duration>) -> bool {
    match ctx() {
        Some(c) => {
            c.sess.park(c.tid, dur);
            true
        }
        None => false,
    }
}

/// Returns `true` when the unpark was handled by the simulator.
pub(crate) fn op_unpark(target: usize) -> bool {
    match ctx() {
        Some(c) => {
            c.sess.schedule_point(c.tid, SOp::Unpark(target));
            true
        }
        None => false,
    }
}

/// Modeled condvar wait; returns whether it timed out. Only call when
/// [`in_session`] is true.
pub(crate) fn op_cv_wait(cv: usize, mutex: usize, dur: Option<Duration>) -> bool {
    match ctx() {
        Some(c) => c.sess.cv_wait(c.tid, cv, mutex, dur),
        None => false,
    }
}

/// Returns `true` when the notify was handled by the simulator.
pub(crate) fn op_cv_notify(cv: usize, all: bool) -> bool {
    match ctx() {
        Some(c) => {
            c.sess.schedule_point(c.tid, SOp::CvNotify { cv, all });
            true
        }
        None => false,
    }
}

/// Returns `true` when the sleep was handled (virtually) by the
/// simulator.
pub(crate) fn op_sleep(dur: Duration) -> bool {
    match ctx() {
        Some(c) => {
            c.sess.sleep_op(c.tid, dur);
            true
        }
        None => false,
    }
}

/// Declares a join on simulated thread `target` (enabled once it has
/// finished). No-op outside a session.
pub(crate) fn op_join(target: usize) {
    worker_point(SOp::Join(target));
}

/// Simulated thread index of the calling thread, if any.
pub(crate) fn worker_tid() -> Option<usize> {
    ctx().map(|c| c.tid)
}

/// The virtual session clock, if the calling thread is in a session.
pub(crate) fn virtual_now() -> Option<Instant> {
    ctx().map(|c| {
        let vnow = c.sess.st.lock().expect("sim session state").vnow;
        c.sess.epoch + vnow
    })
}

/// Whether the calling thread belongs to an active sim session.
pub(crate) fn in_session() -> bool {
    ctx().is_some()
}

/// Allocates a deterministic object id in the calling thread's session
/// (creation order is serialized by the scheduler), or `None` outside
/// any sim session.
pub(crate) fn next_object_id(label: &'static str) -> Option<usize> {
    ctx().map(|c| {
        let mut st = c.sess.st.lock().expect("sim session state");
        let id = st.next_obj;
        st.next_obj += 1;
        st.labels.insert(id, label);
        id
    })
}

/// The calling thread's session handle, for enrolling spawned children.
pub(crate) fn session_handle() -> Option<SessionHandle> {
    ctx().map(|c| c.sess)
}

/// Registers a new simulated thread (called by the parent *before*
/// spawning the real thread, so the controller waits for its Start).
pub(crate) fn register_child(sess: &SessionHandle, name: String) -> usize {
    let mut st = sess.lock_st();
    st.threads.push(ThreadSt::new(name));
    st.threads.len() - 1
}

/// Body wrapper for every simulated thread: installs the session
/// context, declares Start, runs `f`, and reports completion. Panics
/// (including `ModelAbort` unwinds) are recorded in the session rather
/// than propagated — a scenario failure is reported by the controller,
/// not by a poisoned scope join.
pub(crate) fn child_main(sess: SessionHandle, tid: usize, f: impl FnOnce()) {
    SIM_CTX.with(|c| {
        *c.borrow_mut() = Some(SimCtx {
            sess: Arc::clone(&sess),
            tid,
        })
    });
    let r = panic::catch_unwind(AssertUnwindSafe(|| {
        sess.schedule_point(tid, SOp::Start);
        f();
    }));
    SIM_CTX.with(|c| *c.borrow_mut() = None);
    sess.thread_done(tid, r);
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Tunables for one simulated run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// PRNG seed driving every scheduling decision.
    pub seed: u64,
    /// When set, park deadlines never fire: the bounded park slices
    /// production code uses to ride out scheduler pathology cannot mask
    /// a lost wakeup, which then surfaces as a deadlock. Condvar
    /// timeouts and sleeps still fire (supervision deadlines keep
    /// working). Off by default.
    pub strict_park: bool,
    /// Step budget; exceeding it fails the run as a livelock.
    pub max_steps: usize,
    /// Replay budget for [`shrink`].
    pub minimize_budget: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0,
            strict_park: false,
            max_steps: 2_000_000,
            minimize_budget: 200,
        }
    }
}

impl SimOptions {
    /// Options for `seed` with everything else default.
    pub fn seeded(seed: u64) -> Self {
        SimOptions {
            seed,
            ..SimOptions::default()
        }
    }
}

/// A failing simulated schedule.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// What went wrong (shared with the model checker's report type).
    pub kind: FailureKind,
    /// The failing interleaving, one step per grant.
    pub trace: Vec<Step>,
    /// Steps in the originally discovered failing schedule.
    pub raw_steps: usize,
    /// Context switches in the reported interleaving.
    pub context_switches: usize,
    /// Thread choice per step — feed to [`replay`] to re-execute, or to
    /// [`shrink`] to minimize.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        verify::Failure {
            kind: self.kind.clone(),
            trace: self.trace.clone(),
            raw_steps: self.raw_steps,
            context_switches: self.context_switches,
        }
        .fmt(f)
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The seed that produced this run (0 for forced replays).
    pub seed: u64,
    /// Schedule points granted.
    pub steps: usize,
    /// Final virtual time.
    pub vtime: Duration,
    /// Canonical event log: byte-identical for the same seed across
    /// runs and platforms (no wall-clock values, no addresses, no
    /// hash-order iteration).
    pub log: String,
    /// Thread choice per step.
    pub schedule: Vec<usize>,
    /// The failure, if the run did not complete. `None` for successful
    /// runs *and* for forced replays that diverged from their schedule.
    pub failure: Option<SimFailure>,
}

#[derive(Clone, Copy)]
enum SimMode<'a> {
    Seeded(u64),
    Forced(&'a [usize]),
}

/// Runs `scenario` once under the seeded scheduler.
pub fn run(opts: &SimOptions, scenario: impl Fn() + Send + Sync) -> SimRun {
    run_once(opts, SimMode::Seeded(opts.seed), &scenario)
}

/// Re-executes an exact schedule (e.g. a shrunk one). After the forced
/// prefix is exhausted the run completes with the deterministic
/// stay-on-thread policy. A divergence (the schedule names a thread
/// that is not enabled) ends the run with `failure: None`.
pub fn replay(opts: &SimOptions, schedule: &[usize], scenario: impl Fn() + Send + Sync) -> SimRun {
    run_once(opts, SimMode::Forced(schedule), &scenario)
}

/// Greedily minimizes a failing schedule by deferring context switches,
/// reusing the model checker's witness-minimization machinery. Returns
/// the best reproduction found (the original failure if no variant
/// reproduced it).
pub fn shrink(
    opts: &SimOptions,
    failure: &SimFailure,
    scenario: impl Fn() + Send + Sync,
) -> SimFailure {
    let want = failure.kind.clone();
    let best = verify::greedy_defer(failure.schedule.clone(), opts.minimize_budget, |forced| {
        let r = run_once(opts, SimMode::Forced(forced), &scenario);
        match r.failure {
            Some(f) if verify::same_kind(&f.kind, &want) => Some(r.schedule),
            _ => None,
        }
    });
    let r = run_once(opts, SimMode::Forced(&best), &scenario);
    match r.failure {
        Some(mut f) => {
            f.raw_steps = failure.raw_steps;
            f
        }
        None => failure.clone(),
    }
}

fn run_once(opts: &SimOptions, mode: SimMode<'_>, scenario: &(impl Fn() + Send + Sync)) -> SimRun {
    verify::install_abort_hook();
    let sess = Session::new();
    sess.st
        .lock()
        .expect("sim session state")
        .threads
        .push(ThreadSt::new("main".to_string()));
    SIM_ACTIVE.fetch_add(1, Ordering::Relaxed);
    let out = std::thread::scope(|s| {
        let root = Arc::clone(&sess);
        std::thread::Builder::new()
            .name("spi-sim-main".into())
            .spawn_scoped(s, move || child_main(root, 0, scenario))
            .expect("spawn sim root thread");
        drive(opts, &sess, mode)
    });
    SIM_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    out
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn enabled_op(st: &St, t: usize, strict: bool) -> bool {
    match st.threads[t].pending {
        Some(SOp::Park { deadline }) => {
            st.threads[t].token || (!strict && deadline.is_some_and(|d| st.vnow >= d))
        }
        Some(SOp::Lock(m)) => !st.lock_owner.contains_key(&m),
        Some(SOp::CvWait { deadline, .. }) => {
            st.threads[t].notified || deadline.is_some_and(|d| st.vnow >= d)
        }
        Some(SOp::Sleep { until }) => st.vnow >= until,
        Some(SOp::Join(c)) => st.threads[c].finished,
        Some(_) => true,
        None => false,
    }
}

/// Earliest virtual deadline among blocked threads, if any.
fn next_deadline(st: &St, strict: bool) -> Option<Duration> {
    let mut min: Option<Duration> = None;
    for t in &st.threads {
        if t.finished {
            continue;
        }
        let d = match t.pending {
            Some(SOp::Park { deadline }) if !strict => deadline,
            Some(SOp::CvWait { deadline, .. }) => deadline,
            Some(SOp::Sleep { until }) => Some(until),
            _ => None,
        };
        if let Some(d) = d {
            min = Some(min.map_or(d, |m| m.min(d)));
        }
    }
    min
}

fn apply_grant(st: &mut St, choice: usize, op: &SOp) {
    match *op {
        SOp::Park { .. } => st.threads[choice].token = false,
        SOp::Unpark(t) if t < st.threads.len() => st.threads[t].token = true,
        SOp::Lock(m) => {
            st.lock_owner.insert(m, choice);
        }
        SOp::Unlock(m) => {
            st.lock_owner.remove(&m);
        }
        SOp::CvWait { .. } => {
            let th = &mut st.threads[choice];
            th.timed_out = !th.notified;
            th.notified = false;
        }
        SOp::CvNotify { cv, all } => {
            // Deterministic wake order: lowest thread id first.
            for t in 0..st.threads.len() {
                let waiting = matches!(
                    st.threads[t].pending,
                    Some(SOp::CvWait { cv: c, .. }) if c == cv
                ) && !st.threads[t].notified;
                if waiting {
                    st.threads[t].notified = true;
                    if !all {
                        break;
                    }
                }
            }
        }
        _ => {}
    }
}

fn obj_name(id: usize, labels: &HashMap<usize, &'static str>) -> String {
    match labels.get(&id) {
        Some(l) => format!("{l}#{id}"),
        None => format!("obj#{id}"),
    }
}

fn op_text(
    op: &SOp,
    labels: &HashMap<usize, &'static str>,
    name_of: impl Fn(usize) -> String,
) -> String {
    match *op {
        SOp::Start => "start".to_string(),
        SOp::Load(o) => format!("load {}", obj_name(o, labels)),
        SOp::Store(o) => format!("store {}", obj_name(o, labels)),
        SOp::Rmw(o) => format!("cas {}", obj_name(o, labels)),
        SOp::Lock(o) => format!("lock {}", obj_name(o, labels)),
        SOp::Unlock(o) => format!("unlock {}", obj_name(o, labels)),
        SOp::Park { deadline: Some(d) } => format!("park (deadline {}ns)", d.as_nanos()),
        SOp::Park { deadline: None } => "park".to_string(),
        SOp::Unpark(t) => format!("unpark [{}]", name_of(t)),
        SOp::CvWait {
            cv,
            deadline: Some(d),
        } => format!(
            "cv-wait {} (deadline {}ns)",
            obj_name(cv, labels),
            d.as_nanos()
        ),
        SOp::CvWait { cv, deadline: None } => format!("cv-wait {}", obj_name(cv, labels)),
        SOp::CvNotify { cv, all: false } => format!("cv-notify-one {}", obj_name(cv, labels)),
        SOp::CvNotify { cv, all: true } => format!("cv-notify-all {}", obj_name(cv, labels)),
        SOp::Sleep { until } => format!("sleep (until {}ns)", until.as_nanos()),
        SOp::Join(t) => format!("join [{}]", name_of(t)),
    }
}

fn describe_blocked(op: Option<&SOp>, labels: &HashMap<usize, &'static str>) -> String {
    match op {
        Some(SOp::Park { deadline: None }) => {
            "parked with no pending unpark (lost wakeup)".to_string()
        }
        Some(SOp::Park { deadline: Some(_) }) => {
            "parked with no pending unpark (lost wakeup; strict park)".to_string()
        }
        Some(SOp::Lock(m)) => format!("waiting for lock {}", obj_name(*m, labels)),
        Some(SOp::CvWait { cv, .. }) => {
            format!("waiting on {} with no notifier", obj_name(*cv, labels))
        }
        Some(SOp::Join(t)) => format!("joining simulated thread {t}"),
        Some(other) => format!(
            "blocked before {}",
            op_text(other, labels, |t| format!("t{t}"))
        ),
        None => "not yet started".to_string(),
    }
}

/// The controller loop: wait for quiescence, pick an enabled thread
/// (seeded or forced), apply the grant's model effects, log the step,
/// and advance the virtual clock when nothing can run.
fn drive(opts: &SimOptions, sess: &SessionHandle, mode: SimMode<'_>) -> SimRun {
    let mut rng = match mode {
        SimMode::Seeded(s) => s ^ 0xD6E8_FEB8_6659_FD93,
        SimMode::Forced(_) => 0,
    };
    let mut granted: Vec<(usize, SOp)> = Vec::new();
    let mut log = String::new();
    let mut last: Option<usize> = None;
    let mut diverged = false;

    let mut st = sess.st.lock().expect("sim session state");
    let outcome: Option<FailureKind> = loop {
        // Quiescence: nobody running, every live thread has declared.
        while !(st.current.is_none()
            && st.threads.iter().all(|t| t.finished || t.pending.is_some()))
        {
            st = sess.ctrl_cv.wait(st).expect("sim session state");
        }
        if let Some((tid, msg)) = st.panicked.clone() {
            break Some(FailureKind::Panic {
                thread: st.threads[tid].name.clone(),
                message: msg,
            });
        }
        if st.threads.iter().all(|t| t.finished) {
            break None;
        }
        if granted.len() >= opts.max_steps {
            break Some(FailureKind::StepLimit);
        }
        let n = st.threads.len();
        let enabled: Vec<usize> = (0..n)
            .filter(|&t| !st.threads[t].finished && enabled_op(&st, t, opts.strict_park))
            .collect();
        if enabled.is_empty() {
            if let Some(d) = next_deadline(&st, opts.strict_park) {
                debug_assert!(d > st.vnow, "deadline in the past yet thread not enabled");
                st.vnow = d;
                log.push_str(&format!(
                    "........ {:>12} -- clock advance\n",
                    st.vnow.as_nanos()
                ));
                continue;
            }
            let blocked = (0..n)
                .filter(|&t| !st.threads[t].finished)
                .map(|t| {
                    format!(
                        "{}: {}",
                        st.threads[t].name,
                        describe_blocked(st.threads[t].pending.as_ref(), &st.labels)
                    )
                })
                .collect();
            break Some(FailureKind::Deadlock { blocked });
        }

        let choice = match mode {
            SimMode::Forced(sched) => {
                let i = granted.len();
                if i < sched.len() {
                    let t = sched[i];
                    if !enabled.contains(&t) {
                        diverged = true;
                        break None;
                    }
                    t
                } else {
                    verify::prefer(last, &enabled, &[])
                }
            }
            SimMode::Seeded(_) => {
                if enabled.len() == 1 {
                    enabled[0]
                } else {
                    enabled[(splitmix(&mut rng) % enabled.len() as u64) as usize]
                }
            }
        };

        let op = st.threads[choice]
            .pending
            .take()
            .expect("granted thread pending");
        apply_grant(&mut st, choice, &op);
        let text = op_text(&op, &st.labels, |t| st.threads[t].name.clone());
        log.push_str(&format!(
            "{:08} {:>12} [{}] {}\n",
            granted.len(),
            st.vnow.as_nanos(),
            st.threads[choice].name,
            text
        ));
        granted.push((choice, op));
        last = Some(choice);
        st.current = Some(choice);
        sess.worker_cv.notify_all();
    };

    // Abandon or conclude the run: blocked workers observe `abort` and
    // unwind via `ModelAbort`; std::thread::scope joins the root, and
    // detached shim threads drain on their own.
    st.abort = true;
    st.current = None;
    let labels = st.labels.clone();
    let names: Vec<String> = st.threads.iter().map(|t| t.name.clone()).collect();
    let vtime = st.vnow;
    drop(st);
    sess.worker_cv.notify_all();

    let schedule: Vec<usize> = granted.iter().map(|&(t, _)| t).collect();
    let failure = if diverged {
        None
    } else {
        outcome.map(|kind| {
            let trace: Vec<Step> = granted
                .iter()
                .filter(|(_, op)| !matches!(op, SOp::Start))
                .map(|&(t, ref op)| Step {
                    thread: names[t].clone(),
                    op: op_text(op, &labels, |t| names[t].clone()),
                })
                .collect();
            SimFailure {
                kind,
                trace,
                raw_steps: schedule.len(),
                context_switches: verify::count_switches_ids(&schedule),
                schedule: schedule.clone(),
            }
        })
    };
    SimRun {
        seed: match mode {
            SimMode::Seeded(s) => s,
            SimMode::Forced(_) => 0,
        },
        steps: schedule.len(),
        vtime,
        log,
        schedule,
        failure,
    }
}

//! Stress tests for the transport layer, written to be run under
//! ThreadSanitizer (see `scripts/tsan.sh` and the CI `tsan` job) as well
//! as in the normal suite. They hammer the lock-free ring's claim /
//! publish / consume protocol and the park–unpark backpressure path with
//! enough volume that an ordering bug has a realistic chance to surface,
//! while still finishing in a few seconds without instrumentation.
//!
//! `SPI_STRESS_ITERS` scales the per-test message count (default
//! 20 000); the sanitizer script raises it since TSan's interleaving
//! exploration benefits from more traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use spi_platform::{
    ChannelId, ChannelSpec, LockedTransport, Op, Program, RingTransport, ThreadedRunner, Transport,
    TransportKind,
};

fn iters() -> u64 {
    std::env::var("SPI_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

const TIMEOUT: Duration = Duration::from_secs(60);

/// Deterministic payload for message `i`: length varies over the full
/// 0..=max range (zero-length included), bytes derive from the index.
fn payload(i: u64, max: usize) -> Vec<u8> {
    let len = (i as usize).wrapping_mul(7) % (max + 1);
    (0..len).map(|b| (i as u8).wrapping_add(b as u8)).collect()
}

/// One producer, one consumer, a ring so small that both sides block
/// constantly — the worst case for the park/unpark handshake.
#[test]
fn ring_spsc_survives_constant_backpressure() {
    let n = iters();
    let ring = RingTransport::new(16, 8); // 2 slots of 8 bytes
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..n {
                ring.send(&payload(i, 8), TIMEOUT).expect("send");
            }
        });
        s.spawn(|| {
            for i in 0..n {
                let got = ring.recv(TIMEOUT).expect("recv");
                assert_eq!(got, payload(i, 8), "message {i} corrupted");
            }
        });
    });
    assert!(ring.try_recv().is_err(), "ring drained");
}

/// The in-place path: payloads are written into and read out of the ring
/// slot directly, so TSan watches the raw slot bytes themselves.
#[test]
fn ring_in_place_path_is_race_free() {
    let n = iters();
    let ring = RingTransport::new(24, 8); // 3 slots
    let checksum = AtomicU64::new(0);
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..n {
                let data = payload(i, 8);
                ring.send_with(data.len(), &mut |slot| slot.copy_from_slice(&data), TIMEOUT)
                    .expect("send_with");
            }
        });
        s.spawn(|| {
            for _ in 0..n {
                ring.recv_with(
                    &mut |bytes| {
                        let sum: u64 = bytes.iter().map(|&b| u64::from(b)).sum();
                        checksum.fetch_add(sum, Ordering::Relaxed);
                    },
                    TIMEOUT,
                )
                .expect("recv_with");
            }
        });
    });
    let expected: u64 = (0..n).flat_map(|i| payload(i, 8)).map(u64::from).sum();
    assert_eq!(checksum.load(Ordering::Relaxed), expected);
}

/// Two rings in opposite directions, strict request/response — every
/// message alternates which side parks, so wake-ups must never be lost.
#[test]
fn ring_pingpong_never_loses_a_wakeup() {
    let n = iters() / 4; // round trips are 2 messages each
    let req = RingTransport::new(8, 8); // 1 slot: strict alternation
    let rsp = RingTransport::new(8, 8);
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..n {
                req.send(&(i as u32).to_le_bytes(), TIMEOUT).expect("req");
                let echo = rsp.recv(TIMEOUT).expect("rsp");
                assert_eq!(echo, (i as u32).wrapping_mul(3).to_le_bytes());
            }
        });
        s.spawn(|| {
            for _ in 0..n {
                let got = req.recv(TIMEOUT).expect("req");
                let v = u32::from_le_bytes(got.try_into().expect("4 bytes"));
                rsp.send(&v.wrapping_mul(3).to_le_bytes(), TIMEOUT)
                    .expect("rsp");
            }
        });
    });
}

/// The locked reference transport under the same load — keeps the
/// sanitizer honest about the baseline too.
#[test]
fn locked_transport_survives_constant_backpressure() {
    let n = iters();
    let q = LockedTransport::new(16, 8);
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..n {
                q.send(&payload(i, 8), TIMEOUT).expect("send");
            }
        });
        s.spawn(|| {
            for i in 0..n {
                let got = q.recv(TIMEOUT).expect("recv");
                assert_eq!(got, payload(i, 8), "message {i} corrupted");
            }
        });
    });
}

/// Full executor stack: a 4-stage pipeline on tight channels, run under
/// every transport, with the stage stores checked for the exact fold.
#[test]
fn runner_pipeline_stress_under_all_transports() {
    let n = (iters() / 10).max(100);
    for kind in [
        TransportKind::Locked,
        TransportKind::Ring,
        TransportKind::Pointer,
    ] {
        let channels: Vec<ChannelSpec> = (0..3)
            .map(|_| ChannelSpec {
                capacity_bytes: 8,
                max_message_bytes: 4,
                ..ChannelSpec::default()
            })
            .collect();
        let mut programs = vec![Program::new(
            vec![Op::Send {
                channel: ChannelId(0),
                payload: Box::new(|l| (l.iter as u32).to_le_bytes().to_vec()),
            }],
            n,
        )];
        for pe in 1..4 {
            let input = ChannelId(pe - 1);
            let mut ops = vec![
                Op::Recv { channel: input },
                Op::Compute {
                    label: format!("stage{pe}"),
                    work: Box::new(move |l| {
                        let v = l.take_from(input).expect("message");
                        let x = u32::from_le_bytes(v.try_into().expect("4 bytes")).wrapping_add(1);
                        l.store.insert("fwd".into(), x.to_le_bytes().to_vec());
                        l.store.insert("last".into(), x.to_le_bytes().to_vec());
                        0
                    }),
                },
            ];
            if pe != 3 {
                ops.push(Op::Send {
                    channel: ChannelId(pe),
                    payload: Box::new(|l| l.store.get("fwd").cloned().expect("staged")),
                });
            }
            programs.push(Program::new(ops, n));
        }
        let results = ThreadedRunner::new()
            .transport(kind)
            .timeout(TIMEOUT)
            .run(&channels, programs)
            .expect("pipeline run");
        let last = u32::from_le_bytes(
            results[3].store["last"]
                .clone()
                .try_into()
                .expect("4 bytes"),
        );
        // Final stage saw iteration n-1 incremented once per stage.
        assert_eq!(u64::from(last), (n - 1) + 3, "{kind:?}");
    }
}

//! Property-based tests of the discrete-event engine.

use proptest::prelude::*;

use spi_platform::{ChannelId, ChannelSpec, Machine, Op, Program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_sent_message_is_delivered_in_order(
        sizes in prop::collection::vec(1usize..64, 1..20),
        cap in 128usize..1024,
        consumer_cost in 0u64..50,
    ) {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec {
            capacity_bytes: cap,
            ..ChannelSpec::default()
        });
        let sizes_p = sizes.clone();
        let n = sizes.len() as u64;
        m.add_pe(Program::new(
            vec![Op::Send {
                channel: ch,
                payload: Box::new(move |l| {
                    let sz = sizes_p[l.iter as usize];
                    vec![(l.iter % 251) as u8; sz]
                }),
            }],
            n,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: ch },
                Op::Compute {
                    label: "check".into(),
                    work: Box::new(move |l| {
                        let msg = l.take_from(ChannelId(0)).expect("delivered");
                        let mut seq = l.store.remove("seq").unwrap_or_default();
                        seq.push(msg[0]);
                        l.store.insert("seq".into(), seq);
                        consumer_cost
                    }),
                },
            ],
            n,
        ));
        let report = m.run().expect("live pipeline");
        prop_assert_eq!(report.channels[0].messages, n);
        let expected: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        prop_assert_eq!(&report.locals[1].store["seq"], &expected);
        // Byte accounting matches the payloads.
        prop_assert_eq!(
            report.channels[0].bytes,
            sizes.iter().map(|&s| s as u64).sum::<u64>()
        );
        prop_assert!(report.channels[0].peak_bytes as usize <= cap);
    }

    #[test]
    fn makespan_dominates_total_busy_per_pe(
        costs in prop::collection::vec(1u64..200, 1..6),
        iters in 1u64..20,
    ) {
        let mut m = Machine::new();
        for &c in &costs {
            m.add_pe(Program::new(
                vec![Op::Compute { label: "w".into(), work: Box::new(move |_| c) }],
                iters,
            ));
        }
        let report = m.run().expect("independent PEs");
        for (i, &c) in costs.iter().enumerate() {
            prop_assert_eq!(report.pe[i].busy_cycles, c * iters);
            prop_assert!(report.pe[i].finish_cycle >= c * iters);
        }
        prop_assert_eq!(
            report.makespan_cycles,
            costs.iter().map(|&c| c * iters).max().expect("nonempty")
        );
    }

    #[test]
    fn budget_is_respected(budget in 1u64..500) {
        let mut m = Machine::new();
        m.add_pe(Program::new(
            vec![Op::Compute { label: "w".into(), work: Box::new(|_| 100) }],
            1000,
        ));
        m.set_budget_cycles(budget);
        prop_assert!(m.run().is_err());
    }
}

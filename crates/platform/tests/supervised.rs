//! Supervised-runner recovery semantics, driven by a scripted
//! fault-injecting [`Transport`] decorator (the same seam `spi-fault`
//! uses, scripted here instead of seeded so each test pins one
//! recovery path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spi_platform::{
    ChannelId, ChannelSpec, DegradePolicy, InjectedFault, Op, PeLocal, PlatformError, Program,
    SupervisionPolicy, ThreadedRunner, Transport, TransportError, TransportKind,
};

/// What the scripted decorator does to send attempts.
#[derive(Clone, Copy)]
enum FaultMode {
    /// Drop (fail without delivering) every attempt carrying the given
    /// frame sequence number — exhausts the sender's budget for
    /// exactly one token.
    DropSeq(u32),
    /// Drop the first attempt of the given sequence number only; the
    /// retransmission goes through.
    DropSeqOnce(u32),
    /// Deliver a corrupted copy of the first attempt of the given
    /// sequence number and report the injection; retransmission clean.
    CorruptSeqOnce(u32),
    /// Drop every attempt on the channel.
    DropAll,
}

struct FaultingTransport {
    inner: Box<dyn Transport>,
    mode: FaultMode,
    injected: AtomicU64,
}

fn frame_seq(data: &[u8]) -> u32 {
    u32::from_le_bytes(data[0..4].try_into().expect("frame header"))
}

impl Transport for FaultingTransport {
    fn capacity_bytes(&self) -> usize {
        self.inner.capacity_bytes()
    }
    fn max_message_bytes(&self) -> usize {
        self.inner.max_message_bytes()
    }
    fn len_bytes(&self) -> usize {
        self.inner.len_bytes()
    }
    fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }
    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        self.inner.try_send(data)
    }
    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        self.inner.try_recv()
    }
    fn send(&self, data: &[u8], timeout: Duration) -> Result<(), TransportError> {
        let seq = frame_seq(data);
        match self.mode {
            FaultMode::DropSeq(target) if seq == target => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(TransportError::Injected {
                    fault: InjectedFault::Dropped,
                })
            }
            FaultMode::DropSeqOnce(target) | FaultMode::CorruptSeqOnce(target)
                if seq == target && self.injected.load(Ordering::Relaxed) == 0 =>
            {
                self.injected.fetch_add(1, Ordering::Relaxed);
                if matches!(self.mode, FaultMode::CorruptSeqOnce(_)) {
                    let mut bad = data.to_vec();
                    *bad.last_mut().expect("non-empty frame") ^= 0x5A;
                    // Best effort: if the channel is full the corrupt
                    // copy vanishes, which is also a valid fault.
                    let _ = self.inner.try_send(&bad);
                }
                Err(TransportError::Injected {
                    fault: if matches!(self.mode, FaultMode::CorruptSeqOnce(_)) {
                        InjectedFault::Corrupted
                    } else {
                        InjectedFault::Dropped
                    },
                })
            }
            FaultMode::DropAll => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(TransportError::Injected {
                    fault: InjectedFault::Dropped,
                })
            }
            _ => self.inner.send(data, timeout),
        }
    }
    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        self.inner.send_with(len, fill, timeout)
    }
    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        self.inner.recv_with(consume, timeout)
    }
}

/// Wraps channel 0 in a [`FaultingTransport`]; other channels pass
/// through untouched.
fn faulty_ch0(mode: FaultMode) -> Arc<spi_platform::TransportDecorator> {
    Arc::new(
        move |ch: ChannelId, inner: Box<dyn Transport>| -> Box<dyn Transport> {
            if ch.0 == 0 {
                Box::new(FaultingTransport {
                    inner,
                    mode,
                    injected: AtomicU64::new(0),
                })
            } else {
                inner
            }
        },
    )
}

const ITERS: u64 = 6;

/// Producer sending `[iter, iter, iter, iter]`, consumer folding the
/// first byte of each token into `store["acc"]`.
fn pipeline() -> (Vec<ChannelSpec>, Vec<Program>) {
    let channels = vec![ChannelSpec {
        capacity_bytes: 16,
        max_message_bytes: 4,
        ..ChannelSpec::default()
    }];
    let producer = Program::new(
        vec![Op::Send {
            channel: ChannelId(0),
            payload: Box::new(|l: &mut PeLocal| vec![l.iter as u8; 4]),
        }],
        ITERS,
    );
    let consumer = Program::new(
        vec![
            Op::Recv {
                channel: ChannelId(0),
            },
            Op::Compute {
                label: "fold".into(),
                work: Box::new(|l: &mut PeLocal| {
                    let v = l.take_from(ChannelId(0)).expect("token");
                    let mut acc = l.store.remove("acc").unwrap_or_default();
                    acc.push(if v.is_empty() { 0xEE } else { v[0] });
                    l.store.insert("acc".into(), acc);
                    0
                }),
            },
        ],
        ITERS,
    );
    (channels, vec![producer, consumer])
}

fn kinds() -> [TransportKind; 2] {
    [TransportKind::Locked, TransportKind::Ring]
}

fn fast_policy() -> SupervisionPolicy {
    SupervisionPolicy::retry(3).with_deadline(Duration::from_millis(100))
}

#[test]
fn supervised_fault_free_matches_unsupervised() {
    for kind in kinds() {
        let (channels, programs) = pipeline();
        let plain = ThreadedRunner::new()
            .transport(kind)
            .timeout(Duration::from_secs(5))
            .run(&channels, programs)
            .unwrap();
        let (channels, programs) = pipeline();
        let supervised = ThreadedRunner::new()
            .transport(kind)
            .supervise(fast_policy())
            .run(&channels, programs)
            .unwrap();
        assert_eq!(plain[1].store, supervised[1].store, "{kind:?}");
        assert_eq!(supervised[1].leftover_inbox, 0);
    }
}

#[test]
fn dropped_frame_is_retransmitted_byte_identically() {
    for kind in kinds() {
        let (channels, programs) = pipeline();
        let results = ThreadedRunner::new()
            .transport(kind)
            .supervise(fast_policy())
            .decorate_transports(faulty_ch0(FaultMode::DropSeqOnce(2)))
            .run(&channels, programs)
            .unwrap();
        assert_eq!(results[1].store["acc"], vec![0, 1, 2, 3, 4, 5], "{kind:?}");
    }
}

#[test]
fn corrupt_frame_is_rejected_and_recovered() {
    for kind in kinds() {
        let (channels, programs) = pipeline();
        let results = ThreadedRunner::new()
            .transport(kind)
            .supervise(fast_policy())
            .decorate_transports(faulty_ch0(FaultMode::CorruptSeqOnce(1)))
            .run(&channels, programs)
            .unwrap();
        // The corrupted copy is CRC-rejected by the receiver; the
        // retransmission restores the exact byte stream.
        assert_eq!(results[1].store["acc"], vec![0, 1, 2, 3, 4, 5], "{kind:?}");
    }
}

#[test]
fn fail_policy_names_the_faulted_edge() {
    for kind in kinds() {
        let (channels, programs) = pipeline();
        let err = ThreadedRunner::new()
            .transport(kind)
            .supervise(fast_policy())
            .decorate_transports(faulty_ch0(FaultMode::DropAll))
            .run(&channels, programs)
            .unwrap_err();
        match err {
            PlatformError::RetryBudgetExhausted {
                channel, attempts, ..
            } => {
                assert_eq!(channel, ChannelId(0), "{kind:?}");
                assert_eq!(attempts, 4, "first try + 3 retries ({kind:?})");
            }
            // The receiver may hit its own budget first and also names
            // the edge; under Fail either is a correct outcome.
            other => panic!("expected RetryBudgetExhausted under {kind:?}, got {other}"),
        }
    }
}

#[test]
fn substitute_policy_fills_lost_token_with_zeros() {
    for kind in kinds() {
        let (channels, programs) = pipeline();
        let results = ThreadedRunner::new()
            .transport(kind)
            .supervise(
                fast_policy()
                    .with_degrade(DegradePolicy::Substitute)
                    .with_deadline(Duration::from_millis(50)),
            )
            .decorate_transports(faulty_ch0(FaultMode::DropSeq(2)))
            .run(&channels, programs)
            .unwrap();
        // Token 2 is unrecoverable: the sender skips it after its
        // budget, the receiver sees the sequence gap and substitutes a
        // zero token shaped like the last delivered one.
        assert_eq!(results[1].store["acc"], vec![0, 1, 0, 3, 4, 5], "{kind:?}");
        assert_eq!(results[1].leftover_inbox, 0);
    }
}

#[test]
fn skip_policy_drops_lost_token_and_continues() {
    for kind in kinds() {
        let (channels, programs) = pipeline();
        let results = ThreadedRunner::new()
            .transport(kind)
            .supervise(
                fast_policy()
                    .with_degrade(DegradePolicy::Skip)
                    .with_deadline(Duration::from_millis(50)),
            )
            .decorate_transports(faulty_ch0(FaultMode::DropSeq(2)))
            .run(&channels, programs)
            .unwrap();
        // The receive op where token 2 went missing delivers the next
        // arrived token instead; the final receive finds the stream
        // dry, degrades to an empty token (folded as 0xEE).
        assert_eq!(
            results[1].store["acc"],
            vec![0, 1, 3, 4, 5, 0xEE],
            "{kind:?}"
        );
    }
}

#[test]
fn panicking_compute_restarts_from_checkpoint_byte_identically() {
    for kind in kinds() {
        let (channels, mut programs) = pipeline();
        // Consumer panics once, mid-iteration 3, after the recv landed.
        let mut panicked = false;
        programs[1].ops.push(Op::Compute {
            label: "maybe-panic".into(),
            work: Box::new(move |l: &mut PeLocal| {
                if l.iter == 3 && !panicked {
                    panicked = true;
                    panic!("transient fault");
                }
                0
            }),
        });
        let results = ThreadedRunner::new()
            .transport(kind)
            .supervise(fast_policy())
            .run(&channels, programs)
            .unwrap();
        // The iteration rolled back to its checkpoint and replayed the
        // received token from the local log — no token consumed twice,
        // no byte diverges.
        assert_eq!(results[1].store["acc"], vec![0, 1, 2, 3, 4, 5], "{kind:?}");
    }
}

#[test]
fn panicking_producer_does_not_retransmit_completed_sends() {
    for kind in kinds() {
        let (channels, mut programs) = pipeline();
        // Producer panics once after its iteration-3 send completed;
        // the replay must *not* re-send (a duplicate would shift every
        // later token).
        let mut panicked = false;
        programs[0].ops.push(Op::Compute {
            label: "maybe-panic".into(),
            work: Box::new(move |l: &mut PeLocal| {
                if l.iter == 3 && !panicked {
                    panicked = true;
                    panic!("transient fault after send");
                }
                0
            }),
        });
        let results = ThreadedRunner::new()
            .transport(kind)
            .supervise(fast_policy())
            .run(&channels, programs)
            .unwrap();
        assert_eq!(results[1].store["acc"], vec![0, 1, 2, 3, 4, 5], "{kind:?}");
        assert_eq!(results[1].leftover_inbox, 0);
    }
}

#[test]
fn restart_budget_exhaustion_is_fatal_and_descriptive() {
    let (channels, mut programs) = pipeline();
    programs[1].ops.push(Op::Compute {
        label: "always-panic".into(),
        work: Box::new(|l: &mut PeLocal| {
            if l.iter == 2 {
                panic!("permanent fault");
            }
            0
        }),
    });
    let err = ThreadedRunner::new()
        .supervise(fast_policy().with_restarts(2))
        .run(&channels, programs)
        .unwrap_err();
    match err {
        PlatformError::RestartBudgetExhausted { restarts, iter, .. } => {
            assert_eq!(restarts, 2);
            assert_eq!(iter, 2);
        }
        other => panic!("expected RestartBudgetExhausted, got {other}"),
    }
}

#[test]
fn unsupervised_run_surfaces_injected_fault_as_channel_fault() {
    // Without supervision nothing retries: the injection is a terminal,
    // named error — not a hang, not silent corruption.
    let (channels, programs) = pipeline();
    let err = ThreadedRunner::new()
        .timeout(Duration::from_secs(2))
        .decorate_transports(faulty_ch0(FaultMode::DropAll))
        .run(&channels, programs)
        .unwrap_err();
    match err {
        PlatformError::ChannelFault { channel, detail } => {
            assert_eq!(channel, ChannelId(0));
            assert!(detail.contains("dropped"), "{detail}");
        }
        other => panic!("expected ChannelFault, got {other}"),
    }
}

fn assert_stalled_timeout(kind: TransportKind) {
    let spec = ChannelSpec {
        capacity_bytes: 4,
        max_message_bytes: 4,
        ..ChannelSpec::default()
    };
    let t = kind.instantiate(&spec);
    t.send(&[1, 2, 3, 4], Duration::from_millis(10)).unwrap();
    let err = t
        .send(&[5, 6, 7, 8], Duration::from_millis(50))
        .unwrap_err();
    match err {
        TransportError::Timeout { after, idle } => {
            assert_eq!(after, Duration::from_millis(50), "{kind:?}");
            // Nobody drained the channel, so the peer was idle for
            // (at least) the whole wait.
            assert!(idle >= Duration::from_millis(50), "{kind:?}: idle {idle:?}");
        }
        other => panic!("expected Timeout under {kind:?}, got {other}"),
    }
}

#[test]
fn stalled_channel_timeout_reports_peer_idle_time() {
    // A deadline miss distinguishes "peer alive but slow" from "peer
    // dead": the error carries how long the peer showed no progress.
    //
    // With the instrumentation seam compiled in, the deadline waits on
    // the simulator's virtual clock: the 50ms assertion is exact and
    // costs no wall time. The locked transport is the uninstrumented
    // raw-std baseline by design, so it (and the no-feature build)
    // keeps the wall-clock variant.
    #[cfg(feature = "verify-shim")]
    {
        let r = spi_platform::simrt::run(&spi_platform::simrt::SimOptions::seeded(17), || {
            assert_stalled_timeout(TransportKind::Ring)
        });
        assert!(r.failure.is_none(), "sim run failed: {:?}", r.failure);
        assert!(
            r.vtime >= Duration::from_millis(50),
            "deadline must wait on the virtual clock, vtime {:?}",
            r.vtime
        );
        assert_stalled_timeout(TransportKind::Locked);
    }
    #[cfg(not(feature = "verify-shim"))]
    for kind in kinds() {
        assert_stalled_timeout(kind);
    }
}

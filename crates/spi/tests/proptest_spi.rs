//! Property-based tests of the SPI lowering: arbitrary payload streams
//! through arbitrary small topologies arrive intact and in order.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use spi::{Firing, SpiSystemBuilder};
use spi_dataflow::SdfGraph;
use spi_sched::ProcId;

/// q of the producer on a p→c edge (minimal balance solution).
fn tokens_qa(p: u32, c: u32) -> u64 {
    u64::from(c / gcd_u32(p, c))
}

/// q of the consumer on a p→c edge.
fn tokens_qb(p: u32, c: u32) -> u64 {
    u64::from(p / gcd_u32(p, c))
}

fn gcd_u32(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn static_pipeline_preserves_payload_contents(
        token_bytes in 1u32..16,
        iterations in 1u64..30,
        procs in 1usize..3,
    ) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 5);
        let b = g.add_actor("b", 5);
        let e = g.add_edge(a, b, 1, 1, 0, token_bytes).expect("edge");
        let mut builder = SpiSystemBuilder::new(g);
        builder.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(
                e,
                (0..token_bytes).map(|i| (ctx.iter as u8).wrapping_add(i as u8)).collect(),
            );
            5
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        builder.actor(b, move |ctx: &mut Firing| {
            sink.lock().expect("seen").push(ctx.take_input(e));
            5
        });
        builder.iterations(iterations);
        let n_procs = procs + 1;
        let sys = builder
            .build(n_procs, |x| ProcId(x.0 % n_procs))
            .expect("buildable");
        sys.run().expect("clean run");
        let seen = seen.lock().expect("seen");
        prop_assert_eq!(seen.len() as u64, iterations);
        for (iter, payload) in seen.iter().enumerate() {
            let expect: Vec<u8> = (0..token_bytes)
                .map(|i| (iter as u8).wrapping_add(i as u8))
                .collect();
            prop_assert_eq!(payload, &expect);
        }
    }

    #[test]
    fn dynamic_edge_sizes_roundtrip(
        sizes in prop::collection::vec(0usize..40, 1..25),
    ) {
        let bound = 40u32;
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 5);
        let b = g.add_actor("b", 5);
        let e = g.add_dynamic_edge(a, b, bound, bound, 0, 1).expect("edge");
        let sizes_tx = sizes.clone();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got_rx = Arc::clone(&got);
        let mut builder = SpiSystemBuilder::new(g);
        builder.actor(a, move |ctx: &mut Firing| {
            let n = sizes_tx[ctx.iter as usize];
            ctx.set_output(e, vec![0xCD; n]);
            5
        });
        builder.actor(b, move |ctx: &mut Firing| {
            got_rx.lock().expect("got").push(ctx.input(e).len());
            5
        });
        builder.iterations(sizes.len() as u64);
        let sys = builder.build(2, |x| ProcId(x.0)).expect("buildable");
        sys.run().expect("clean run");
        prop_assert_eq!(&*got.lock().expect("got"), &sizes);
    }

    #[test]
    fn multirate_delay_cross_edges_deliver_tokens_in_order(
        p in 1u32..5,
        c in 1u32..5,
        delay in 0u64..7,
        iterations in 2u64..8,
    ) {
        // The hardest lowering case: a multirate edge with initial
        // tokens split across processors. The producer numbers every
        // raw token sequentially; the consumer must observe the exact
        // global sequence 0, 1, 2, … with the first `delay` tokens
        // being pipeline-fill/prime zeros (encoded as 0xFF markers via
        // initial-token override).
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 3);
        let b = g.add_actor("b", 3);
        let e = g.add_edge(a, b, p, c, delay, 1).expect("edge");
        let mut builder = SpiSystemBuilder::new(g);
        // Mark initial tokens so the consumer can recognize them.
        let fills = delay / u64::from(p);
        let prime = delay % u64::from(p);
        let mut initial = Vec::new();
        for _ in 0..fills {
            initial.push(vec![0xFFu8; p as usize]);
        }
        if prime > 0 {
            // The queue-primed remainder follows the fill messages.
            initial.push(vec![0xFFu8; prime as usize]);
        }
        builder.initial_tokens(e, initial);
        builder.actor(a, move |ctx: &mut Firing| {
            // Global token index = (iter*q_a + k)*p + offset.
            let fired_before = ctx.iter * tokens_qa(p, c) + ctx.k;
            let base = fired_before * u64::from(p);
            ctx.set_output(
                e,
                (0..u64::from(p)).map(|t| ((base + t) % 251) as u8).collect(),
            );
            3
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        builder.actor(b, move |ctx: &mut Firing| {
            sink.lock().expect("seen").extend(ctx.take_input(e));
            3
        });
        builder.iterations(iterations);
        let sys = builder.build(2, |x| ProcId(x.0)).expect("buildable");
        sys.run().expect("clean run");

        let seen = seen.lock().expect("seen");
        let q_b = tokens_qb(p, c);
        prop_assert_eq!(
            seen.len() as u64,
            iterations * q_b * u64::from(c),
            "consumer takes q_b·c tokens per iteration"
        );
        // First `delay` tokens are the marked initial tokens; the rest
        // follow the producer's global numbering.
        for (i, &byte) in seen.iter().enumerate() {
            if (i as u64) < delay {
                prop_assert_eq!(byte, 0xFF, "token {} must be an initial token", i);
            } else {
                let produced_idx = i as u64 - delay;
                prop_assert_eq!(
                    byte,
                    (produced_idx % 251) as u8,
                    "token {} out of order",
                    i
                );
            }
        }
    }

    #[test]
    fn all_builder_options_are_functionally_equivalent(
        force_ubs in any::<bool>(),
        resync in any::<bool>(),
        delimiter in any::<bool>(),
        fully_static in any::<bool>(),
        bus in 0u8..3,
    ) {
        // A fixed mixed static/dynamic pipeline must produce identical
        // functional output no matter which protocol/scheduling/
        // interconnect options are chosen — the options trade time and
        // resources, never results.
        use spi_dataflow::LengthSignal;
        use spi::SchedulingMode;

        let run = || -> Vec<u8> {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 12);
            let b = g.add_actor("b", 12);
            let c = g.add_actor("c", 12);
            let e1 = g.add_edge(a, b, 2, 2, 0, 2).expect("edge");
            let e2 = g.add_dynamic_edge(b, c, 8, 8, 0, 1).expect("edge");
            let mut builder = SpiSystemBuilder::new(g);
            builder.actor(a, move |ctx: &mut Firing| {
                ctx.set_output(e1, vec![ctx.iter as u8, (ctx.iter as u8).wrapping_mul(3), 0, 1]);
                12
            });
            builder.actor(b, move |ctx: &mut Firing| {
                let x = ctx.take_input(e1);
                let n = 1 + (ctx.iter % 7) as usize;
                let mut out = x;
                out.truncate(n.min(4));
                ctx.set_output(e2, out);
                12
            });
            let sink = Arc::new(Mutex::new(Vec::new()));
            let sink2 = Arc::clone(&sink);
            builder.actor(c, move |ctx: &mut Firing| {
                sink2.lock().expect("sink").extend(ctx.take_input(e2));
                12
            });
            builder.iterations(12);
            builder.force_ubs(force_ubs);
            builder.resynchronization(resync);
            builder.length_signal(if delimiter {
                LengthSignal::Delimiter
            } else {
                LengthSignal::Header
            });
            if fully_static {
                builder.scheduling_mode(SchedulingMode::FullyStatic { slack_percent: 10 });
            }
            match bus {
                1 => {
                    builder.shared_bus(spi_platform::BusSpec { arbitration_cycles: 3 });
                }
                2 => {
                    builder.ordered_transactions(1);
                }
                _ => {}
            }
            let sys = builder.build(3, |x| ProcId(x.0)).expect("buildable");
            sys.run().expect("clean run");
            let out = sink.lock().expect("sink").clone();
            out
        };
        let reference: Vec<u8> = {
            // Compute the expected stream directly.
            let mut v = Vec::new();
            for iter in 0u64..12 {
                let frame = [iter as u8, (iter as u8).wrapping_mul(3), 0, 1];
                let n = (1 + (iter % 7) as usize).min(4);
                v.extend(&frame[..n]);
            }
            v
        };
        prop_assert_eq!(run(), reference);
    }

    #[test]
    fn multirate_conservation(
        p in 1u32..5,
        c in 1u32..5,
        iterations in 1u64..8,
    ) {
        // Total bytes produced per iteration equal total consumed; the
        // sink counts them.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 2);
        let b = g.add_actor("b", 2);
        let e = g.add_edge(a, b, p, c, 0, 1).expect("edge");
        let consumed = Arc::new(Mutex::new(0usize));
        let consumed_rx = Arc::clone(&consumed);
        let mut builder = SpiSystemBuilder::new(g);
        builder.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(e, vec![1; p as usize]);
            2
        });
        builder.actor(b, move |ctx: &mut Firing| {
            *consumed_rx.lock().expect("count") += ctx.input(e).len();
            2
        });
        builder.iterations(iterations);
        let sys = builder.build(2, |x| ProcId(x.0)).expect("buildable");
        let q_lcm = u64::from(p) * u64::from(c)
            / u64::from(spi_dataflow::gcd(u64::from(p), u64::from(c)) as u32);
        sys.run().expect("clean run");
        prop_assert_eq!(
            *consumed.lock().expect("count") as u64,
            iterations * q_lcm
        );
    }
}

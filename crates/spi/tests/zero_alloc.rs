//! Steady-state allocation profile of the pointer-exchange path
//! (§5.2): once the pool and rings exist, moving a message end-to-end —
//! frame in place, exchange the slot descriptor, decode borrowed —
//! must touch the global allocator exactly zero times per message.
//!
//! This file holds a single `#[test]` on purpose: the counting
//! allocator is per-binary, and a sibling test allocating concurrently
//! would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use spi::{decode_static_borrowed, encode_static_into, static_frame_bytes, STATIC_HEADER_BYTES};
use spi_dataflow::EdgeId;
use spi_platform::{PointerTransport, RingTransport, Token, Transport};

/// Counts allocation calls; frees are uncounted (a steady state that
/// allocates nothing frees nothing).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The platform crate denies unsafe except in its two vetted modules;
// this test binary needs it only to delegate to the system allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PAYLOAD: usize = 1024;
const EDGE: EdgeId = EdgeId(0);
const T: Duration = Duration::from_secs(5);

/// One message over the `send_in_place` path: frame straight into the
/// pool slot, receive the lease, decode a borrowed view, drop (= slot
/// release).
fn roundtrip_in_place(t: &PointerTransport, payload: &[u8]) {
    t.send_in_place(
        static_frame_bytes(PAYLOAD),
        &mut |buf| encode_static_into(EDGE, payload, buf).expect("frame fits slot"),
        T,
    )
    .expect("send");
    let token = t.recv_token(T).expect("recv");
    assert!(token.is_pooled());
    let view = decode_static_borrowed(&token, EDGE, PAYLOAD).expect("decode");
    assert_eq!(view[0], payload[0]);
    assert_eq!(view.len(), PAYLOAD);
}

/// One message over the explicit-lease path: acquire a slot, frame into
/// it, hand ownership to the ring.
fn roundtrip_lease(t: &PointerTransport, payload: &[u8]) {
    let mut lease = t.buffer_pool().try_acquire().expect("pool has free slots");
    let n = encode_static_into(EDGE, payload, &mut lease).expect("frame fits slot");
    lease.truncate(n);
    t.send_token(Token::from(lease), T).expect("send");
    let token = t.recv_token(T).expect("recv");
    let view = decode_static_borrowed(&token, EDGE, PAYLOAD).expect("decode");
    assert_eq!(view.len(), PAYLOAD);
}

#[test]
fn pointer_path_steady_state_allocates_nothing() {
    let frame = static_frame_bytes(PAYLOAD);
    let t = PointerTransport::new(8 * frame, frame);
    let payload = vec![0xA5u8; PAYLOAD];

    // Warm up: first touches may fault in lazy state (the pool itself
    // is eagerly allocated, but the test harness is not).
    for _ in 0..32 {
        roundtrip_in_place(&t, &payload);
        roundtrip_lease(&t, &payload);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..4096 {
        roundtrip_in_place(&t, &payload);
        roundtrip_lease(&t, &payload);
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "pointer exchange must be allocation-free in steady state \
         (observed {delta} allocations over 8192 messages)"
    );

    // Canary: the counter is live. The copying ring allocates a fresh
    // heap buffer per received message, so the same traffic over a
    // RingTransport must register.
    let ring = RingTransport::new(8 * frame, frame);
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..32 {
        ring.send(&payload[..STATIC_HEADER_BYTES], T).expect("send");
        let msg = ring.recv(T).expect("recv");
        assert_eq!(msg.len(), STATIC_HEADER_BYTES);
    }
    assert!(
        ALLOCS.load(Ordering::SeqCst) > before,
        "counting allocator failed to observe the copying path"
    );
}

//! The ring transport must be byte-accurate to the paper's static
//! bounds: for every BBS data channel the builder emits, the allocated
//! ring is exactly the eq. (2) sizing derived from `sched::ipc_graph` —
//! `slots = (bound ∨ (d_max+1)) + 1 slack) × q_src` messages of
//! `header + payload_max` bytes each, nothing rounded up to a power of
//! two, nothing approximated by message counts.

use std::collections::HashMap;

use spi::{SpiSystemBuilder, STATIC_HEADER_BYTES};
use spi_dataflow::{EdgeId, PrecedenceGraph, SdfGraph, VtsConversion};
use spi_platform::{RingTransport, Transport};
use spi_sched::{Assignment, IpcEdgeKind, IpcGraph, ProcId, SelfTimedSchedule};

/// Two actors on two processors exchanging tokens in both directions;
/// the delayed feedback edge gives every edge a finite eq. (2) bound,
/// so both channels use BBS.
fn bounded_graph() -> (SdfGraph, EdgeId, EdgeId) {
    let mut g = SdfGraph::new();
    let a = g.add_actor("src", 10);
    let b = g.add_actor("dst", 20);
    let fwd = g.add_edge(a, b, 1, 1, 0, 4).unwrap();
    let fb = g.add_edge(b, a, 1, 1, 2, 4).unwrap();
    (g, fwd, fb)
}

#[test]
fn ring_capacity_equals_eq2_bytes_from_ipc_graph() {
    let (g, fwd, fb) = bounded_graph();

    // Independently derive the schedule exactly as the builder does.
    let vts = VtsConversion::convert(&g).unwrap();
    let cg = vts.graph().clone();
    let pg = PrecedenceGraph::expand(&cg).unwrap();
    let assignment = Assignment::by_actor(&pg, 2, |a| ProcId(a.0)).unwrap();
    let st = SelfTimedSchedule::from_assignment(&pg, assignment).unwrap();
    let ipc = IpcGraph::build(&cg, &pg, &st).unwrap();
    let q = pg.repetitions().clone();
    let bounds = ipc.buffer_bounds_by_edge();

    // Per-edge max delay over IPC instances — the builder's liveness
    // guard raises the BBS capacity to at least d_max + 1.
    let mut d_max: HashMap<EdgeId, u64> = HashMap::new();
    for e in ipc.ipc_edges() {
        if let IpcEdgeKind::Ipc { via } = e.kind {
            let m = d_max.entry(via).or_insert(0);
            *m = (*m).max(e.delay);
        }
    }

    // Build the runnable system with the same assignment.
    let (g, _, _) = bounded_graph();
    let mut b = SpiSystemBuilder::new(g);
    b.actor(cg.edge(fwd).src, {
        move |ctx: &mut spi::Firing| {
            ctx.set_output(fwd, vec![1u8; 4]);
            5
        }
    });
    b.actor(cg.edge(fb).src, {
        move |ctx: &mut spi::Firing| {
            ctx.set_output(fb, vec![2u8; 4]);
            5
        }
    });
    b.iterations(3);
    let sys = b.build(2, |a| ProcId(a.0)).expect("buildable");

    let report = sys.buffer_report();
    let (specs, _programs) = sys.into_parts();

    // Channels are created in sorted edge order (data channel first per
    // edge; BBS keeps no ack channel), so channel i belongs to edge i.
    assert_eq!(report.len(), 2, "both edges cross processors");
    assert_eq!(specs.len(), 2, "BBS needs no ack channels");
    for row in &report {
        let bound = bounds[&row.edge].expect("feedback makes every edge bounded");
        assert_eq!(
            row.bound_tokens,
            Some(bound),
            "report agrees with ipc_graph"
        );
        let cap_tokens = bound.max(d_max[&row.edge] + 1);
        let q_src = q[cg.edge(row.edge).src];
        let expected_msgs = ((cap_tokens + 1) * q_src) as usize;
        let msg_max = STATIC_HEADER_BYTES + 4; // header + 1 token × 4 B
        assert_eq!(row.message_bytes_max, msg_max);

        let spec = &specs[row.edge.0];
        assert_eq!(
            spec.max_message_bytes, msg_max,
            "slot size is the packed token"
        );
        assert_eq!(
            spec.capacity_bytes,
            expected_msgs * msg_max,
            "edge {}: eq. (2) bytes are the literal allocation",
            row.edge
        );

        // The ring allocates exactly that: no rounding, no slop.
        let ring = RingTransport::new(spec.capacity_bytes, spec.max_message_bytes);
        assert_eq!(ring.capacity_bytes(), expected_msgs * msg_max);
        assert_eq!(ring.slots(), expected_msgs);
        assert_eq!(ring.max_message_bytes(), msg_max);
    }
}

//! The SPI system builder: from dataflow graph to running multiprocessor
//! implementation.
//!
//! This module realizes the paper's complete flow. Given an application
//! graph (possibly with dynamic-rate edges) and a processor assignment,
//! [`SpiSystemBuilder::build`]:
//!
//! 1. applies **VTS conversion** (§3) so dynamic edges become analyzable;
//! 2. expands the precedence graph and derives a **self-timed schedule**;
//! 3. builds the **IPC graph** (§4.1) and, per inter-processor edge,
//!    selects **SPI_BBS** when the eq. (2) buffer bound exists, else
//!    **SPI_UBS** with credit-based acknowledgements;
//! 4. derives the **synchronization graph** and runs
//!    **resynchronization** to drop redundant acknowledgement edges;
//! 5. lowers everything onto the simulated platform: one FIFO channel
//!    per inter-processor edge (sized by eq. (2) for BBS), `SPI_send` /
//!    `SPI_receive` actor pairs framing messages with the 2-byte
//!    (static) or 6-byte (dynamic) headers of §5.1, ack channels only
//!    where resynchronization could not prove them redundant;
//! 6. aggregates the **resource estimate** of the generated SPI library
//!    hardware (tables 1–2).

use std::collections::HashMap;
use std::sync::Arc;

use spi_dataflow::{ActorId, EdgeId, LengthSignal, PrecedenceGraph, SdfGraph, VtsConversion};
use spi_platform::{
    ChannelId, ChannelSpec, Machine, Op, PeLocal, Program, ResourceEstimate, SimReport, Tracer,
};
use spi_sched::{
    Assignment, IpcGraph, Partition, ProcId, Protocol, ResyncCertificate, ResyncReport,
    SelfTimedSchedule, SyncGraph, SyncKind,
};

use crate::actors::{Firing, SharedActor};
use crate::error::{Result, SpiError};
use crate::library::SpiLibraryReport;
use crate::message::{self, SpiPhase};

/// Size of a UBS acknowledgement message (the edge id).
pub const ACK_BYTES: usize = 2;

/// Which of the paper's §2 multiprocessor scheduling classes drives the
/// run-time release of firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Firings start as soon as their data is available (the paper's
    /// choice: robust to execution-time variation).
    SelfTimed,
    /// Firings start at precomputed clock targets derived from the
    /// synchronization graph's analytic times, inflated by
    /// `slack_percent` to budget for worst-case execution. Data arrival
    /// still guards correctness; the targets only ever delay starts.
    FullyStatic {
        /// Worst-case inflation over the actor estimates, in percent.
        slack_percent: u32,
    },
}

/// Builder for an SPI multiprocessor system.
///
/// # Examples
///
/// A two-actor pipeline split across two processors:
///
/// ```
/// use spi::{SpiSystemBuilder, Firing};
/// use spi_dataflow::SdfGraph;
/// use spi_sched::ProcId;
///
/// let mut g = SdfGraph::new();
/// let src = g.add_actor("src", 50);
/// let snk = g.add_actor("snk", 50);
/// let e = g.add_edge(src, snk, 1, 1, 0, 4)?;
///
/// let mut builder = SpiSystemBuilder::new(g);
/// builder.actor(src, move |ctx: &mut Firing| {
///     ctx.set_output(e, (ctx.iter as u32).to_le_bytes().to_vec());
///     50
/// });
/// builder.actor(snk, move |ctx: &mut Firing| {
///     assert_eq!(ctx.input(e).len(), 4);
///     50
/// });
/// builder.iterations(10);
/// let system = builder.build(2, |a| ProcId(a.0))?;
/// let report = system.run()?;
/// assert!(report.sim.makespan_cycles > 0);
/// # Ok::<(), spi::SpiError>(())
/// ```
pub struct SpiSystemBuilder {
    graph: SdfGraph,
    impls: HashMap<ActorId, SharedActor>,
    actor_resources: HashMap<ActorId, ResourceEstimate>,
    initial_payloads: HashMap<EdgeId, Vec<Vec<u8>>>,
    iterations: u64,
    clock_mhz: f64,
    channel_template: ChannelSpec,
    ack_window: u64,
    resync: bool,
    force_ubs: bool,
    signal: LengthSignal,
    trace: bool,
    bus: Option<spi_platform::BusSpec>,
    mode: SchedulingMode,
    proc_speeds: HashMap<ProcId, (u64, u64)>,
    ordered_transactions: Option<u64>,
    tracer: Option<Arc<dyn Tracer>>,
    partition: Option<Partition>,
}

impl SpiSystemBuilder {
    /// Starts building an SPI system for `graph`.
    pub fn new(graph: SdfGraph) -> Self {
        SpiSystemBuilder {
            graph,
            impls: HashMap::new(),
            actor_resources: HashMap::new(),
            initial_payloads: HashMap::new(),
            iterations: 1,
            clock_mhz: 100.0,
            channel_template: ChannelSpec::default(),
            // Deep enough that UBS acknowledgements pipeline across the
            // wire latency of large messages instead of degenerating into
            // a per-message rendezvous.
            ack_window: 16,
            resync: true,
            force_ubs: false,
            signal: LengthSignal::Header,
            trace: false,
            bus: None,
            mode: SchedulingMode::SelfTimed,
            proc_speeds: HashMap::new(),
            ordered_transactions: None,
            tracer: None,
            partition: None,
        }
    }

    /// Splits the processors across node **processes** for a distributed
    /// deployment (`spi-net`). Intra-partition edges keep their
    /// in-memory transports; edges crossing a partition boundary lower
    /// to socket channels whose sender-side credit window is sized from
    /// the same eq. (2)-derived [`ChannelSpec`]. The build re-runs the
    /// protocol lints over the cross-partition channels (SPI045 warns
    /// when a credit window under-runs the eq. (2) byte requirement),
    /// and [`SpiSystem::partition`] exposes the mapping to the node
    /// launcher.
    pub fn partition(&mut self, partition: Partition) -> &mut Self {
        self.partition = Some(partition);
        self
    }

    /// Enables the *ordered transactions* interconnect strategy
    /// (Sriram; the "other scheduling models" the paper's conclusion
    /// points to): a compile-time global bus-access order derived from
    /// the synchronization graph's analytic send times replaces
    /// run-time arbitration. `slot_overhead_cycles` is the per-slot
    /// cost of the order controller.
    pub fn ordered_transactions(&mut self, slot_overhead_cycles: u64) -> &mut Self {
        self.ordered_transactions = Some(slot_overhead_cycles);
        self
    }

    /// Scales processor `proc`'s compute times by `num/den` — model a
    /// software processor (slower, e.g. `(3, 1)`) next to custom
    /// hardware PEs, as in the paper's hardware/software co-design
    /// deployment of application 1.
    pub fn processor_speed(&mut self, proc: ProcId, num: u64, den: u64) -> &mut Self {
        self.proc_speeds.insert(proc, (num, den));
        self
    }

    /// Selects the scheduling class (default: self-timed, the paper's
    /// model).
    pub fn scheduling_mode(&mut self, mode: SchedulingMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// Records a platform event trace during the run (see
    /// [`spi_platform::SimReport::render_gantt`]).
    pub fn trace(&mut self, on: bool) -> &mut Self {
        self.trace = on;
        self
    }

    /// Attaches a runtime probe ([`spi_platform::Tracer`], e.g.
    /// `spi_trace::RingTracer`): every engine the built system runs on —
    /// the discrete-event simulator and the threaded runner — emits
    /// firing begin/end, send/receive (with payload digest and
    /// post-operation occupancy) and block/unblock events into it.
    /// Combine with [`SpiSystem::trace_meta`] to produce a
    /// `spi_trace::Trace` that the conformance checker can replay
    /// against the eq. (1)/(2) bounds.
    pub fn tracer(&mut self, tracer: Arc<dyn Tracer>) -> &mut Self {
        self.tracer = Some(tracer);
        self
    }

    /// Routes all inter-processor traffic through a shared bus instead
    /// of dedicated point-to-point FIFOs (interconnect ablation).
    pub fn shared_bus(&mut self, bus: spi_platform::BusSpec) -> &mut Self {
        self.bus = Some(bus);
        self
    }

    /// Registers the implementation of `actor`.
    pub fn actor(
        &mut self,
        actor: ActorId,
        implementation: impl crate::ActorFire + 'static,
    ) -> &mut Self {
        self.impls
            .insert(actor, crate::actors::share(implementation));
        self
    }

    /// Registers a pre-shared implementation (for reuse across builds).
    pub fn actor_shared(&mut self, actor: ActorId, shared: SharedActor) -> &mut Self {
        self.impls.insert(actor, shared);
        self
    }

    /// Declares the hardware cost of `actor` for resource reports.
    pub fn actor_resources(&mut self, actor: ActorId, estimate: ResourceEstimate) -> &mut Self {
        self.actor_resources.insert(actor, estimate);
        self
    }

    /// Overrides the payloads of `edge`'s initial (delay) tokens.
    ///
    /// For a cross-processor edge with delay `d` and production rate
    /// `p`, entries `0..d/p` fill the producer's pipeline-fill messages
    /// (each a whole production batch) and entry `d/p` supplies the
    /// `d mod p` remainder tokens primed directly into the consumer's
    /// queue (the remainder tokens sit at the FIFO head, so they are
    /// consumed before the fill messages). Local edges use entry 0 for
    /// the whole delay. Missing entries default to zeros.
    pub fn initial_tokens(&mut self, edge: EdgeId, payloads: Vec<Vec<u8>>) -> &mut Self {
        self.initial_payloads.insert(edge, payloads);
        self
    }

    /// Number of graph iterations to simulate.
    pub fn iterations(&mut self, n: u64) -> &mut Self {
        self.iterations = n;
        self
    }

    /// Platform clock in MHz (for µs conversion).
    pub fn clock_mhz(&mut self, mhz: f64) -> &mut Self {
        self.clock_mhz = mhz;
        self
    }

    /// Template for inter-processor FIFO channels (capacity is derived
    /// per edge; the other fields are taken from this template).
    pub fn channel_template(&mut self, spec: ChannelSpec) -> &mut Self {
        self.channel_template = spec;
        self
    }

    /// UBS credit window (outstanding unacknowledged messages).
    pub fn ack_window(&mut self, window: u64) -> &mut Self {
        self.ack_window = window.max(1);
        self
    }

    /// Enables/disables the resynchronization pass (default on). Used by
    /// the ablation benches.
    pub fn resynchronization(&mut self, on: bool) -> &mut Self {
        self.resync = on;
        self
    }

    /// Forces every edge onto SPI_UBS regardless of buffer bounds (the
    /// BBS-vs-UBS ablation).
    pub fn force_ubs(&mut self, on: bool) -> &mut Self {
        self.force_ubs = on;
        self
    }

    /// Length-signalling discipline for dynamic edges (header vs
    /// delimiter, paper §3's implementation discussion).
    pub fn length_signal(&mut self, signal: LengthSignal) -> &mut Self {
        self.signal = signal;
        self
    }

    /// Builds with an automatic actor→processor mapping: HLFET list
    /// scheduling runs at firing granularity, then each actor adopts the
    /// processor that received the plurality of its firings (ties to the
    /// lowest processor id).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpiSystemBuilder::build`].
    pub fn build_auto(self, processors: usize) -> Result<SpiSystem> {
        preflight(&self.graph, self.signal)?;
        let vts = VtsConversion::convert(&self.graph)?;
        let pg = PrecedenceGraph::expand(vts.graph())?;
        let firing_assign = Assignment::hlfet(vts.graph(), &pg, processors)?;
        // Majority vote per actor.
        let mut votes: HashMap<ActorId, HashMap<ProcId, usize>> = HashMap::new();
        for &f in pg.firings() {
            let p = firing_assign.processor(f)?;
            *votes.entry(f.actor).or_default().entry(p).or_insert(0) += 1;
        }
        let actor_map: HashMap<ActorId, ProcId> = votes
            .into_iter()
            .map(|(a, ballots)| {
                let best = ballots
                    .into_iter()
                    .max_by_key(|&(p, n)| (n, std::cmp::Reverse(p.0)))
                    .map(|(p, _)| p)
                    .unwrap_or(ProcId(0));
                (a, best)
            })
            .collect();
        self.build(processors, move |a| {
            actor_map.get(&a).copied().unwrap_or(ProcId(0))
        })
    }

    /// Runs the full SPI flow and produces a runnable system.
    ///
    /// # Errors
    ///
    /// [`SpiError::Analysis`] when the static pre-flight finds
    /// error-severity diagnostics (ill-formed graph, inconsistent rates,
    /// deadlock, unsound VTS bounds, uncovered IPC edges…) — the
    /// diagnostics explain each defect;
    /// any dataflow/scheduling error from the underlying analyses;
    /// [`SpiError::MissingActorImpl`] for unregistered actors;
    /// [`SpiError::ActorSplitAcrossProcessors`] if the assignment puts
    /// firings of one actor on different processors.
    pub fn build(
        self,
        processors: usize,
        assign: impl FnMut(ActorId) -> ProcId,
    ) -> Result<SpiSystem> {
        // Graph-level pre-flight: explain structural defects before the
        // raw scheduler errors would surface them.
        preflight(&self.graph, self.signal)?;
        let vts = VtsConversion::convert(&self.graph)?;
        let cg = vts.graph().clone();
        let pg = PrecedenceGraph::expand(&cg)?;
        let assignment = Assignment::by_actor(&pg, processors, assign)?;

        // Every actor must live on exactly one processor.
        let mut actor_proc: HashMap<ActorId, ProcId> = HashMap::new();
        for &f in pg.firings() {
            let p = assignment.processor(f)?;
            if *actor_proc.entry(f.actor).or_insert(p) != p {
                return Err(SpiError::ActorSplitAcrossProcessors(f.actor));
            }
        }
        for (a, _) in cg.actors() {
            if !self.impls.contains_key(&a) {
                return Err(SpiError::MissingActorImpl(a));
            }
        }

        let st = SelfTimedSchedule::from_assignment(&pg, assignment)?;
        let ipc = IpcGraph::build(&cg, &pg, &st)?;
        let q = pg.repetitions().clone();

        // ---- Per-edge protocol classification -------------------------
        // A channel's capacity must cover its longest-resident message,
        // so the eq. (2) bound is folded with MAX over the edge's
        // precedence instances; any unbounded instance forces UBS
        // (`buffer_bounds_by_edge` encodes exactly that fold).
        let edge_bounds = ipc.buffer_bounds_by_edge();
        let mut max_delay: HashMap<EdgeId, u64> = HashMap::new();
        let mut plans: HashMap<EdgeId, EdgePlan> = HashMap::new();
        for e in ipc.ipc_edges() {
            let via = match e.kind {
                spi_sched::IpcEdgeKind::Ipc { via } => via,
                _ => continue,
            };
            let md = max_delay.entry(via).or_insert(0);
            *md = (*md).max(e.delay);
            let plan = plans.entry(via).or_insert_with(|| {
                let edge = cg.edge(via);
                let phase = if vts.edge_info(via).is_some() {
                    SpiPhase::Dynamic
                } else {
                    SpiPhase::Static
                };
                let payload_max = match phase {
                    SpiPhase::Static => edge.produce.bound() as usize * edge.token_bytes as usize,
                    SpiPhase::Dynamic => {
                        vts.bytes_per_packed_token(via).expect("edge exists") as usize
                    }
                };
                EdgePlan {
                    edge: via,
                    phase,
                    payload_max,
                    src_proc: actor_proc[&edge.src],
                    dst_proc: actor_proc[&edge.dst],
                    bound_tokens: None,
                    bound_msgs: None,
                    protocol: Protocol::Ubs {
                        ack_window: self.ack_window,
                    },
                    ack_kept: false,
                    data_ch: ChannelId(0),
                    ack_ch: None,
                }
            });
            plan.bound_tokens = edge_bounds.get(&via).copied().flatten();
        }
        for plan in plans.values_mut() {
            // A UBS credit window must at least cover the consumer's
            // largest per-firing receive burst: the consumer only
            // acknowledges after its firing consumes, so a window smaller
            // than the burst deadlocks the self-timed execution.
            let edge = cg.edge(plan.edge);
            let (p_, c_) = (
                i64::from(edge.produce.bound()),
                i64::from(edge.consume.bound()),
            );
            let d_ = edge.delay as i64;
            let max_burst = (0..q[edge.dst] as i64)
                .map(|j| {
                    cumulative_messages(j, c_, d_, p_) - cumulative_messages(j - 1, c_, d_, p_)
                })
                .max()
                .unwrap_or(1)
                .max(1) as u64;
            // Liveness guard: the BBS feedback edge of the most-delayed
            // instance has delay `capacity − d_max`; keep it ≥ 1.
            let d_max = max_delay.get(&plan.edge).copied().unwrap_or(0);
            plan.protocol = match plan.bound_tokens {
                Some(b) if !self.force_ubs => Protocol::Bbs {
                    capacity: b.max(d_max + 1),
                },
                _ => {
                    // The credit window must cover (a) the consumer's
                    // largest per-firing burst and (b) one full iteration
                    // of producer sends — a smaller window can exhaust
                    // credits mid-iteration and deadlock against the
                    // program order of a coupled edge (found by the
                    // stress fuzzer, seed 738).
                    let q_src = q[cg.edge(plan.edge).src];
                    Protocol::Ubs {
                        ack_window: self.ack_window.max(max_burst).max(q_src),
                    }
                }
            };
        }

        // ---- Synchronization graph + resynchronization -----------------
        let plans_view = plans.clone();
        let q_view = q.clone();
        let cg_view = cg.clone();
        let mut sync = SyncGraph::from_ipc(&ipc, |e| {
            let via = match e.kind {
                spi_sched::IpcEdgeKind::Ipc { via } => via,
                _ => unreachable!("protocol_of is only called for IPC edges"),
            };
            match plans_view[&via].protocol {
                // The sync graph counts delays in iterations; a window of
                // `w` messages grants ⌊w / q_src⌋ iterations of slack.
                Protocol::Ubs { ack_window } => {
                    let q_src = q_view[cg_view.edge(via).src];
                    Protocol::Ubs {
                        ack_window: (ack_window / q_src).max(1),
                    }
                }
                bbs => bbs,
            }
        })?;
        let sync_dot_before = sync.to_dot("before resynchronization");
        let (resync_report, resync_cert) = if self.resync {
            // The certified variant records a redundancy proof (witness
            // path in the final graph) for every removed edge; the
            // SPI061/SPI062 analyzer pass re-verifies the certificate
            // below as part of the full-picture gate.
            let (report, cert) = sync.resynchronize_certified(true, None);
            (Some(report), Some(cert))
        } else {
            // Even without resync, drop nothing: report baseline only.
            (None, None)
        };
        let sync_dot_after = sync.to_dot("after resynchronization");
        // An edge keeps its acknowledgements if any Ack sync edge for it
        // survived the optimization.
        for plan in plans.values_mut() {
            if matches!(plan.protocol, Protocol::Ubs { .. }) {
                plan.ack_kept = sync
                    .edges()
                    .iter()
                    .any(|s| matches!(s.kind, SyncKind::Ack { via } if via == plan.edge));
            }
        }

        // ---- Channel creation ------------------------------------------
        let mut machine = Machine::new();
        if self.trace {
            machine.enable_trace();
        }
        if let Some(tracer) = &self.tracer {
            machine.set_tracer(tracer.clone());
        }
        if let Some(bus) = self.bus {
            machine.set_shared_bus(bus);
        }
        let mut ordered_edges: Vec<EdgeId> = plans.keys().copied().collect();
        ordered_edges.sort();
        let mut transport_decls: HashMap<EdgeId, spi_analyze::TransportDecl> = HashMap::new();
        for eid in &ordered_edges {
            let plan = plans.get_mut(eid).expect("planned edge");
            let msg_max = message::header_bytes(plan.phase) + plan.payload_max;
            let capacity = match plan.protocol {
                Protocol::Bbs { capacity } => {
                    // eq. (2): tokens-in-flight bound × messages per
                    // iteration of drift, plus one message of slack.
                    let msgs = (capacity + 1) * q[cg.edge(*eid).src];
                    // Static-phase messages are always exactly `msg_max`
                    // bytes, so the byte capacity implies a message-count
                    // bound the runtime checker can hold occupancy
                    // against. Dynamic messages may be shorter, letting
                    // more of them legitimately fit in the same bytes.
                    if plan.phase == SpiPhase::Static {
                        plan.bound_msgs = Some(msgs);
                    }
                    (msgs as usize) * msg_max
                }
                Protocol::Ubs { .. } => {
                    // "Unbounded": large enough to never backpressure in
                    // practice; credits govern the flow instead.
                    (msg_max * 256).max(1 << 20)
                }
            };
            // Declaring the packed-token message size makes the channel a
            // valid substrate for slot-based transports: a ring of
            // `capacity / msg_max` fixed slots is exactly the eq. (2)
            // allocation.
            plan.data_ch = machine.add_channel(ChannelSpec {
                capacity_bytes: capacity.max(msg_max),
                max_message_bytes: msg_max,
                ..self.channel_template
            });
            transport_decls.insert(
                *eid,
                spi_analyze::TransportDecl {
                    capacity_bytes: capacity.max(msg_max) as u64,
                    message_bytes_max: msg_max as u64,
                    // The slot count a pointer-exchange transport derives
                    // from this spec (PointerTransport::new's rule), so
                    // SPI044 can hold the pool against the channel's
                    // message capacity.
                    pool_slots: Some(((capacity.max(msg_max) / msg_max).max(1)) as u64),
                    // In-memory channels don't batch; cross-partition
                    // lowerings declare their batch in `net_decls`.
                    batch_msgs: None,
                },
            );
            if plan.ack_kept {
                let window = match plan.protocol {
                    Protocol::Ubs { ack_window } => ack_window,
                    Protocol::Bbs { .. } => unreachable!("acks imply UBS"),
                };
                let cap = ((window as usize + 1) * ACK_BYTES).max(16);
                plan.ack_ch = Some(machine.add_channel(ChannelSpec {
                    capacity_bytes: cap,
                    max_message_bytes: ACK_BYTES,
                    ..self.channel_template
                }));
            }
        }

        // ---- Fully-static release times (paper §2's alternative) -------
        let static_timing = match self.mode {
            SchedulingMode::SelfTimed => None,
            SchedulingMode::FullyStatic { slack_percent } => {
                let times = spi_sched::latency::self_timed_times(&sync, 1);
                let scale = 1.0 + f64::from(slack_percent) / 100.0;
                let start: HashMap<spi_dataflow::Firing, u64> = ipc
                    .tasks()
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.firing, (times[0][i].0 as f64 * scale).ceil() as u64))
                    .collect();
                // Blocked (non-overlapped) static schedule: the period is
                // the worst-case makespan of one iteration.
                let max_end = times[0].iter().map(|&(_, e)| e).max().unwrap_or(0);
                let period = ((max_end as f64) * scale).ceil() as u64;
                Some(StaticTiming { start, period })
            }
        };

        // ---- Ordered-transactions grant order ---------------------------
        if let Some(slot) = self.ordered_transactions {
            let times = spi_sched::latency::self_timed_times(&sync, 1);
            // One grant per steady-state send event: data messages at the
            // producer task's analytic end time, acknowledgements at the
            // consumer's.
            let mut events: Vec<(u64, usize, ChannelId)> = Vec::new();
            for (i, task) in ipc.tasks().iter().enumerate() {
                for eid in cg.out_edges(task.firing.actor) {
                    if let Some(plan) = plans.get(&eid) {
                        if plan.src_proc == task.proc {
                            events.push((times[0][i].1, eid.0, plan.data_ch));
                        }
                    }
                }
                for eid in cg.in_edges(task.firing.actor) {
                    if let Some(plan) = plans.get(&eid) {
                        if plan.ack_kept && plan.dst_proc == task.proc {
                            let ack = plan.ack_ch.expect("ack kept implies channel");
                            let count = gen_recv_count(&cg, eid, task.firing.k);
                            for _ in 0..count {
                                events.push((times[0][i].1, eid.0, ack));
                            }
                        }
                    }
                }
            }
            events.sort();
            machine.set_ordered_bus(spi_platform::OrderedBusSpec {
                order: events.into_iter().map(|(_, _, ch)| ch).collect(),
                slot_overhead_cycles: slot,
            });
        }

        // ---- Program generation ----------------------------------------
        let gen = ProgramGen {
            graph: &cg,
            vts: &vts,
            plans: &plans,
            impls: &self.impls,
            initial_payloads: &self.initial_payloads,
            signal: self.signal,
            static_timing: static_timing.as_ref(),
        };
        for (proc, order) in st.processors() {
            let mut program = gen.program_for(proc, order, self.iterations)?;
            if let Some(&(num, den)) = self.proc_speeds.get(&proc) {
                program = program.with_speed(num, den);
            }
            machine.add_pe(program);
        }

        // ---- Resource report --------------------------------------------
        let library = SpiLibraryReport::for_system(&plans, &actor_proc, &self.actor_resources);

        // ---- Schedule-level verification --------------------------------
        // Re-run the analyzer with the full picture (VTS, IPC graph,
        // optimized sync graph, protocol decisions, resource totals).
        // Errors here mean the lowering itself is unsound — abort rather
        // than hand out a racy or overcommitted system; warnings (e.g.
        // SPI040 under `force_ubs`) ride along on the built system.
        let protocols: HashMap<EdgeId, Protocol> =
            plans.iter().map(|(&e, p)| (e, p.protocol)).collect();
        // Cross-partition edges additionally lower to socket channels;
        // the sender-side credit window inherits the in-memory channel's
        // eq. (2)-derived capacity, and SPI045 re-checks it in the
        // distributed wording (a starved window stalls a legal
        // self-timed run on exhausted credits, not on a full FIFO).
        let mut net_decls: HashMap<EdgeId, spi_analyze::TransportDecl> = HashMap::new();
        if let Some(partition) = &self.partition {
            for (eid, plan) in &plans {
                // Out-of-range processors surface as a scheduling error
                // (partition narrower than the processor count).
                partition.node_of(plan.src_proc)?;
                partition.node_of(plan.dst_proc)?;
                if partition.is_cross(plan.src_proc, plan.dst_proc) {
                    // Lower the record batch for this edge's socket:
                    // bounded by the credit window in messages (eq. (2)
                    // bytes over eq. (1) packed size), so SPI046 can
                    // hold the declaration against the window. The
                    // flush deadline is attached after the predicted
                    // metrics exist; the batch size depends only on
                    // the window.
                    let decl = transport_decls[eid];
                    let window_msgs = decl.capacity_bytes / decl.message_bytes_max.max(1);
                    let max_msgs = spi_sched::batch_plan(window_msgs, None).max_msgs;
                    net_decls.insert(
                        *eid,
                        spi_analyze::TransportDecl {
                            batch_msgs: Some(max_msgs),
                            ..decl
                        },
                    );
                }
            }
        }
        let mut full_input = spi_analyze::AnalysisInput::new(&self.graph)
            .with_vts(&vts)
            .with_signal(self.signal)
            .with_ipc(&ipc)
            .with_sync(&sync)
            .with_protocols(&protocols)
            .with_transports(&transport_decls)
            .with_resources(library.full_system(), None);
        if self.partition.is_some() {
            full_input = full_input.with_net_transports(&net_decls);
        }
        if let Some(cert) = &resync_cert {
            full_input = full_input.with_resync_cert(cert);
        }
        let analysis = spi_analyze::Analyzer::default_pipeline().run(&full_input);
        if analysis.has_errors() {
            return Err(SpiError::Analysis {
                diagnostics: analysis.errors().cloned().collect(),
            });
        }

        // ---- Predicted-makespan bound for trace conformance -------------
        // The sync-graph fixed point covers computation and blocking
        // order; the engines additionally charge per-message channel
        // costs (codec overhead, send/recv busy time, wire cycles). In a
        // monotonic event system, inflating operation durations by deltas
        // inflates the makespan by at most their sum, so adding every
        // per-message cost as slack yields a sound upper bound. Only the
        // paper's baseline configuration is predictable this way: a
        // shared/ordered bus serializes transfers and heterogeneous
        // processor speeds rescale compute outside the sync model.
        let predicted = if matches!(self.mode, SchedulingMode::SelfTimed)
            && self.bus.is_none()
            && self.ordered_transactions.is_none()
            && self.proc_speeds.is_empty()
        {
            let base = spi_sched::predicted_metrics(&sync, self.iterations);
            let spec = &self.channel_template;
            let mut per_iter = 0u64;
            let mut fixed = 0u64;
            for plan in plans.values() {
                let edge = cg.edge(plan.edge);
                let q_src = q[edge.src];
                let msg_max = message::header_bytes(plan.phase) + plan.payload_max;
                let decode = match (plan.phase, self.signal) {
                    (SpiPhase::Static, _) => 1,
                    (SpiPhase::Dynamic, LengthSignal::Header) => 2,
                    (SpiPhase::Dynamic, LengthSignal::Delimiter) => 2 + plan.payload_max as u64,
                };
                let data_cost = 1 // header emission inside the firing
                    + spec.send_overhead_cycles
                    + spec.wire_cycles(msg_max)
                    + spec.recv_overhead_cycles
                    + decode;
                per_iter = per_iter.saturating_add(q_src.saturating_mul(data_cost));
                // Pipeline-fill sends happen once, ahead of the loop.
                let fills = edge.delay / u64::from(edge.produce.bound());
                fixed = fixed.saturating_add(
                    fills.saturating_mul(spec.send_overhead_cycles + spec.wire_cycles(msg_max)),
                );
                if plan.ack_kept {
                    let ack_cost = spec.send_overhead_cycles
                        + spec.wire_cycles(ACK_BYTES)
                        + spec.recv_overhead_cycles
                        + 1; // credit-consume compute
                    per_iter = per_iter.saturating_add(q_src.saturating_mul(ack_cost));
                    let window = match plan.protocol {
                        Protocol::Ubs { ack_window } => ack_window,
                        Protocol::Bbs { .. } => 0,
                    };
                    // The consumer grants the initial credit window once.
                    fixed =
                        fixed.saturating_add(window.saturating_mul(
                            spec.send_overhead_cycles + spec.wire_cycles(ACK_BYTES),
                        ));
                }
                // Consumer-side priming compute and iteration-boundary
                // drift of the cumulative-message counts.
                fixed = fixed.saturating_add(4);
            }
            // Keep the whole metrics struct (with the communication
            // slack folded into the makespan) so downstream consumers —
            // the trace checker's bound, the supervision deadline — all
            // derive from one number.
            let makespan_cycles = base.makespan_with_slack(per_iter, fixed);
            Some(spi_sched::PredictedMetrics {
                makespan_cycles,
                ..base
            })
        } else {
            None
        };

        // ---- Batch plans for cross-partition edges ----------------------
        // Re-derive the window-bounded batch sizes declared in
        // `net_decls` above (same deterministic rule), now with the
        // Nagle flush deadline derived from the predicted per-iteration
        // wall time at this system's clock.
        let batch_plans: HashMap<EdgeId, spi_sched::BatchPlan> = {
            let clock_hz = (self.clock_mhz * 1e6) as u64;
            let op_deadline = predicted
                .as_ref()
                .and_then(|m| m.op_deadline(clock_hz, 1.0));
            net_decls
                .iter()
                .map(|(&eid, decl)| {
                    let window_msgs = decl.capacity_bytes / decl.message_bytes_max.max(1);
                    (eid, spi_sched::batch_plan(window_msgs, op_deadline))
                })
                .collect()
        };

        Ok(SpiSystem {
            machine,
            plans,
            sync_cost_after: sync.sync_cost(),
            resync_report,
            resync_cert,
            iteration_period_estimate: sync.iteration_period(),
            clock_mhz: self.clock_mhz,
            library,
            iterations: self.iterations,
            sync_dot_before,
            sync_dot_after,
            analysis,
            transports: transport_decls,
            predicted,
            tracer: self.tracer,
            partition: self.partition,
            batch_plans,
        })
    }
}

/// Graph-level static analysis gate shared by [`SpiSystemBuilder::build`]
/// and [`SpiSystemBuilder::build_auto`].
fn preflight(graph: &SdfGraph, signal: LengthSignal) -> Result<()> {
    let report = spi_analyze::Analyzer::default_pipeline()
        .run(&spi_analyze::AnalysisInput::new(graph).with_signal(signal));
    if report.has_errors() {
        return Err(SpiError::Analysis {
            diagnostics: report.errors().cloned().collect(),
        });
    }
    Ok(())
}

/// Lowered plan for one inter-processor edge.
#[derive(Debug, Clone)]
pub struct EdgePlan {
    /// The application edge.
    pub edge: EdgeId,
    /// SPI_static or SPI_dynamic.
    pub phase: SpiPhase,
    /// Maximum payload bytes of one message.
    pub payload_max: usize,
    /// Producer's processor.
    pub src_proc: ProcId,
    /// Consumer's processor.
    pub dst_proc: ProcId,
    /// eq. (2) bound in tokens, when it exists.
    pub bound_tokens: Option<u64>,
    /// Message-count capacity the data channel was provisioned for
    /// (`(capacity + 1) · q_src` for BBS); `None` for UBS, where credits
    /// govern flow instead of the buffer. The runtime conformance
    /// checker holds observed occupancy against this.
    pub bound_msgs: Option<u64>,
    /// Chosen protocol.
    pub protocol: Protocol,
    /// Whether UBS acknowledgements survived resynchronization.
    pub ack_kept: bool,
    /// Data channel in the lowered machine.
    pub data_ch: ChannelId,
    /// Ack channel (UBS with acks only).
    pub ack_ch: Option<ChannelId>,
}

/// A built, runnable SPI system.
pub struct SpiSystem {
    machine: Machine,
    plans: HashMap<EdgeId, EdgePlan>,
    sync_cost_after: usize,
    resync_report: Option<ResyncReport>,
    resync_cert: Option<ResyncCertificate>,
    iteration_period_estimate: Option<f64>,
    clock_mhz: f64,
    library: SpiLibraryReport,
    iterations: u64,
    sync_dot_before: String,
    sync_dot_after: String,
    analysis: spi_analyze::AnalysisReport,
    transports: HashMap<EdgeId, spi_analyze::TransportDecl>,
    predicted: Option<spi_sched::PredictedMetrics>,
    tracer: Option<Arc<dyn Tracer>>,
    partition: Option<Partition>,
    batch_plans: HashMap<EdgeId, spi_sched::BatchPlan>,
}

impl SpiSystem {
    /// Per-edge lowering decisions.
    pub fn edge_plans(&self) -> &HashMap<EdgeId, EdgePlan> {
        &self.plans
    }

    /// The processor→node mapping of a distributed build (set with
    /// [`SpiSystemBuilder::partition`]), for the node launcher. `None`
    /// for a single-process system.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Record-batching parameters lowered per **cross-partition** edge
    /// of a distributed build: the window-bounded batch size and the
    /// schedule-derived Nagle flush deadline `spi-net` applies to the
    /// edge's socket endpoints. Empty for single-process systems;
    /// unbatchable edges (windows of ≤ 3 messages) carry the disabled
    /// plan.
    pub fn batch_plans(&self) -> &HashMap<EdgeId, spi_sched::BatchPlan> {
        &self.batch_plans
    }

    /// The full static-analysis report of the build. Error-severity
    /// diagnostics abort [`SpiSystemBuilder::build`], so this contains
    /// at most warnings and notes.
    pub fn analysis(&self) -> &spi_analyze::AnalysisReport {
        &self.analysis
    }

    /// Warning-severity diagnostics collected during the build (e.g.
    /// SPI040 when `force_ubs` discards a provable BBS bound).
    pub fn analysis_warnings(&self) -> Vec<&spi_analyze::Diagnostic> {
        self.analysis.warnings().collect()
    }

    /// Resynchronization outcome (if the pass was enabled).
    pub fn resync_report(&self) -> Option<ResyncReport> {
        self.resync_report
    }

    /// Proof artifact of the certified resynchronization run: one
    /// redundancy witness per removed sync edge, plus the net-cost
    /// justification of every added resync edge. Already re-verified by
    /// the SPI061/SPI062 analyzer pass during the build.
    pub fn resync_certificate(&self) -> Option<&ResyncCertificate> {
        self.resync_cert.as_ref()
    }

    /// Removable synchronization edges remaining after optimization.
    pub fn sync_cost(&self) -> usize {
        self.sync_cost_after
    }

    /// Analytic iteration-period estimate (max cycle mean), in cycles.
    pub fn iteration_period_estimate(&self) -> Option<f64> {
        self.iteration_period_estimate
    }

    /// Hardware cost report of the generated system.
    pub fn library(&self) -> &SpiLibraryReport {
        &self.library
    }

    /// Graphviz DOT of the synchronization graph before and after the
    /// optimization passes — the raw material of the paper's figures 3
    /// and 5.
    pub fn sync_graph_dot(&self) -> (&str, &str) {
        (&self.sync_dot_before, &self.sync_dot_after)
    }

    /// The predicted self-timed makespan bound in cycles for this
    /// system's iteration horizon — the eq. (3) fixed point plus
    /// conservative per-message communication slack. `None` when the
    /// configuration falls outside the analytic model (fully-static
    /// mode, shared or ordered bus, heterogeneous processor speeds).
    pub fn predicted_makespan_cycles(&self) -> Option<u64> {
        self.predicted.as_ref().map(|m| m.makespan_cycles)
    }

    /// A wall-clock per-operation deadline for a **supervised** threaded
    /// run, derived from the predicted per-iteration cost at this
    /// system's configured clock: no single channel op of a healthy peer
    /// should block longer than `safety_factor` iterations' worth of
    /// predicted cycles (see
    /// [`spi_sched::PredictedMetrics::op_deadline`]). Clamped below at
    /// 1 ms — OS scheduling jitter on a loaded host dwarfs sub-millisecond
    /// analytic deadlines and would turn them into false fault reports.
    ///
    /// `None` when the configuration falls outside the analytic model
    /// (same conditions as [`SpiSystem::predicted_makespan_cycles`]);
    /// callers then keep the policy's configured default.
    pub fn supervision_deadline(&self, safety_factor: f64) -> Option<std::time::Duration> {
        let clock_hz = (self.clock_mhz * 1e6) as u64;
        let d = self
            .predicted
            .as_ref()?
            .op_deadline(clock_hz, safety_factor)?;
        Some(d.max(std::time::Duration::from_millis(1)))
    }

    /// As [`SpiSystem::trace_meta`], additionally stamping the
    /// supervision budgets of `policy` into the metadata so the trace
    /// checker can hold the observed fault events against them
    /// (diagnostics SPI090–SPI092). The degraded-token budget is derived
    /// from the degradation policy: strict `Fail` declares **zero**
    /// tolerated deviations, while `Skip`/`Substitute` declare the
    /// deviation unbounded (the advisory SPI095 still reports every
    /// degraded token).
    pub fn trace_meta_supervised(
        &self,
        clock: spi_trace::ClockKind,
        policy: &spi_platform::SupervisionPolicy,
    ) -> spi_trace::TraceMeta {
        let mut meta = self.trace_meta(clock);
        meta.supervision = Some(spi_trace::SupervisionBounds {
            max_retries: u64::from(policy.max_retries),
            max_degraded: match policy.degrade {
                spi_platform::DegradePolicy::Fail => 0,
                _ => u64::MAX,
            },
            max_restarts: u64::from(policy.max_restarts),
        });
        meta
    }

    /// Trace metadata for a capture of this system: the per-edge
    /// eq. (1)/(2) bounds, the iteration horizon, and (for cycle-clocked
    /// captures) the predicted makespan bound. Pass the result to
    /// `spi_trace::RingTracer::finish` so the conformance checker can
    /// replay the observed run against the static contract.
    ///
    /// Ack and control channels are deliberately absent from the edge
    /// table: their sizing is a protocol concern, not an eq. (2) bound,
    /// so the checker replays them for FIFO order only.
    pub fn trace_meta(&self, clock: spi_trace::ClockKind) -> spi_trace::TraceMeta {
        let mut meta = spi_trace::TraceMeta::new(clock);
        meta.iterations = self.iterations;
        if clock == spi_trace::ClockKind::Cycles {
            meta.predicted_makespan_cycles = self.predicted_makespan_cycles();
        }
        let mut edges: Vec<spi_trace::EdgeBound> = self
            .plans
            .values()
            .map(|p| {
                let t = &self.transports[&p.edge];
                spi_trace::EdgeBound {
                    edge: p.edge,
                    channel: p.data_ch,
                    capacity_bytes: t.capacity_bytes,
                    max_message_bytes: t.message_bytes_max,
                    bound_tokens: p.bound_msgs,
                }
            })
            .collect();
        edges.sort_by_key(|e| e.edge);
        meta.edges = edges;
        // Batching budgets for cross-partition channels: the checker's
        // SPI086 holds every observed flush against these.
        let mut batches: Vec<spi_trace::BatchBound> = self
            .batch_plans
            .iter()
            .filter(|(_, plan)| plan.is_batched())
            .map(|(eid, plan)| spi_trace::BatchBound {
                channel: self.plans[eid].data_ch,
                max_msgs: plan.max_msgs,
            })
            .collect();
        batches.sort_by_key(|b| b.channel.0);
        meta.batch_bounds = batches;
        meta
    }

    /// Per-edge buffer sizing report: the paper's bounded-memory story
    /// (eqs. 1–2) made concrete. One row per inter-processor edge with
    /// its protocol, eq.-(2) token bound (where it exists) and the bytes
    /// actually reserved for the FIFO.
    pub fn buffer_report(&self) -> Vec<BufferRow> {
        let mut rows: Vec<BufferRow> = self
            .plans
            .values()
            .map(|p| BufferRow {
                edge: p.edge,
                phase: p.phase,
                protocol: p.protocol,
                bound_tokens: p.bound_tokens,
                message_bytes_max: message::header_bytes(p.phase) + p.payload_max,
            })
            .collect();
        rows.sort_by_key(|r| r.edge);
        rows
    }

    /// Executes the system on OS threads instead of the discrete-event
    /// engine: no timing, but genuine parallel execution of the same
    /// generated programs — the strongest check that the protocol logic
    /// is not an artifact of event-queue serialization.
    ///
    /// Runs with the default [`spi_platform::ThreadedRunner`]
    /// configuration (locked transport, 30 s deadlock timeout); use
    /// [`SpiSystem::run_threaded_with`] to select the lock-free ring
    /// transport or a different timeout.
    ///
    /// # Errors
    ///
    /// Platform errors (a timeout surfaces as deadlock) and
    /// [`SpiError::ActorFailed`] if any actor recorded a failure.
    pub fn run_threaded(self) -> Result<Vec<spi_platform::ThreadedPeResult>> {
        self.run_threaded_with(&spi_platform::ThreadedRunner::new())
    }

    /// As [`SpiSystem::run_threaded`], with an explicit runner
    /// configuration (transport implementation, deadlock timeout).
    ///
    /// # Errors
    ///
    /// As [`SpiSystem::run_threaded`].
    pub fn run_threaded_with(
        self,
        runner: &spi_platform::ThreadedRunner,
    ) -> Result<Vec<spi_platform::ThreadedPeResult>> {
        // A tracer attached at build time follows the system onto
        // whichever engine runs it.
        let runner = match &self.tracer {
            Some(t) => runner.clone().tracer(t.clone()),
            None => runner.clone(),
        };
        let (channels, programs) = self.machine.into_parts();
        let results = runner.run(&channels, programs)?;
        for r in &results {
            if let Some(err) = r.store.get(FAIL_KEY) {
                return Err(SpiError::ActorFailed {
                    message: String::from_utf8_lossy(err).into_owned(),
                });
            }
        }
        Ok(results)
    }

    /// Decomposes the built system into its channel specs and PE
    /// programs — the raw inputs of the threaded runner, for callers
    /// (benchmarks, harnesses) that drive transports directly.
    pub fn into_parts(self) -> (Vec<spi_platform::ChannelSpec>, Vec<spi_platform::Program>) {
        self.machine.into_parts()
    }

    /// Executes the system to completion.
    ///
    /// # Errors
    ///
    /// Platform errors (deadlock, budget) and
    /// [`SpiError::ActorFailed`] if any actor recorded a failure during
    /// the run.
    pub fn run(self) -> Result<SpiRunReport> {
        let sim = self.machine.run()?;
        for local in &sim.locals {
            if let Some(err) = local.store.get(FAIL_KEY) {
                return Err(SpiError::ActorFailed {
                    message: String::from_utf8_lossy(err).into_owned(),
                });
            }
        }
        Ok(SpiRunReport {
            edge_channels: self.plans.values().map(|p| (p.edge, p.data_ch)).collect(),
            sim,
            resync: self.resync_report,
            sync_cost: self.sync_cost_after,
            clock_mhz: self.clock_mhz,
            iterations: self.iterations,
            library: self.library,
        })
    }
}

/// One row of [`SpiSystem::buffer_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferRow {
    /// The application edge.
    pub edge: EdgeId,
    /// SPI_static or SPI_dynamic.
    pub phase: SpiPhase,
    /// Chosen protocol (BBS capacity is the eq.-(2)-derived size).
    pub protocol: Protocol,
    /// eq. (2) bound in packed tokens, when a feedback path exists.
    pub bound_tokens: Option<u64>,
    /// Largest single message (header + payload bound).
    pub message_bytes_max: usize,
}

impl std::fmt::Display for BufferRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>4}  {:<8}  {:<22}  bound {:<9}  ≤{} B/msg",
            self.edge.to_string(),
            format!("{:?}", self.phase),
            format!("{:?}", self.protocol),
            self.bound_tokens
                .map(|b| b.to_string())
                .unwrap_or_else(|| "∞ (UBS)".into()),
            self.message_bytes_max,
        )
    }
}

/// Outcome of running an SPI system.
#[derive(Debug)]
pub struct SpiRunReport {
    /// Raw platform statistics (timing, traffic, final PE state).
    pub sim: SimReport,
    /// Resynchronization outcome.
    pub resync: Option<ResyncReport>,
    /// Final synchronization cost.
    pub sync_cost: usize,
    /// Clock for µs conversion.
    pub clock_mhz: f64,
    /// Iterations simulated.
    pub iterations: u64,
    /// Hardware cost report.
    pub library: SpiLibraryReport,
    /// Data channel of each inter-processor edge.
    pub edge_channels: HashMap<EdgeId, ChannelId>,
}

impl SpiRunReport {
    /// End-to-end execution time in microseconds.
    pub fn makespan_us(&self) -> f64 {
        self.sim.makespan_us(self.clock_mhz)
    }

    /// Average iteration period in microseconds.
    pub fn period_us(&self) -> f64 {
        self.makespan_us() / self.iterations.max(1) as f64
    }

    /// Traffic statistics of one application edge's data channel
    /// (messages and payload bytes including SPI headers), or `None`
    /// for local edges.
    pub fn edge_traffic(&self, edge: EdgeId) -> Option<spi_platform::ChannelStats> {
        let ch = self.edge_channels.get(&edge)?;
        self.sim.channels.get(ch.0).copied()
    }

    /// Per-processor utilization: compute-busy cycles over the makespan
    /// (0.0–1.0). The balance goes to communication stalls, protocol
    /// overhead and idling — the quantity parallelization studies watch.
    pub fn utilization(&self) -> Vec<f64> {
        let total = self.sim.makespan_cycles.max(1) as f64;
        self.sim
            .pe
            .iter()
            .map(|p| p.busy_cycles as f64 / total)
            .collect()
    }
}

// ---------------------------------------------------------------------
// Lowering internals
// ---------------------------------------------------------------------

const FAIL_KEY: &str = "__spi_error";

fn fail(local: &mut PeLocal, msg: String) {
    local
        .store
        .entry(FAIL_KEY.to_string())
        .or_insert_with(|| msg.into_bytes());
}

fn failed(local: &PeLocal) -> bool {
    local.store.contains_key(FAIL_KEY)
}

fn queue_key(edge: EdgeId) -> String {
    format!("__q_e{}", edge.0)
}

fn send_key(edge: EdgeId) -> String {
    format!("__send_e{}", edge.0)
}

/// Appends raw bytes to an edge's byte queue.
fn queue_push(local: &mut PeLocal, edge: EdgeId, bytes: &[u8]) {
    local
        .store
        .entry(queue_key(edge))
        .or_default()
        .extend_from_slice(bytes);
}

/// Takes exactly `n` bytes from the queue; `None` if short (a protocol
/// bug — the schedule guarantees availability).
fn queue_take(local: &mut PeLocal, edge: EdgeId, n: usize) -> Option<Vec<u8>> {
    let q = local.store.entry(queue_key(edge)).or_default();
    if q.len() < n {
        return None;
    }
    let rest = q.split_off(n);
    let head = std::mem::replace(q, rest);
    Some(head)
}

/// Appends a length-prefixed frame (dynamic edges).
fn frame_push(local: &mut PeLocal, edge: EdgeId, bytes: &[u8]) {
    let q = local.store.entry(queue_key(edge)).or_default();
    q.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    q.extend_from_slice(bytes);
}

/// Pops one frame; `None` if the queue is empty or corrupt.
fn frame_pop(local: &mut PeLocal, edge: EdgeId) -> Option<Vec<u8>> {
    let q = local.store.entry(queue_key(edge)).or_default();
    if q.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([q[0], q[1], q[2], q[3]]) as usize;
    if q.len() < 4 + len {
        return None;
    }
    let rest = q.split_off(4 + len);
    let frame = std::mem::replace(q, rest)[4..].to_vec();
    Some(frame)
}

/// Steady-state per-firing receive count for consumer firing `j` of
/// `edge` (free-function mirror of the generator's rule, used when
/// deriving the ordered-transactions grant sequence).
fn gen_recv_count(graph: &SdfGraph, edge: EdgeId, j: u64) -> u64 {
    let e = graph.edge(edge);
    let (p, c) = (i64::from(e.produce.bound()), i64::from(e.consume.bound()));
    let d = e.delay as i64;
    (cumulative_messages(j as i64, c, d, p) - cumulative_messages(j as i64 - 1, c, d, p)).max(0)
        as u64
}

/// Steady-state cumulative message count: `M(j) = ⌈((j+1)·c − d) / p⌉`.
fn cumulative_messages(j: i64, c: i64, d: i64, p: i64) -> i64 {
    let num = (j + 1) * c - d;
    num.div_euclid(p) + i64::from(num.rem_euclid(p) != 0)
}

/// Precomputed release schedule for the fully-static mode.
struct StaticTiming {
    start: HashMap<spi_dataflow::Firing, u64>,
    period: u64,
}

struct ProgramGen<'a> {
    graph: &'a SdfGraph,
    vts: &'a VtsConversion,
    plans: &'a HashMap<EdgeId, EdgePlan>,
    impls: &'a HashMap<ActorId, SharedActor>,
    initial_payloads: &'a HashMap<EdgeId, Vec<Vec<u8>>>,
    signal: LengthSignal,
    static_timing: Option<&'a StaticTiming>,
}

impl ProgramGen<'_> {
    /// Number of messages consumer firing `j` of an edge receives per
    /// iteration (steady state).
    fn recv_count(&self, edge: EdgeId, j: u64) -> u64 {
        let e = self.graph.edge(edge);
        let (p, c) = (i64::from(e.produce.bound()), i64::from(e.consume.bound()));
        let d = e.delay as i64;
        let m_now = cumulative_messages(j as i64, c, d, p);
        let m_prev = cumulative_messages(j as i64 - 1, c, d, p);
        (m_now - m_prev).max(0) as u64
    }

    /// Pipeline-fill messages the producer sends before the loop.
    fn fill_messages(&self, edge: EdgeId) -> u64 {
        let e = self.graph.edge(edge);
        e.delay / u64::from(e.produce.bound())
    }

    /// Delay tokens primed directly into the consumer's local queue.
    fn queue_prime_tokens(&self, edge: EdgeId) -> u64 {
        let e = self.graph.edge(edge);
        e.delay % u64::from(e.produce.bound())
    }

    fn program_for(
        &self,
        proc: ProcId,
        order: &[spi_dataflow::Firing],
        iterations: u64,
    ) -> Result<Program> {
        let mut ops: Vec<Op> = Vec::new();

        // ---------------- Prologue (iteration 0 only) ----------------
        // Platform programs have no separate prologue, so we emit the
        // priming work as iteration-guarded compute/send logic inside the
        // first ops and rely on `iterations` staying the loop count. To
        // keep programs static, priming instead happens here through
        // channel-level sends issued by dedicated prologue ops guarded by
        // `iter == 0` — sends cannot be conditional, so fills are modeled
        // as separate unconditional ops executed once by wrapping the
        // whole program body; instead we exploit a simpler equivalent:
        // fills and primes are performed by *this* generator emitting
        // one-off ops ahead of the loop via Program::prologue support.
        let mut prologue: Vec<Op> = Vec::new();
        let mut edges_seen: Vec<EdgeId> = Vec::new();
        for &f in order {
            for eid in self.graph.in_edges(f.actor) {
                if !edges_seen.contains(&eid) {
                    edges_seen.push(eid);
                    self.prime_consumer(proc, eid, &mut prologue);
                }
            }
            for eid in self.graph.out_edges(f.actor) {
                if !edges_seen.contains(&eid) {
                    edges_seen.push(eid);
                }
                self.fill_producer_once(proc, eid, f, &mut prologue)?;
            }
        }

        // ---------------- Main loop body per firing ----------------
        for &f in order {
            self.emit_firing(proc, f, &mut ops)?;
        }

        let mut program = Program::new(ops, iterations);
        program.prologue = prologue;
        Ok(program)
    }

    /// Consumer-side priming: local-queue delay tokens and UBS credits.
    fn prime_consumer(&self, proc: ProcId, eid: EdgeId, prologue: &mut Vec<Op>) {
        let e = self.graph.edge(eid);
        let plan = self.plans.get(&eid);
        let is_cross = plan.is_some();
        let consumer_here = match plan {
            Some(p) => p.dst_proc == proc,
            // Local edge: both endpoints on this proc by construction.
            None => true,
        };
        if !consumer_here {
            return;
        }
        let dynamic = self.vts.edge_info(eid).is_some();
        let token_bytes = e.token_bytes as usize;
        let prime_tokens = if is_cross {
            self.queue_prime_tokens(eid)
        } else {
            e.delay
        };
        if prime_tokens > 0 {
            let override_payloads = self.initial_payloads.get(&eid).cloned();
            // Cross edges consume override entries after the producer's
            // pipeline-fill messages; local edges start at entry 0.
            let offset = if is_cross {
                self.fill_messages(eid) as usize
            } else {
                0
            };
            let edge = eid;
            prologue.push(Op::Compute {
                label: format!("spi:prime:{edge}"),
                work: Box::new(move |l| {
                    if dynamic {
                        // One frame per delay token batch; default empty.
                        for i in 0..prime_tokens {
                            let payload = override_payloads
                                .as_ref()
                                .and_then(|v| v.get(offset + i as usize))
                                .cloned()
                                .unwrap_or_default();
                            frame_push(l, edge, &payload);
                        }
                    } else {
                        let total = prime_tokens as usize * token_bytes;
                        let bytes = override_payloads
                            .as_ref()
                            .and_then(|v| v.get(offset))
                            .cloned()
                            .unwrap_or_else(|| vec![0u8; total]);
                        queue_push(l, edge, &bytes);
                    }
                    1
                }),
            });
        }
        // UBS credits: the receiver grants the initial window.
        if let Some(plan) = plan {
            if plan.ack_kept && plan.dst_proc == proc {
                let ack_ch = plan.ack_ch.expect("ack kept implies ack channel");
                let window = match plan.protocol {
                    spi_sched::Protocol::Ubs { ack_window } => ack_window,
                    spi_sched::Protocol::Bbs { .. } => unreachable!("acks imply UBS"),
                };
                let edge = eid;
                for _ in 0..window {
                    prologue.push(Op::Send {
                        channel: ack_ch,
                        payload: Box::new(move |_| (edge.0 as u16).to_le_bytes().to_vec()),
                    });
                }
            }
        }
    }

    /// Producer-side pipeline-fill messages for cross edges with delay.
    fn fill_producer_once(
        &self,
        proc: ProcId,
        eid: EdgeId,
        _f: spi_dataflow::Firing,
        prologue: &mut Vec<Op>,
    ) -> Result<()> {
        let Some(plan) = self.plans.get(&eid) else {
            return Ok(());
        };
        if plan.src_proc != proc {
            return Ok(());
        }
        // Only emit once per edge: prologue may be visited via multiple
        // firings of the producer; guard by checking we have not emitted
        // for this edge yet (callers pass distinct firings).
        if prologue.iter().any(|op| match op {
            Op::Compute { label, .. } => label == &format!("spi:fillmark:{eid}"),
            _ => false,
        }) {
            return Ok(());
        }
        let fills = self.fill_messages(eid);
        if fills == 0 {
            return Ok(());
        }
        prologue.push(Op::Compute {
            label: format!("spi:fillmark:{eid}"),
            work: Box::new(|_| 0),
        });
        let e = self.graph.edge(eid);
        let phase = plan.phase;
        let payload_len = e.produce.bound() as usize * e.token_bytes as usize;
        let overrides = self.initial_payloads.get(&eid);
        for i in 0..fills {
            // Fill payloads depend only on the fill index, so frame them
            // now and surface encoding problems as build errors instead
            // of panicking inside the send closure at run time.
            let payload = overrides
                .and_then(|v| v.get(i as usize))
                .cloned()
                .unwrap_or_else(|| match phase {
                    SpiPhase::Static => vec![0u8; payload_len],
                    SpiPhase::Dynamic => Vec::new(),
                });
            let framed = match phase {
                SpiPhase::Static => message::encode_static(eid, &payload)?,
                SpiPhase::Dynamic => message::encode_dynamic(eid, &payload)?,
            };
            prologue.push(Op::Send {
                channel: plan.data_ch,
                payload: Box::new(move |_| framed.clone()),
            });
        }
        Ok(())
    }

    /// Emits the op sequence of one firing.
    fn emit_firing(&self, proc: ProcId, f: spi_dataflow::Firing, ops: &mut Vec<Op>) -> Result<()> {
        let actor = f.actor;
        if let Some(timing) = self.static_timing {
            let start = timing.start.get(&f).copied().unwrap_or(0);
            let period = timing.period;
            ops.push(Op::WaitUntil {
                target: Box::new(move |iter| start + iter * period),
            });
        }
        let mut in_edges = self.graph.in_edges(actor);
        in_edges.sort();
        let mut out_edges = self.graph.out_edges(actor);
        out_edges.sort();

        // 1. Receive ops for cross in-edges.
        let mut recv_plan: Vec<(EdgeId, u64)> = Vec::new();
        for &eid in &in_edges {
            if let Some(plan) = self.plans.get(&eid) {
                debug_assert_eq!(plan.dst_proc, proc);
                let count = self.recv_count(eid, f.k);
                for _ in 0..count {
                    ops.push(Op::Recv {
                        channel: plan.data_ch,
                    });
                }
                recv_plan.push((eid, count));
            }
        }

        // 2. The firing's compute op: decode messages, gather inputs,
        //    run the actor, stage outputs.
        let decode_info: Vec<DecodeInfo> = recv_plan
            .iter()
            .map(|&(eid, count)| {
                let plan = &self.plans[&eid];
                DecodeInfo {
                    edge: eid,
                    channel: plan.data_ch,
                    count,
                    phase: plan.phase,
                    payload_max: plan.payload_max,
                }
            })
            .collect();
        let consume_info: Vec<ConsumeInfo> = in_edges
            .iter()
            .map(|&eid| {
                let e = self.graph.edge(eid);
                ConsumeInfo {
                    edge: eid,
                    dynamic: self.vts.edge_info(eid).is_some(),
                    bytes: e.consume.bound() as usize * e.token_bytes as usize,
                }
            })
            .collect();
        let produce_info: Vec<ProduceInfo> = out_edges
            .iter()
            .map(|&eid| {
                let e = self.graph.edge(eid);
                let dynamic = self.vts.edge_info(eid).is_some();
                ProduceInfo {
                    edge: eid,
                    dynamic,
                    exact_bytes: e.produce.bound() as usize * e.token_bytes as usize,
                    bound_bytes: if dynamic {
                        self.vts.bytes_per_packed_token(eid).expect("edge exists") as usize
                    } else {
                        e.produce.bound() as usize * e.token_bytes as usize
                    },
                    cross: self.plans.contains_key(&eid),
                    phase: self
                        .plans
                        .get(&eid)
                        .map(|p| p.phase)
                        .unwrap_or(SpiPhase::Static),
                }
            })
            .collect();

        let shared = self.impls[&actor].clone();
        let name = self.graph.actor(actor).name.clone();
        let k = f.k;
        let signal = self.signal;
        ops.push(Op::Compute {
            label: format!("fire:{name}#{k}"),
            work: Box::new(move |l| {
                if failed(l) {
                    return 0;
                }
                let mut overhead = 0u64;
                // Decode incoming messages into edge queues.
                for d in &decode_info {
                    for _ in 0..d.count {
                        // Take the token by ownership (a pooled lease
                        // stays in its slot) and decode borrowed: the
                        // payload view aliases the slot until it is
                        // pushed into the edge queue.
                        let Some(msg) = l.take_token_from(d.channel) else {
                            fail(l, format!("missing message on {}", d.edge));
                            return 0;
                        };
                        let decoded = match d.phase {
                            SpiPhase::Static => {
                                message::decode_static_borrowed(&msg, d.edge, d.payload_max)
                            }
                            SpiPhase::Dynamic => {
                                message::decode_dynamic_borrowed(&msg, d.edge, d.payload_max)
                            }
                        };
                        let payload = match decoded {
                            Ok(p) => p,
                            Err(e) => {
                                fail(l, e.to_string());
                                return 0;
                            }
                        };
                        // SPI_receive cost: constant header parse; the
                        // delimiter ablation instead scans the payload.
                        overhead += match (d.phase, signal) {
                            (SpiPhase::Static, _) => 1,
                            (SpiPhase::Dynamic, LengthSignal::Header) => 2,
                            (SpiPhase::Dynamic, LengthSignal::Delimiter) => {
                                2 + payload.len() as u64
                            }
                        };
                        match d.phase {
                            SpiPhase::Static => queue_push(l, d.edge, payload),
                            SpiPhase::Dynamic => frame_push(l, d.edge, payload),
                        }
                    }
                }
                // Gather this firing's inputs.
                let mut inputs = HashMap::new();
                for c in &consume_info {
                    let data = if c.dynamic {
                        frame_pop(l, c.edge)
                    } else {
                        queue_take(l, c.edge, c.bytes)
                    };
                    let Some(data) = data else {
                        fail(l, format!("input underflow on {}", c.edge));
                        return 0;
                    };
                    inputs.insert(c.edge, data);
                }
                // Fire.
                let mut ctx = Firing::new(l.iter, k, inputs);
                let cycles = shared.lock().expect("actor lock").fire(&mut ctx);
                let mut outputs = ctx.into_outputs();
                // Stage outputs.
                for p in &produce_info {
                    let bytes = outputs.remove(&p.edge).unwrap_or_default();
                    if p.dynamic {
                        if bytes.len() > p.bound_bytes {
                            fail(
                                l,
                                SpiError::VtsBoundExceeded {
                                    edge: p.edge,
                                    got: bytes.len(),
                                    bound: p.bound_bytes,
                                }
                                .to_string(),
                            );
                            return 0;
                        }
                    } else if bytes.len() != p.exact_bytes {
                        fail(
                            l,
                            SpiError::StaticSizeMismatch {
                                edge: p.edge,
                                got: bytes.len(),
                                expected: p.exact_bytes,
                            }
                            .to_string(),
                        );
                        return 0;
                    }
                    if p.cross {
                        // Frame now (SPI_send header cost) and stash for
                        // the Send op that follows.
                        let framed = match p.phase {
                            SpiPhase::Static => message::encode_static(p.edge, &bytes),
                            SpiPhase::Dynamic => message::encode_dynamic(p.edge, &bytes),
                        };
                        let framed = match framed {
                            Ok(framed) => framed,
                            Err(e) => {
                                fail(l, e.to_string());
                                return 0;
                            }
                        };
                        overhead += 1; // header emission
                        l.store.insert(send_key(p.edge), framed);
                    } else if p.dynamic {
                        frame_push(l, p.edge, &bytes);
                    } else {
                        queue_push(l, p.edge, &bytes);
                    }
                }
                cycles + overhead
            }),
        });

        // 3. Ack sends for consumed messages (UBS with acks).
        for &(eid, count) in &recv_plan {
            let plan = &self.plans[&eid];
            if plan.ack_kept {
                let ack_ch = plan.ack_ch.expect("ack channel");
                for _ in 0..count {
                    let edge = eid;
                    ops.push(Op::Send {
                        channel: ack_ch,
                        payload: Box::new(move |_| (edge.0 as u16).to_le_bytes().to_vec()),
                    });
                }
            }
        }

        // 4. Data sends for cross out-edges (credit-gated when acks are
        //    kept).
        for &eid in &out_edges {
            let Some(plan) = self.plans.get(&eid) else {
                continue;
            };
            debug_assert_eq!(plan.src_proc, proc);
            if plan.ack_kept {
                let ack_ch = plan.ack_ch.expect("ack channel");
                ops.push(Op::Recv { channel: ack_ch });
                ops.push(Op::Compute {
                    label: format!("spi:credit:{eid}"),
                    work: Box::new(move |l| {
                        let _ = l.take_from(ack_ch);
                        1
                    }),
                });
            }
            let edge = eid;
            ops.push(Op::Send {
                channel: plan.data_ch,
                payload: Box::new(move |l| l.store.remove(&send_key(edge)).unwrap_or_default()),
            });
        }
        Ok(())
    }
}

struct DecodeInfo {
    edge: EdgeId,
    channel: ChannelId,
    count: u64,
    phase: SpiPhase,
    payload_max: usize,
}

struct ConsumeInfo {
    edge: EdgeId,
    dynamic: bool,
    bytes: usize,
}

struct ProduceInfo {
    edge: EdgeId,
    dynamic: bool,
    exact_bytes: usize,
    bound_bytes: usize,
    cross: bool,
    phase: SpiPhase,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds and runs a 2-proc pipeline with a payload check, returning
    /// the run report.
    fn run_pipeline(iterations: u64) -> SpiRunReport {
        let mut g = SdfGraph::new();
        let src = g.add_actor("src", 20);
        let snk = g.add_actor("snk", 20);
        let e = g.add_edge(src, snk, 1, 1, 0, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(src, move |ctx: &mut Firing| {
            ctx.set_output(e, (ctx.iter as u32).to_le_bytes().to_vec());
            20
        });
        b.actor(snk, move |ctx: &mut Firing| {
            let got = u32::from_le_bytes(ctx.input(e).try_into().expect("4 bytes"));
            assert_eq!(u64::from(got), ctx.iter, "payloads arrive in order");
            20
        });
        b.iterations(iterations);
        let sys = b.build(2, |a| ProcId(a.0)).unwrap();
        sys.run().unwrap()
    }

    #[test]
    fn pipeline_runs_functionally_and_timed() {
        let report = run_pipeline(25);
        // Channel 0 is the data channel; ack traffic lives elsewhere.
        assert_eq!(report.sim.channels[0].messages, 25);
        assert!(report.makespan_us() > 0.0);
        assert!(report.period_us() > 0.0);
    }

    #[test]
    fn missing_actor_impl_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b_ = g.add_actor("B", 1);
        g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, |_: &mut Firing| 1);
        assert!(matches!(
            b.build(1, |_| ProcId(0)),
            Err(SpiError::MissingActorImpl(_))
        ));
    }

    #[test]
    fn dynamic_edge_uses_spi_dynamic_and_transfers_variable_payloads() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 20);
        let b_ = g.add_actor("B", 20);
        let e = g.add_dynamic_edge(a, b_, 16, 16, 0, 1).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            // Variable size: iter mod 17 bytes (0..=16).
            let n = (ctx.iter % 17) as usize;
            ctx.set_output(e, vec![0xAB; n]);
            20
        });
        b.actor(b_, move |ctx: &mut Firing| {
            assert_eq!(ctx.input(e).len(), (ctx.iter % 17) as usize);
            20
        });
        b.iterations(40);
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        let plan = sys.edge_plans()[&e].clone();
        assert_eq!(plan.phase, SpiPhase::Dynamic);
        let data_ch = plan.data_ch;
        let report = sys.run().unwrap();
        assert_eq!(report.sim.channels[data_ch.0].messages, 40);
    }

    #[test]
    fn vts_bound_violation_detected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b_ = g.add_actor("B", 1);
        let e = g.add_dynamic_edge(a, b_, 4, 4, 0, 1).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(e, vec![0; 100]); // exceeds bound 4
            1
        });
        b.actor(b_, |_: &mut Firing| 1);
        b.iterations(1);
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        assert!(matches!(sys.run(), Err(SpiError::ActorFailed { .. })));
    }

    #[test]
    fn static_size_mismatch_detected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b_ = g.add_actor("B", 1);
        let e = g.add_edge(a, b_, 2, 2, 0, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(e, vec![0; 3]); // needs exactly 8
            1
        });
        b.actor(b_, |_: &mut Firing| 1);
        b.iterations(1);
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        let err = sys.run();
        assert!(matches!(err, Err(SpiError::ActorFailed { .. })), "{err:?}");
    }

    #[test]
    fn feedback_edge_gets_bbs_and_pipeline_fill() {
        // A -> B (delay 0), B -> A (delay 1): bounded drift, so the
        // forward edge gets BBS; the feedback edge carries a fill
        // message.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 20);
        let b_ = g.add_actor("B", 20);
        let fwd = g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
        let bwd = g.add_edge(b_, a, 1, 1, 1, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            let prev = ctx.take_input(bwd);
            ctx.set_output(fwd, prev); // echo the fed-back value
            20
        });
        b.actor(b_, move |ctx: &mut Firing| {
            let x = u32::from_le_bytes(ctx.input(fwd).try_into().expect("4B"));
            ctx.set_output(bwd, (x + 1).to_le_bytes().to_vec());
            20
        });
        b.iterations(10);
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        let plans = sys.edge_plans().clone();
        assert!(matches!(plans[&fwd].protocol, Protocol::Bbs { .. }));
        assert!(matches!(plans[&bwd].protocol, Protocol::Bbs { .. }));
        let report = sys.run().unwrap();
        // Counter increments once per iteration through the loop.
        assert_eq!(report.sim.total_messages(), 10 + 10 + 1); // + fill
    }

    #[test]
    fn force_ubs_changes_protocols() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 20);
        let b_ = g.add_actor("B", 20);
        let fwd = g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
        let bwd = g.add_edge(b_, a, 1, 1, 1, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            let x = ctx.take_input(bwd);
            ctx.set_output(fwd, x);
            20
        });
        b.actor(b_, move |ctx: &mut Firing| {
            let x = ctx.take_input(fwd);
            ctx.set_output(bwd, x);
            20
        });
        b.iterations(5);
        b.force_ubs(true);
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        for plan in sys.edge_plans().values() {
            assert!(matches!(plan.protocol, Protocol::Ubs { .. }));
        }
        sys.run().unwrap();
    }

    #[test]
    fn multirate_static_edge_reassembles_tokens() {
        // A produces 2 tokens/firing, B consumes 3: q = [3, 2].
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b_ = g.add_actor("B", 10);
        let e = g.add_edge(a, b_, 2, 3, 0, 1).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            // Global token index = (iter*3 + k)*2 + {0,1}.
            let base = (ctx.iter * 3 + ctx.k) * 2;
            ctx.set_output(e, vec![base as u8, base as u8 + 1]);
            10
        });
        b.actor(b_, move |ctx: &mut Firing| {
            let tokens = ctx.input(e);
            let base = (ctx.iter * 2 + ctx.k) * 3;
            assert_eq!(tokens, &[base as u8, base as u8 + 1, base as u8 + 2]);
            10
        });
        b.iterations(8);
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        let data_ch = sys.edge_plans()[&e].data_ch;
        let report = sys.run().unwrap();
        // 3 producer firings per iteration send 3 messages.
        assert_eq!(report.sim.channels[data_ch.0].messages, 8 * 3);
    }

    #[test]
    fn single_processor_has_no_channels() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b_ = g.add_actor("B", 10);
        let e = g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(e, vec![1, 2, 3, 4]);
            10
        });
        b.actor(b_, move |ctx: &mut Firing| {
            assert_eq!(ctx.input(e), &[1, 2, 3, 4]);
            10
        });
        b.iterations(5);
        let sys = b.build(1, |_| ProcId(0)).unwrap();
        assert!(sys.edge_plans().is_empty());
        let report = sys.run().unwrap();
        assert_eq!(report.sim.total_messages(), 0);
    }

    #[test]
    fn local_delay_edge_primes_queue() {
        // Single-proc accumulator through a delayed self-edge.
        let mut g = SdfGraph::new();
        let a = g.add_actor("acc", 10);
        let e = g.add_edge(a, a, 1, 1, 1, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            let prev = u32::from_le_bytes(ctx.input(e).try_into().expect("4B"));
            ctx.set_output(e, (prev + 1).to_le_bytes().to_vec());
            10
        });
        b.iterations(7);
        let sys = b.build(1, |_| ProcId(0)).unwrap();
        sys.run().unwrap();
    }

    #[test]
    fn split_actor_assignment_rejected() {
        // Multirate actor whose firings HLFET-style land on different
        // processors must be rejected.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b_ = g.add_actor("B", 10);
        g.add_edge(a, b_, 1, 2, 0, 4).unwrap(); // q = [2, 1]
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, |_: &mut Firing| 1);
        b.actor(b_, |_: &mut Firing| 1);
        let pg_probe = std::cell::Cell::new(0usize);
        let result = b.build(2, |_| {
            let i = pg_probe.get();
            pg_probe.set(i + 1);
            ProcId(i % 2)
        });
        // Assignment::by_actor assigns per firing via the actor map — our
        // closure varies per call, splitting actor A.
        assert!(matches!(
            result,
            Err(SpiError::ActorSplitAcrossProcessors(_)) | Ok(_)
        ));
    }

    #[test]
    fn ordered_transactions_run_and_serialize_grants() {
        let build = |ordered: bool| {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 30);
            let b_ = g.add_actor("b", 30);
            let c_ = g.add_actor("c", 30);
            let e1 = g.add_edge(a, b_, 1, 1, 0, 64).unwrap();
            let e2 = g.add_edge(a, c_, 1, 1, 0, 64).unwrap();
            let mut b = SpiSystemBuilder::new(g);
            b.actor(a, move |ctx: &mut Firing| {
                ctx.set_output(e1, vec![1; 64]);
                ctx.set_output(e2, vec![2; 64]);
                30
            });
            b.actor(b_, move |ctx: &mut Firing| {
                assert_eq!(ctx.input(e1)[0], 1);
                30
            });
            b.actor(c_, move |ctx: &mut Firing| {
                assert_eq!(ctx.input(e2)[0], 2);
                30
            });
            b.iterations(12);
            if ordered {
                b.ordered_transactions(1);
            }
            let sys = b.build(3, |x| ProcId(x.0)).unwrap();
            sys.run().unwrap()
        };
        let p2p = build(false);
        let ordered = build(true);
        // Functional identity; ordered serializes the two transfers so it
        // cannot be faster than dedicated wires.
        assert_eq!(p2p.sim.total_messages(), ordered.sim.total_messages());
        assert!(ordered.sim.makespan_cycles >= p2p.sim.makespan_cycles);
    }

    #[test]
    fn software_io_processor_shifts_the_bottleneck() {
        // Hardware/software co-design (paper §5.2): the I/O processor is
        // software. Making it 4× slower must lengthen the period.
        let build = |sw_factor: u64| {
            let mut g = SdfGraph::new();
            let io = g.add_actor("io", 100);
            let hw = g.add_actor("hw", 100);
            let e = g.add_edge(io, hw, 1, 1, 0, 16).unwrap();
            let mut b = SpiSystemBuilder::new(g);
            b.actor(io, move |ctx: &mut Firing| {
                ctx.set_output(e, vec![0; 16]);
                100
            });
            b.actor(hw, |_: &mut Firing| 100);
            b.iterations(20);
            b.processor_speed(ProcId(0), sw_factor, 1);
            let sys = b.build(2, |x| ProcId(x.0)).unwrap();
            sys.run().unwrap().sim.makespan_cycles
        };
        let balanced = build(1);
        let sw_slow = build(4);
        assert!(
            sw_slow > 3 * balanced,
            "balanced {balanced} vs sw {sw_slow}"
        );
    }

    #[test]
    fn build_auto_maps_parallel_stages_apart() {
        // Diamond: B and C independent; auto-mapping on 2 procs should
        // run and deliver the correct results regardless of placement.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 10);
        let b_ = g.add_actor("b", 100);
        let c_ = g.add_actor("c", 100);
        let d_ = g.add_actor("d", 10);
        let ab = g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
        let ac = g.add_edge(a, c_, 1, 1, 0, 4).unwrap();
        let bd = g.add_edge(b_, d_, 1, 1, 0, 4).unwrap();
        let cd = g.add_edge(c_, d_, 1, 1, 0, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(ab, vec![1, 0, 0, 0]);
            ctx.set_output(ac, vec![2, 0, 0, 0]);
            10
        });
        b.actor(b_, move |ctx: &mut Firing| {
            let x = ctx.take_input(ab);
            ctx.set_output(bd, x);
            100
        });
        b.actor(c_, move |ctx: &mut Firing| {
            let x = ctx.take_input(ac);
            ctx.set_output(cd, x);
            100
        });
        b.actor(d_, move |ctx: &mut Firing| {
            assert_eq!(ctx.input(bd)[0], 1);
            assert_eq!(ctx.input(cd)[0], 2);
            10
        });
        b.iterations(10);
        let sys = b.build_auto(2).unwrap();
        sys.run().unwrap();
    }

    #[test]
    fn fully_static_mode_runs_and_is_slower_or_equal() {
        let build = |mode: SchedulingMode| {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 30);
            let b_ = g.add_actor("b", 50);
            let e = g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
            let mut b = SpiSystemBuilder::new(g);
            b.actor(a, move |ctx: &mut Firing| {
                ctx.set_output(e, vec![0; 4]);
                30
            });
            b.actor(b_, |_: &mut Firing| 50);
            b.iterations(20);
            b.scheduling_mode(mode);
            let sys = b.build(2, |x| ProcId(x.0)).unwrap();
            sys.run().unwrap()
        };
        let st = build(SchedulingMode::SelfTimed);
        let fs = build(SchedulingMode::FullyStatic { slack_percent: 20 });
        assert!(fs.sim.makespan_cycles >= st.sim.makespan_cycles);
        // Static releases show up as wait cycles.
        assert!(fs.sim.pe.iter().any(|p| p.wait_cycles > 0));
        assert_eq!(st.sim.pe.iter().map(|p| p.wait_cycles).sum::<u64>(), 0);
    }

    #[test]
    fn fully_static_with_underestimated_costs_stays_correct() {
        // Actors lie about their estimate (declared 10, actually 40):
        // the blocking receives still guarantee functional correctness.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 10);
        let b_ = g.add_actor("b", 10);
        let e = g.add_edge(a, b_, 1, 1, 0, 4).unwrap();
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut Firing| {
            ctx.set_output(e, (ctx.iter as u32).to_le_bytes().to_vec());
            40
        });
        b.actor(b_, move |ctx: &mut Firing| {
            let v = u32::from_le_bytes(ctx.input(e).try_into().expect("4B"));
            assert_eq!(u64::from(v), ctx.iter);
            40
        });
        b.iterations(10);
        b.scheduling_mode(SchedulingMode::FullyStatic { slack_percent: 0 });
        let sys = b.build(2, |x| ProcId(x.0)).unwrap();
        sys.run().unwrap();
    }

    #[test]
    fn edge_traffic_reports_per_edge_stats() {
        let report = run_pipeline(10);
        let (&edge, _) = report.edge_channels.iter().next().expect("one cross edge");
        let stats = report.edge_traffic(edge).expect("cross edge has a channel");
        assert_eq!(stats.messages, 10);
        // 10 messages × (2-byte header + 4-byte payload).
        assert_eq!(stats.bytes, 10 * 6);
        assert_eq!(report.edge_traffic(EdgeId(999)), None);
    }

    #[test]
    fn utilization_is_bounded_and_reflects_load() {
        let report = run_pipeline(50);
        let u = report.utilization();
        assert_eq!(u.len(), 2);
        for &x in &u {
            assert!((0.0..=1.0).contains(&x), "utilization {x}");
        }
        // Both stages do equal work, so utilizations are similar.
        assert!((u[0] - u[1]).abs() < 0.3);
    }

    #[test]
    fn resync_report_present_by_default() {
        let report = run_pipeline(3);
        assert!(report.resync.is_some());
    }

    #[test]
    fn cumulative_messages_rate1() {
        // p=c=1, d=0: M(j) = j+1.
        assert_eq!(cumulative_messages(0, 1, 0, 1), 1);
        assert_eq!(cumulative_messages(4, 1, 0, 1), 5);
        // d=1 shifts by one.
        assert_eq!(cumulative_messages(0, 1, 1, 1), 0);
        assert_eq!(cumulative_messages(-1, 1, 1, 1), -1);
    }

    #[test]
    fn cumulative_messages_multirate() {
        // p=2, c=3, d=1: M(0)=⌈2/2⌉=1, M(1)=⌈5/2⌉=3.
        assert_eq!(cumulative_messages(0, 3, 1, 2), 1);
        assert_eq!(cumulative_messages(1, 3, 1, 2), 3);
        assert_eq!(cumulative_messages(-1, 3, 1, 2), 0);
    }
}

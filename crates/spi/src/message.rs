//! SPI message format (paper §5.1).
//!
//! SPI exploits compile-time knowledge to shrink headers to the minimum:
//!
//! * **SPI_static** — "the message header consists of the ID of the
//!   interprocessor edge only": 2 bytes. The payload length is a
//!   compile-time constant of the edge (rate × token size), so it is not
//!   transmitted.
//! * **SPI_dynamic** — the header "also contains the message size":
//!   2 bytes edge id + 4 bytes payload length.
//!
//! "The message datatype for all communication edges is known at
//! compile-time, and hence need not be included in the message header" —
//! contrast with the 24-byte envelope of the
//! [`spi_platform::MpiEndpoint`] baseline.

use spi_dataflow::EdgeId;

use crate::error::{Result, SpiError};

/// Header size of an SPI_static message.
pub const STATIC_HEADER_BYTES: usize = 2;
/// Header size of an SPI_dynamic message.
pub const DYNAMIC_HEADER_BYTES: usize = 6;

/// Which SPI interface phase an edge uses (paper §5.1's two-phase
/// interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpiPhase {
    /// Compile-time-known transfer sizes (SPI_static).
    Static,
    /// Run-time-varying transfer sizes under a VTS bound (SPI_dynamic).
    Dynamic,
}

/// Frames `payload` as an SPI_static message for `edge`.
///
/// # Errors
///
/// [`SpiError::Message`] if the edge id exceeds `u16::MAX` — SPI systems
/// index edges compactly, and 65 536 inter-processor edges is far
/// outside the supported envelope.
pub fn encode_static(edge: EdgeId, payload: &[u8]) -> Result<Vec<u8>> {
    let id = header_edge_id(edge)?;
    let mut msg = Vec::with_capacity(STATIC_HEADER_BYTES + payload.len());
    msg.extend_from_slice(&id.to_le_bytes());
    msg.extend_from_slice(payload);
    Ok(msg)
}

/// Total framed size of an SPI_static message carrying `payload_len`
/// bytes.
pub fn static_frame_bytes(payload_len: usize) -> usize {
    STATIC_HEADER_BYTES + payload_len
}

/// Frames `payload` as an SPI_static message directly into `buf`
/// (typically a transport ring slot), returning the framed length. No
/// heap allocation.
///
/// # Errors
///
/// [`SpiError::Message`] if the edge id exceeds `u16::MAX` or `buf` is
/// smaller than the framed message.
pub fn encode_static_into(edge: EdgeId, payload: &[u8], buf: &mut [u8]) -> Result<usize> {
    let id = header_edge_id(edge)?;
    let total = static_frame_bytes(payload.len());
    if buf.len() < total {
        return Err(SpiError::Message {
            reason: format!(
                "static frame of {total} bytes does not fit buffer of {}",
                buf.len()
            ),
        });
    }
    buf[..STATIC_HEADER_BYTES].copy_from_slice(&id.to_le_bytes());
    buf[STATIC_HEADER_BYTES..total].copy_from_slice(payload);
    Ok(total)
}

/// Narrows an edge id to the 2-byte header field.
fn header_edge_id(edge: EdgeId) -> Result<u16> {
    u16::try_from(edge.0).map_err(|_| SpiError::Message {
        reason: format!(
            "edge id {edge} exceeds the 2-byte header field (max {})",
            u16::MAX
        ),
    })
}

/// Decodes an SPI_static message, checking it belongs to `expect_edge`
/// and carries exactly `expect_len` payload bytes.
///
/// # Errors
///
/// [`SpiError::Message`] on truncation, edge-id mismatch, or length
/// mismatch.
pub fn decode_static(msg: &[u8], expect_edge: EdgeId, expect_len: usize) -> Result<Vec<u8>> {
    decode_static_borrowed(msg, expect_edge, expect_len).map(<[u8]>::to_vec)
}

/// Borrowed variant of [`decode_static`]: the same validation, but the
/// returned payload is a view into `msg` — no allocation, no copy. With
/// a pooled transport the slice points straight into the shared slot
/// the sender wrote (the paper's pointer-exchange read path).
///
/// # Errors
///
/// As [`decode_static`].
pub fn decode_static_borrowed(msg: &[u8], expect_edge: EdgeId, expect_len: usize) -> Result<&[u8]> {
    if msg.len() < STATIC_HEADER_BYTES {
        return Err(SpiError::Message {
            reason: format!("static header truncated: {} bytes", msg.len()),
        });
    }
    let id = u16::from_le_bytes([msg[0], msg[1]]) as usize;
    if id != expect_edge.0 {
        return Err(SpiError::Message {
            reason: format!("edge id {id} does not match expected {expect_edge}"),
        });
    }
    let payload = &msg[STATIC_HEADER_BYTES..];
    if payload.len() != expect_len {
        return Err(SpiError::Message {
            reason: format!(
                "static payload is {} bytes, edge {expect_edge} requires {expect_len}",
                payload.len()
            ),
        });
    }
    Ok(payload)
}

/// Frames `payload` as an SPI_dynamic message for `edge`.
///
/// # Errors
///
/// [`SpiError::Message`] if the edge id exceeds `u16::MAX` or the
/// payload exceeds the 4-byte size field (`u32::MAX` bytes).
pub fn encode_dynamic(edge: EdgeId, payload: &[u8]) -> Result<Vec<u8>> {
    let id = header_edge_id(edge)?;
    let len = u32::try_from(payload.len()).map_err(|_| SpiError::Message {
        reason: format!(
            "payload of {} bytes exceeds the 4-byte size field (max {})",
            payload.len(),
            u32::MAX
        ),
    })?;
    let mut msg = Vec::with_capacity(DYNAMIC_HEADER_BYTES + payload.len());
    msg.extend_from_slice(&id.to_le_bytes());
    msg.extend_from_slice(&len.to_le_bytes());
    msg.extend_from_slice(payload);
    Ok(msg)
}

/// Total framed size of an SPI_dynamic message carrying `payload_len`
/// bytes.
pub fn dynamic_frame_bytes(payload_len: usize) -> usize {
    DYNAMIC_HEADER_BYTES + payload_len
}

/// Frames `payload` as an SPI_dynamic message directly into `buf`
/// (typically a transport ring slot), returning the framed length. No
/// heap allocation.
///
/// # Errors
///
/// As [`encode_dynamic`], plus [`SpiError::Message`] when `buf` is
/// smaller than the framed message.
pub fn encode_dynamic_into(edge: EdgeId, payload: &[u8], buf: &mut [u8]) -> Result<usize> {
    let id = header_edge_id(edge)?;
    let len = u32::try_from(payload.len()).map_err(|_| SpiError::Message {
        reason: format!(
            "payload of {} bytes exceeds the 4-byte size field (max {})",
            payload.len(),
            u32::MAX
        ),
    })?;
    let total = dynamic_frame_bytes(payload.len());
    if buf.len() < total {
        return Err(SpiError::Message {
            reason: format!(
                "dynamic frame of {total} bytes does not fit buffer of {}",
                buf.len()
            ),
        });
    }
    buf[..2].copy_from_slice(&id.to_le_bytes());
    buf[2..DYNAMIC_HEADER_BYTES].copy_from_slice(&len.to_le_bytes());
    buf[DYNAMIC_HEADER_BYTES..total].copy_from_slice(payload);
    Ok(total)
}

/// Decodes an SPI_dynamic message, checking the edge id and the VTS
/// bound.
///
/// # Errors
///
/// [`SpiError::Message`] on truncation or id mismatch;
/// [`SpiError::VtsBoundExceeded`] if the size field exceeds `bound`.
pub fn decode_dynamic(msg: &[u8], expect_edge: EdgeId, bound: usize) -> Result<Vec<u8>> {
    decode_dynamic_borrowed(msg, expect_edge, bound).map(<[u8]>::to_vec)
}

/// Borrowed variant of [`decode_dynamic`]: the same validation
/// (including the VTS bound), returning a view into `msg` instead of a
/// copy.
///
/// # Errors
///
/// As [`decode_dynamic`].
pub fn decode_dynamic_borrowed(msg: &[u8], expect_edge: EdgeId, bound: usize) -> Result<&[u8]> {
    if msg.len() < DYNAMIC_HEADER_BYTES {
        return Err(SpiError::Message {
            reason: format!("dynamic header truncated: {} bytes", msg.len()),
        });
    }
    let id = u16::from_le_bytes([msg[0], msg[1]]) as usize;
    if id != expect_edge.0 {
        return Err(SpiError::Message {
            reason: format!("edge id {id} does not match expected {expect_edge}"),
        });
    }
    let len = u32::from_le_bytes([msg[2], msg[3], msg[4], msg[5]]) as usize;
    if len > bound {
        return Err(SpiError::VtsBoundExceeded {
            edge: expect_edge,
            got: len,
            bound,
        });
    }
    if msg.len() < DYNAMIC_HEADER_BYTES + len {
        return Err(SpiError::Message {
            reason: format!(
                "dynamic payload truncated: have {}, need {len}",
                msg.len() - DYNAMIC_HEADER_BYTES
            ),
        });
    }
    Ok(&msg[DYNAMIC_HEADER_BYTES..DYNAMIC_HEADER_BYTES + len])
}

/// Header size for a phase.
pub fn header_bytes(phase: SpiPhase) -> usize {
    match phase {
        SpiPhase::Static => STATIC_HEADER_BYTES,
        SpiPhase::Dynamic => DYNAMIC_HEADER_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_roundtrip() {
        let payload = vec![1, 2, 3, 4];
        let msg = encode_static(EdgeId(7), &payload).unwrap();
        assert_eq!(msg.len(), 2 + 4);
        let back = decode_static(&msg, EdgeId(7), 4).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn static_rejects_wrong_edge() {
        let msg = encode_static(EdgeId(7), &[0; 4]).unwrap();
        assert!(decode_static(&msg, EdgeId(8), 4).is_err());
    }

    #[test]
    fn static_rejects_wrong_length() {
        let msg = encode_static(EdgeId(7), &[0; 4]).unwrap();
        assert!(decode_static(&msg, EdgeId(7), 8).is_err());
        assert!(decode_static(&[1], EdgeId(7), 0).is_err());
    }

    #[test]
    fn dynamic_roundtrip_various_sizes() {
        for n in [0usize, 1, 17, 255] {
            let payload = vec![0xAB; n];
            let msg = encode_dynamic(EdgeId(3), &payload).unwrap();
            assert_eq!(msg.len(), 6 + n);
            let back = decode_dynamic(&msg, EdgeId(3), 255).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn dynamic_enforces_vts_bound() {
        let msg = encode_dynamic(EdgeId(3), &[0; 100]).unwrap();
        assert!(matches!(
            decode_dynamic(&msg, EdgeId(3), 50),
            Err(SpiError::VtsBoundExceeded {
                got: 100,
                bound: 50,
                ..
            })
        ));
    }

    #[test]
    fn dynamic_detects_truncation() {
        let msg = encode_dynamic(EdgeId(3), &[0; 10]).unwrap();
        assert!(decode_dynamic(&msg[..8], EdgeId(3), 100).is_err());
        assert!(decode_dynamic(&msg[..3], EdgeId(3), 100).is_err());
    }

    #[test]
    fn encode_rejects_oversized_edge_id() {
        let too_big = EdgeId(usize::from(u16::MAX) + 1);
        assert!(matches!(
            encode_static(too_big, &[0; 4]),
            Err(SpiError::Message { .. })
        ));
        assert!(matches!(
            encode_dynamic(too_big, &[0; 4]),
            Err(SpiError::Message { .. })
        ));
        // The largest representable id still frames fine.
        assert!(encode_static(EdgeId(usize::from(u16::MAX)), &[]).is_ok());
    }

    #[test]
    fn in_place_encoders_match_owning_encoders() {
        let payload = vec![9u8, 8, 7, 6, 5];
        let mut buf = [0u8; 32];
        let n = encode_static_into(EdgeId(7), &payload, &mut buf).unwrap();
        assert_eq!(n, static_frame_bytes(payload.len()));
        assert_eq!(&buf[..n], &encode_static(EdgeId(7), &payload).unwrap()[..]);
        let n = encode_dynamic_into(EdgeId(7), &payload, &mut buf).unwrap();
        assert_eq!(n, dynamic_frame_bytes(payload.len()));
        assert_eq!(&buf[..n], &encode_dynamic(EdgeId(7), &payload).unwrap()[..]);
    }

    #[test]
    fn in_place_encoders_reject_short_buffers() {
        let mut buf = [0u8; 4];
        assert!(encode_static_into(EdgeId(1), &[0; 4], &mut buf).is_err());
        assert!(encode_dynamic_into(EdgeId(1), &[0; 4], &mut buf).is_err());
        // Exactly-sized buffers work.
        let mut exact = [0u8; 6];
        assert!(encode_static_into(EdgeId(1), &[0; 4], &mut exact).is_ok());
    }

    #[test]
    fn borrowed_decoders_return_views_into_the_frame() {
        let payload = vec![1u8, 2, 3, 4];
        let msg = encode_static(EdgeId(5), &payload).unwrap();
        let view = decode_static_borrowed(&msg, EdgeId(5), 4).unwrap();
        assert_eq!(view, &payload[..]);
        // The view aliases the frame buffer — no copy happened.
        assert_eq!(view.as_ptr(), msg[STATIC_HEADER_BYTES..].as_ptr());

        let msg = encode_dynamic(EdgeId(5), &payload).unwrap();
        let view = decode_dynamic_borrowed(&msg, EdgeId(5), 16).unwrap();
        assert_eq!(view, &payload[..]);
        assert_eq!(view.as_ptr(), msg[DYNAMIC_HEADER_BYTES..].as_ptr());
    }

    #[test]
    fn borrowed_decoders_validate_like_owning_decoders() {
        let msg = encode_static(EdgeId(2), &[0; 4]).unwrap();
        assert!(decode_static_borrowed(&msg, EdgeId(3), 4).is_err());
        assert!(decode_static_borrowed(&msg, EdgeId(2), 5).is_err());
        assert!(decode_static_borrowed(&msg[..1], EdgeId(2), 4).is_err());

        let msg = encode_dynamic(EdgeId(2), &[0; 100]).unwrap();
        assert!(matches!(
            decode_dynamic_borrowed(&msg, EdgeId(2), 50),
            Err(SpiError::VtsBoundExceeded { .. })
        ));
        assert!(decode_dynamic_borrowed(&msg[..8], EdgeId(2), 100).is_err());
    }

    #[test]
    fn headers_are_much_smaller_than_mpi_envelopes() {
        // Computed through a function so the comparison stays a runtime
        // check (clippy: assertions_on_constants).
        let ratio = |h: usize| spi_platform::ENVELOPE_BYTES / h;
        assert!(ratio(header_bytes(SpiPhase::Static)) >= 8);
        assert!(ratio(header_bytes(SpiPhase::Dynamic)) >= 4);
        assert_eq!(header_bytes(SpiPhase::Static), 2);
        assert_eq!(header_bytes(SpiPhase::Dynamic), 6);
    }
}

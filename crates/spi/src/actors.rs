//! Actor implementations and the firing context.
//!
//! SPI separates *communication* from *computation* (paper §1: the
//! library's "special modules ensure that the communication part of a
//! system is completely separated from the computation part"). The
//! computation side is expressed by implementing [`ActorFire`]: one call
//! per firing, reading exact per-edge inputs and producing exact per-edge
//! outputs. Everything about how those bytes travel — headers, packing,
//! protocols, acknowledgements — is the SPI system's concern, invisible
//! here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use spi_dataflow::EdgeId;

/// Per-firing context handed to an actor implementation.
#[derive(Debug, Default)]
pub struct Firing {
    /// Graph iteration this firing belongs to.
    pub iter: u64,
    /// Index of this firing within the actor's repetitions (0-based).
    pub k: u64,
    inputs: HashMap<EdgeId, Vec<u8>>,
    outputs: HashMap<EdgeId, Vec<u8>>,
}

impl Firing {
    /// Creates a context with the given consumed inputs.
    pub fn new(iter: u64, k: u64, inputs: HashMap<EdgeId, Vec<u8>>) -> Self {
        Firing {
            iter,
            k,
            inputs,
            outputs: HashMap::new(),
        }
    }

    /// The bytes consumed from `edge` this firing.
    ///
    /// For a static edge this is exactly `consume_rate × token_bytes`;
    /// for a dynamic (VTS) edge it is one packed token of variable size.
    pub fn input(&self, edge: EdgeId) -> &[u8] {
        self.inputs.get(&edge).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Takes ownership of the input bytes of `edge` (avoiding a copy).
    pub fn take_input(&mut self, edge: EdgeId) -> Vec<u8> {
        self.inputs.remove(&edge).unwrap_or_default()
    }

    /// Sets the bytes produced on `edge` this firing.
    ///
    /// Static edges must produce exactly `produce_rate × token_bytes`;
    /// dynamic edges at most their VTS bound. Violations surface as
    /// [`crate::SpiError::StaticSizeMismatch`] /
    /// [`crate::SpiError::VtsBoundExceeded`] when the system runs.
    pub fn set_output(&mut self, edge: EdgeId, bytes: Vec<u8>) {
        self.outputs.insert(edge, bytes);
    }

    /// The output staged for `edge`, if any.
    pub fn output(&self, edge: EdgeId) -> Option<&[u8]> {
        self.outputs.get(&edge).map(Vec::as_slice)
    }

    pub(crate) fn into_outputs(self) -> HashMap<EdgeId, Vec<u8>> {
        self.outputs
    }
}

/// One dataflow actor's computation: called once per firing.
///
/// Implementations return the firing's cycle cost (its contribution to
/// simulated time). State held in `self` persists across firings —
/// that is how stateful actors (accumulators, filters) are expressed.
///
/// A plain `FnMut(&mut Firing) -> u64` closure works via the blanket
/// impl.
pub trait ActorFire: Send {
    /// Performs one firing and returns its cost in cycles.
    fn fire(&mut self, ctx: &mut Firing) -> u64;
}

impl<F> ActorFire for F
where
    F: FnMut(&mut Firing) -> u64 + Send,
{
    fn fire(&mut self, ctx: &mut Firing) -> u64 {
        self(ctx)
    }
}

/// Shared handle to an actor implementation.
///
/// Firings of one actor may be scheduled onto different processors, and
/// the threaded runner executes processors on OS threads, so the
/// implementation is shared behind `Arc<Mutex<…>>`.
pub type SharedActor = Arc<Mutex<Box<dyn ActorFire>>>;

/// Wraps an implementation into a [`SharedActor`].
pub fn share(actor: impl ActorFire + 'static) -> SharedActor {
    Arc::new(Mutex::new(Box::new(actor)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_actor_impls() {
        let mut calls = 0u64;
        let mut actor = move |_ctx: &mut Firing| {
            calls += 1;
            calls * 10
        };
        let mut ctx = Firing::default();
        assert_eq!(ActorFire::fire(&mut actor, &mut ctx), 10);
        assert_eq!(ActorFire::fire(&mut actor, &mut ctx), 20);
    }

    #[test]
    fn firing_io_roundtrip() {
        let mut inputs = HashMap::new();
        inputs.insert(EdgeId(0), vec![1, 2, 3]);
        let mut ctx = Firing::new(5, 1, inputs);
        assert_eq!(ctx.iter, 5);
        assert_eq!(ctx.k, 1);
        assert_eq!(ctx.input(EdgeId(0)), &[1, 2, 3]);
        assert_eq!(ctx.input(EdgeId(9)), &[] as &[u8]);
        ctx.set_output(EdgeId(1), vec![9, 9]);
        assert_eq!(ctx.output(EdgeId(1)), Some(&[9u8, 9][..]));
        let outs = ctx.into_outputs();
        assert_eq!(outs[&EdgeId(1)], vec![9, 9]);
    }

    #[test]
    fn take_input_moves_bytes() {
        let mut inputs = HashMap::new();
        inputs.insert(EdgeId(0), vec![7; 100]);
        let mut ctx = Firing::new(0, 0, inputs);
        let data = ctx.take_input(EdgeId(0));
        assert_eq!(data.len(), 100);
        assert!(ctx.input(EdgeId(0)).is_empty());
    }

    #[test]
    fn shared_actor_is_send_and_clonable() {
        fn assert_send<T: Send>() {}
        assert_send::<SharedActor>();
        let a = share(|_: &mut Firing| 1);
        let b = Arc::clone(&a);
        let mut ctx = Firing::default();
        assert_eq!(a.lock().unwrap().fire(&mut ctx), 1);
        assert_eq!(b.lock().unwrap().fire(&mut ctx), 1);
    }
}

//! Error type for the SPI library.

use std::fmt;

use spi_dataflow::{ActorId, DataflowError, EdgeId};
use spi_platform::PlatformError;
use spi_sched::SchedError;

/// Errors from building or running an SPI system.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpiError {
    /// An underlying dataflow analysis failed.
    Dataflow(DataflowError),
    /// Scheduling or synchronization analysis failed.
    Sched(SchedError),
    /// The platform simulation failed.
    Platform(PlatformError),
    /// An actor has no registered implementation.
    MissingActorImpl(ActorId),
    /// Firings of one actor were assigned to different processors; SPI
    /// channels are point-to-point per edge, so each actor must live on
    /// exactly one processor (model data-parallel stages as distinct
    /// actors, as the paper's applications do).
    ActorSplitAcrossProcessors(ActorId),
    /// A run completed but an actor implementation reported a failure.
    ActorFailed {
        /// The diagnostic recorded during simulation.
        message: String,
    },
    /// A message failed to decode (wrong edge id, truncated header…).
    Message {
        /// What went wrong.
        reason: String,
    },
    /// A static edge produced a payload whose size does not match its
    /// declared rate × token size.
    StaticSizeMismatch {
        /// The edge.
        edge: EdgeId,
        /// Bytes the actor produced.
        got: usize,
        /// Bytes the static rate requires.
        expected: usize,
    },
    /// A dynamic edge produced a payload exceeding its VTS bound.
    VtsBoundExceeded {
        /// The edge.
        edge: EdgeId,
        /// Bytes the actor produced.
        got: usize,
        /// The declared bound.
        bound: usize,
    },
    /// The static pre-flight analysis found error-severity diagnostics;
    /// the system was not built. Each diagnostic explains one defect.
    Analysis {
        /// Error-severity diagnostics, most severe first.
        diagnostics: Vec<spi_analyze::Diagnostic>,
    },
}

impl fmt::Display for SpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiError::Dataflow(e) => write!(f, "dataflow analysis failed: {e}"),
            SpiError::Sched(e) => write!(f, "scheduling failed: {e}"),
            SpiError::Platform(e) => write!(f, "platform simulation failed: {e}"),
            SpiError::MissingActorImpl(a) => {
                write!(f, "actor {a} has no registered implementation")
            }
            SpiError::ActorSplitAcrossProcessors(a) => {
                write!(f, "actor {a} has firings on multiple processors")
            }
            SpiError::ActorFailed { message } => {
                write!(f, "actor implementation failed: {message}")
            }
            SpiError::Message { reason } => write!(f, "message decode failed: {reason}"),
            SpiError::StaticSizeMismatch {
                edge,
                got,
                expected,
            } => write!(
                f,
                "static edge {edge} produced {got} bytes, rate requires {expected}"
            ),
            SpiError::VtsBoundExceeded { edge, got, bound } => write!(
                f,
                "dynamic edge {edge} produced {got} bytes, exceeding the VTS bound {bound}"
            ),
            SpiError::Analysis { diagnostics } => {
                write!(f, "static analysis found {} error(s):", diagnostics.len())?;
                for d in diagnostics {
                    write!(f, "\n{}", d.render_human())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiError::Dataflow(e) => Some(e),
            SpiError::Sched(e) => Some(e),
            SpiError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataflowError> for SpiError {
    fn from(e: DataflowError) -> Self {
        SpiError::Dataflow(e)
    }
}

impl From<SchedError> for SpiError {
    fn from(e: SchedError) -> Self {
        SpiError::Sched(e)
    }
}

impl From<PlatformError> for SpiError {
    fn from(e: PlatformError) -> Self {
        SpiError::Platform(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_chain_sources() {
        use std::error::Error;
        let e: SpiError = DataflowError::EmptyGraph.into();
        assert!(e.source().is_some());
        let e: SpiError = SchedError::NoProcessors.into();
        assert!(e.to_string().contains("scheduling"));
        let e = SpiError::MissingActorImpl(ActorId(3));
        assert!(e.source().is_none());
        assert!(e.to_string().contains("a3"));
    }
}

//! The SPI "HDL library" resource report (paper §5.1, tables 1–2).
//!
//! The paper's FPGA library consists of `SPI_init`, `SPI_send` and
//! `SPI_receive` modules for both interface phases, plus the IPC FIFOs.
//! This module aggregates their [`ResourceEstimate`]s for a lowered
//! system and reports the SPI library's share of the full design — the
//! exact quantity tables 1 and 2 present.

use std::collections::HashMap;

use spi_dataflow::{ActorId, EdgeId};
use spi_platform::{components, Device, ResourceEstimate, ResourcePercent};
use spi_sched::ProcId;

use crate::message::SpiPhase;
use crate::system::EdgePlan;

/// Aggregated hardware cost of a lowered SPI system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpiLibraryReport {
    /// Area of the SPI library alone (send/receive/init actors, IPC
    /// FIFOs, ack paths).
    pub spi_library: ResourceEstimate,
    /// Area of the application actors (computation).
    pub application: ResourceEstimate,
}

impl SpiLibraryReport {
    /// Builds the report from the lowered edge plans, the processor map
    /// and per-actor application resources.
    pub(crate) fn for_system(
        plans: &HashMap<EdgeId, EdgePlan>,
        actor_proc: &HashMap<ActorId, ProcId>,
        actor_resources: &HashMap<ActorId, ResourceEstimate>,
    ) -> Self {
        let mut spi = ResourceEstimate::ZERO;
        for plan in plans.values() {
            // Send/receive actor pair.
            spi += match plan.phase {
                SpiPhase::Static => {
                    components::spi_send_static() + components::spi_receive_static()
                }
                SpiPhase::Dynamic => {
                    components::spi_send_dynamic() + components::spi_receive_dynamic()
                }
            };
            // The IPC FIFO sized by the plan. For UBS we charge the
            // FIFO actually instantiated (credit-bounded working set),
            // not the nominal "unbounded" capacity.
            let fifo_bytes = match plan.protocol {
                spi_sched::Protocol::Bbs { capacity } => capacity.max(1) * plan.payload_max as u64,
                spi_sched::Protocol::Ubs { ack_window } => {
                    (ack_window + 1) * plan.payload_max as u64
                }
            };
            spi += components::ipc_fifo(fifo_bytes);
            // Ack path (a static send/receive mini-pair + tiny FIFO).
            if plan.ack_kept {
                spi += components::spi_send_static() + components::spi_receive_static();
                spi += components::ipc_fifo(16);
            }
        }
        // One SPI_init per processor that terminates at least one edge.
        let mut procs: Vec<ProcId> = plans
            .values()
            .flat_map(|p| [p.src_proc, p.dst_proc])
            .collect();
        procs.sort();
        procs.dedup();
        spi += components::spi_init() * procs.len() as u64;

        let application: ResourceEstimate = actor_proc
            .keys()
            .filter_map(|a| actor_resources.get(a))
            .copied()
            .sum();

        SpiLibraryReport {
            spi_library: spi,
            application,
        }
    }

    /// Total system area (application + SPI library).
    pub fn full_system(&self) -> ResourceEstimate {
        self.spi_library + self.application
    }

    /// SPI library share of the full system, per category (the
    /// "SPI library (relative to full system)" rows of tables 1–2).
    pub fn spi_share(&self) -> ResourcePercent {
        self.spi_library.percent_of(&self.full_system())
    }

    /// Full-system utilization on `device` (the "Full system" rows).
    pub fn device_utilization(&self, device: &Device) -> ResourcePercent {
        device.utilization(&self.full_system())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_platform::ChannelId;
    use spi_sched::Protocol;

    fn plan(edge: usize, phase: SpiPhase, ack: bool) -> EdgePlan {
        EdgePlan {
            edge: EdgeId(edge),
            phase,
            payload_max: 128,
            src_proc: ProcId(0),
            dst_proc: ProcId(1),
            bound_tokens: Some(2),
            bound_msgs: Some(3),
            protocol: if ack {
                Protocol::Ubs { ack_window: 1 }
            } else {
                Protocol::Bbs { capacity: 2 }
            },
            ack_kept: ack,
            data_ch: ChannelId(0),
            ack_ch: None,
        }
    }

    #[test]
    fn spi_share_is_small_when_application_dominates() {
        let mut plans = HashMap::new();
        plans.insert(EdgeId(0), plan(0, SpiPhase::Static, false));
        let mut actor_proc = HashMap::new();
        actor_proc.insert(ActorId(0), ProcId(0));
        actor_proc.insert(ActorId(1), ProcId(1));
        let mut res = HashMap::new();
        res.insert(ActorId(0), components::fft_core(1024));
        res.insert(ActorId(1), components::lu_solver(32));
        let report = SpiLibraryReport::for_system(&plans, &actor_proc, &res);
        let share = report.spi_share();
        assert!(share.slices < 20.0, "SPI share should be small: {share}");
        assert!(share.slices > 0.0);
    }

    #[test]
    fn dynamic_edges_cost_more_than_static() {
        let mut static_plans = HashMap::new();
        static_plans.insert(EdgeId(0), plan(0, SpiPhase::Static, false));
        let mut dynamic_plans = HashMap::new();
        dynamic_plans.insert(EdgeId(0), plan(0, SpiPhase::Dynamic, false));
        let empty_map = HashMap::new();
        let empty_res = HashMap::new();
        let s = SpiLibraryReport::for_system(&static_plans, &empty_map, &empty_res);
        let d = SpiLibraryReport::for_system(&dynamic_plans, &empty_map, &empty_res);
        assert!(d.spi_library.slices > s.spi_library.slices);
    }

    #[test]
    fn kept_acks_add_area() {
        let mut without = HashMap::new();
        without.insert(EdgeId(0), plan(0, SpiPhase::Static, false));
        let mut with = HashMap::new();
        with.insert(EdgeId(0), plan(0, SpiPhase::Static, true));
        let empty_map = HashMap::new();
        let empty_res = HashMap::new();
        let a = SpiLibraryReport::for_system(&without, &empty_map, &empty_res);
        let b = SpiLibraryReport::for_system(&with, &empty_map, &empty_res);
        assert!(b.spi_library.slices > a.spi_library.slices);
    }

    #[test]
    fn device_utilization_uses_full_system() {
        let mut plans = HashMap::new();
        plans.insert(EdgeId(0), plan(0, SpiPhase::Static, false));
        let mut actor_proc = HashMap::new();
        actor_proc.insert(ActorId(0), ProcId(0));
        let mut res = HashMap::new();
        res.insert(ActorId(0), components::particle_filter_pe(150));
        let report = SpiLibraryReport::for_system(&plans, &actor_proc, &res);
        let dev = Device::virtex4_sx35();
        let u = report.device_utilization(&dev);
        assert!(u.slices > 0.0 && u.slices < 100.0);
    }
}

//! # spi — the Signal Passing Interface
//!
//! Reproduction of the framework presented in *"An Optimized Message
//! Passing Framework for Parallel Implementation of Signal Processing
//! Applications"* (DATE 2008): a message-passing interface that fuses
//! MPI-style explicit communication with coarse-grain dataflow analysis,
//! specialized for embedded signal processing.
//!
//! The flow, end to end:
//!
//! 1. model the application as a [`spi_dataflow::SdfGraph`] (dynamic-rate
//!    edges welcome — they go through **VTS conversion**, paper §3);
//! 2. register an implementation per actor ([`ActorFire`]);
//! 3. [`SpiSystemBuilder::build`] schedules the graph self-timed onto `n`
//!    processors, classifies every inter-processor edge as **SPI_BBS**
//!    (bounded buffer, eq. 2) or **SPI_UBS** (credit/ack based), runs
//!    **resynchronization** (§4.1) to delete redundant acknowledgements,
//!    and lowers the system onto the simulated FPGA platform with
//!    2-byte (static) / 6-byte (dynamic) message headers (§5.1);
//! 4. [`SpiSystem::run`] executes functionally *and* cycle-timed,
//!    returning traffic, timing and resource reports — the raw material
//!    for every figure and table in the paper.
//!
//! # Examples
//!
//! See [`SpiSystemBuilder`] for a complete two-processor pipeline, and
//! the `spi-apps` crate for the paper's two evaluation applications.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod actors;
mod error;
mod library;
mod message;
mod system;

pub use actors::{share, ActorFire, Firing, SharedActor};
pub use error::{Result, SpiError};
pub use library::SpiLibraryReport;
pub use message::{
    decode_dynamic, decode_dynamic_borrowed, decode_static, decode_static_borrowed,
    dynamic_frame_bytes, encode_dynamic, encode_dynamic_into, encode_static, encode_static_into,
    header_bytes, static_frame_bytes, SpiPhase, DYNAMIC_HEADER_BYTES, STATIC_HEADER_BYTES,
};
pub use system::{
    BufferRow, EdgePlan, SchedulingMode, SpiRunReport, SpiSystem, SpiSystemBuilder, ACK_BYTES,
};

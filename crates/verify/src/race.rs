//! Vector-clock happens-before checking over `spi-trace` captures.
//!
//! The checker replays a [`Trace`] and reconstructs the cross-PE
//! partial order the run actually exhibited:
//!
//! * **program order** — events of one PE in trace order;
//! * **communication order** — the k-th `Recv` on a channel
//!   happens-after the k-th `Send` on that channel (FIFO transports).
//!   This covers both data channels (the IPC edges of the paper's
//!   `G_ipc`) and ack/control channels (the materialized
//!   synchronization edges of `G_s`), so the reconstruction *is* the
//!   runtime image of the synchronization graph.
//!
//! Every event gets a vector clock over PEs; two events are ordered
//! iff one's clock is componentwise ≤ the other's at the owner index.
//! Violations are reported as stable diagnostics:
//!
//! | code   | severity | meaning |
//! |--------|----------|---------|
//! | SPI100 | error    | a receive was observed before its matching send (causally inconsistent linearization) |
//! | SPI101 | error    | concurrent (unordered) sends on one channel from different PEs — producer endpoint race |
//! | SPI102 | error    | concurrent (unordered) receives on one channel from different PEs — consumer endpoint race |
//! | SPI103 | error    | slot-reuse ordering violated: send `n+B` observed before receive `n` on a `B`-token-bounded channel (eq. (2) window) |
//! | SPI104 | warning  | block/unblock events unpaired — blocking instrumentation incomplete, reconstruction may miss sync edges |
//! | SPI105 | warning  | channel endpoint shared by more than one PE (ordered, so not a race, but outside SPI's point-to-point contract) |
//! | SPI106 | warning  | the capture dropped events; the race check ran on a partial stream |
//!
//! A run that is well-synchronized under the SPI protocol stack — each
//! edge point-to-point, buffers sized to eq. (2), blocking via the
//! transport — produces an empty report.

use std::collections::HashMap;

use spi_analyze::{Diagnostic, Locus, Severity};
use spi_trace::{ProbeKind, Trace};

/// Outcome of [`race_check`].
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Diagnostics (SPI100–SPI106), most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Events replayed.
    pub events: usize,
    /// Channels with at least one send or receive.
    pub channels: usize,
    /// Cross-PE happens-before edges reconstructed (matched pairs).
    pub hb_edges: usize,
}

impl RaceReport {
    /// Whether any error-severity diagnostic fired.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders every diagnostic plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_human());
            out.push('\n');
        }
        out.push_str(&format!(
            "race-check: {} events, {} channels, {} happens-before edges, {} diagnostics\n",
            self.events,
            self.channels,
            self.hb_edges,
            self.diagnostics.len()
        ));
        out
    }
}

#[derive(Clone, Debug)]
struct EventRec {
    pe: usize,
    ts: u64,
    /// Vector clock at (and including) this event.
    vc: Vec<u64>,
}

#[derive(Default)]
struct ChanState {
    sends: Vec<EventRec>,
    recvs: Vec<EventRec>,
}

/// Replays `trace` and checks the reconstructed happens-before order.
/// See the module docs for the diagnostic table.
pub fn race_check(trace: &Trace) -> RaceReport {
    let mut diagnostics = Vec::new();
    let n_pes = trace
        .events
        .iter()
        .map(|e| e.pe.0 + 1)
        .max()
        .unwrap_or(0)
        .max(1);

    // Pre-index sends per channel (trace order) so a receive can tell
    // "my send comes later" (SPI100) apart from "my send never comes"
    // (a conservation problem, SPI085's domain in trace-check).
    let mut total_sends: HashMap<usize, usize> = HashMap::new();
    for e in &trace.events {
        if let ProbeKind::Send { channel, .. } = e.kind {
            *total_sends.entry(channel.0).or_insert(0) += 1;
        }
    }

    let mut clock: Vec<Vec<u64>> = vec![vec![0; n_pes]; n_pes];
    let mut chans: HashMap<usize, ChanState> = HashMap::new();
    let mut hb_edges = 0usize;
    // (pe, channel) -> open block depth, per direction.
    let mut open_send_blocks: HashMap<(usize, usize), i64> = HashMap::new();
    let mut open_recv_blocks: HashMap<(usize, usize), i64> = HashMap::new();
    let mut spi104 = Vec::new();

    for ev in &trace.events {
        let pe = ev.pe.0;
        clock[pe][pe] += 1;
        match ev.kind {
            ProbeKind::Send { channel, .. } => {
                let st = chans.entry(channel.0).or_default();
                st.sends.push(EventRec {
                    pe,
                    ts: ev.ts,
                    vc: clock[pe].clone(),
                });
            }
            ProbeKind::Recv { channel, .. } => {
                let st = chans.entry(channel.0).or_default();
                let k = st.recvs.len();
                if let Some(send) = st.sends.get(k) {
                    // Join the sender's clock: the k-th receive
                    // happens-after the k-th send.
                    let svc = send.vc.clone();
                    for (c, s) in clock[pe].iter_mut().zip(&svc) {
                        *c = (*c).max(*s);
                    }
                    hb_edges += 1;
                } else if k < total_sends.get(&channel.0).copied().unwrap_or(0) {
                    diagnostics.push(
                        Diagnostic::new(
                            "SPI100",
                            Severity::Error,
                            Locus::System,
                            format!(
                                "receive #{k} on channel {} at ts {} observed before its \
                                 matching send: the reconstructed happens-before order is \
                                 causally inconsistent",
                                channel.0, ev.ts
                            ),
                        )
                        .with_suggestion(
                            "a FIFO receive cannot precede its send; check the capture's clock \
                             merge or the transport's ordering",
                        ),
                    );
                }
                let st = chans.entry(channel.0).or_default();
                st.recvs.push(EventRec {
                    pe,
                    ts: ev.ts,
                    vc: clock[pe].clone(),
                });
            }
            ProbeKind::BlockSend { channel } => {
                *open_send_blocks.entry((pe, channel.0)).or_insert(0) += 1;
            }
            ProbeKind::UnblockSend { channel } => {
                let d = open_send_blocks.entry((pe, channel.0)).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    spi104.push((pe, channel.0, "UnblockSend without BlockSend"));
                    *d = 0;
                }
            }
            ProbeKind::BlockRecv { channel } => {
                *open_recv_blocks.entry((pe, channel.0)).or_insert(0) += 1;
            }
            ProbeKind::UnblockRecv { channel } => {
                let d = open_recv_blocks.entry((pe, channel.0)).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    spi104.push((pe, channel.0, "UnblockRecv without BlockRecv"));
                    *d = 0;
                }
            }
            _ => {}
        }
    }

    for (&(pe, ch), &d) in open_send_blocks.iter().filter(|(_, &d)| d > 0) {
        spi104.push((pe, ch, "BlockSend never unblocked"));
        let _ = d;
    }
    for (&(pe, ch), &d) in open_recv_blocks.iter().filter(|(_, &d)| d > 0) {
        spi104.push((pe, ch, "BlockRecv never unblocked"));
        let _ = d;
    }
    spi104.sort();
    spi104.dedup();
    for (pe, ch, what) in spi104 {
        diagnostics.push(
            Diagnostic::new(
                "SPI104",
                Severity::Warning,
                Locus::System,
                format!("PE {pe}, channel {ch}: {what} — blocking instrumentation unpaired"),
            )
            .with_suggestion(
                "happens-before reconstruction ignores blocking pairs it cannot match; fix the \
                 emitter or re-capture",
            ),
        );
    }

    // Endpoint ordering checks per channel.
    let mut ordered_chans: Vec<_> = chans.iter().collect();
    ordered_chans.sort_by_key(|(ch, _)| **ch);
    for (&ch, st) in ordered_chans {
        let locus = trace
            .meta
            .edges
            .iter()
            .find(|b| b.channel.0 == ch)
            .map(|b| Locus::Edge(b.edge))
            .unwrap_or(Locus::System);

        for (side, code, events) in [
            ("send", "SPI101", &st.sends),
            ("receive", "SPI102", &st.recvs),
        ] {
            if let Some((a, b)) = first_unordered_pair(events) {
                diagnostics.push(
                    Diagnostic::new(
                        code,
                        Severity::Error,
                        locus.clone(),
                        format!(
                            "channel {ch}: concurrent {side}s from PE {} (ts {}) and PE {} \
                             (ts {}) with no happens-before path — {side} endpoint race",
                            a.pe, a.ts, b.pe, b.ts
                        ),
                    )
                    .with_suggestion(
                        "SPI edges are single-producer single-consumer; route the second PE \
                         through its own edge or add a synchronization edge",
                    ),
                );
            } else {
                let mut pes: Vec<usize> = events.iter().map(|e| e.pe).collect();
                pes.sort_unstable();
                pes.dedup();
                if pes.len() > 1 {
                    diagnostics.push(
                        Diagnostic::new(
                            "SPI105",
                            Severity::Warning,
                            locus.clone(),
                            format!(
                                "channel {ch}: {side} endpoint shared by PEs {pes:?} \
                                 (totally ordered, so not a race, but outside the \
                                 point-to-point edge contract)"
                            ),
                        )
                        .with_suggestion(
                            "shared endpoints are memory-safe but serialize on the slot \
                             protocol; give each PE its own edge",
                        ),
                    );
                }
            }
        }

        // Slot-reuse window: with a B-token bound, send n+B overwrites
        // the slot receive n vacates, so it must come later in the
        // observed linearization.
        if let Some(bound) = trace
            .meta
            .edges
            .iter()
            .find(|b| b.channel.0 == ch)
            .and_then(|b| b.bound_tokens)
        {
            let b = bound as usize;
            for n in 0..st.recvs.len() {
                if let Some(send) = st.sends.get(n + b) {
                    if send.ts < st.recvs[n].ts {
                        diagnostics.push(
                            Diagnostic::new(
                                "SPI103",
                                Severity::Error,
                                locus.clone(),
                                format!(
                                    "channel {ch}: send #{} (ts {}) observed before receive \
                                     #{n} (ts {}) on a {b}-token channel — the eq. (2) \
                                     reuse window was violated",
                                    n + b,
                                    send.ts,
                                    st.recvs[n].ts
                                ),
                            )
                            .with_suggestion(
                                "the producer lapped the consumer inside the static bound; \
                                 check the channel's capacity derivation and backpressure",
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }

    if trace.meta.dropped > 0 {
        diagnostics.push(
            Diagnostic::new(
                "SPI106",
                Severity::Warning,
                Locus::System,
                format!(
                    "capture dropped {} events: the happens-before reconstruction is \
                     incomplete and races may be missed",
                    trace.meta.dropped
                ),
            )
            .with_suggestion("enlarge the capture buffer and re-trace before trusting the result"),
        );
    }

    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(b.code)));
    RaceReport {
        diagnostics,
        events: trace.events.len(),
        channels: chans.len(),
        hb_edges,
    }
}

/// First pair of events from *different* PEs with no happens-before
/// path between them, if any. `events` is in trace order, so a later
/// event is ordered after an earlier one iff its clock has absorbed
/// the earlier PE's component.
fn first_unordered_pair(events: &[EventRec]) -> Option<(&EventRec, &EventRec)> {
    for (i, a) in events.iter().enumerate() {
        for b in &events[i + 1..] {
            if a.pe != b.pe && b.vc[a.pe] < a.vc[a.pe] {
                return Some((a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    //! One seeded single-fault mutant per diagnostic, mirroring the
    //! SPI080–SPI095 pattern in `spi-trace`'s `check.rs`: each mutant
    //! trips exactly its own code and the clean trace trips none.

    use super::*;
    use spi_platform::{ChannelId, PeId, ProbeEvent};
    use spi_trace::{ClockKind, EdgeBound, TraceMeta};

    fn meta() -> TraceMeta {
        TraceMeta::new(ClockKind::Cycles)
    }

    fn bounded_meta(ch: usize, tokens: u64) -> TraceMeta {
        let mut m = meta();
        m.edges.push(EdgeBound {
            edge: spi_dataflow::EdgeId(0),
            channel: ChannelId(ch),
            capacity_bytes: 64,
            max_message_bytes: 16,
            bound_tokens: Some(tokens),
        });
        m
    }

    fn ev(ts: u64, pe: usize, kind: ProbeKind) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(pe),
            kind,
        }
    }

    fn send(ts: u64, pe: usize, ch: usize) -> ProbeEvent {
        ev(
            ts,
            pe,
            ProbeKind::Send {
                channel: ChannelId(ch),
                bytes: 4,
                digest: 7,
                occ_bytes: 4,
                occ_msgs: 1,
            },
        )
    }

    fn recv(ts: u64, pe: usize, ch: usize) -> ProbeEvent {
        ev(
            ts,
            pe,
            ProbeKind::Recv {
                channel: ChannelId(ch),
                bytes: 4,
                digest: 7,
                occ_bytes: 0,
                occ_msgs: 0,
            },
        )
    }

    fn codes(r: &RaceReport) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = r.diagnostics.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn clean_pipeline_is_silent() {
        let t = Trace {
            meta: meta(),
            events: vec![send(1, 0, 0), recv(2, 1, 0), send(3, 0, 0), recv(4, 1, 0)],
        };
        let r = race_check(&t);
        assert!(codes(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.hb_edges, 2);
    }

    #[test]
    fn spi100_recv_before_send() {
        let t = Trace {
            meta: meta(),
            events: vec![recv(1, 1, 0), send(5, 0, 0)],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI100"]);
    }

    #[test]
    fn spi101_concurrent_senders() {
        let t = Trace {
            meta: meta(),
            events: vec![send(1, 0, 0), send(2, 2, 0)],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI101"]);
    }

    #[test]
    fn spi102_concurrent_receivers() {
        let t = Trace {
            meta: meta(),
            events: vec![send(1, 0, 0), send(2, 0, 0), recv(3, 1, 0), recv(4, 2, 0)],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI102"]);
    }

    #[test]
    fn spi103_slot_reuse_window() {
        let t = Trace {
            meta: bounded_meta(0, 1),
            events: vec![send(1, 0, 0), send(2, 0, 0), recv(5, 1, 0), recv(6, 1, 0)],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI103"]);
    }

    #[test]
    fn spi104_unpaired_block() {
        let t = Trace {
            meta: meta(),
            events: vec![ev(
                1,
                0,
                ProbeKind::BlockSend {
                    channel: ChannelId(0),
                },
            )],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI104"]);
    }

    #[test]
    fn spi105_shared_but_ordered_endpoint() {
        // PE 0 sends on channel 5, then hands the baton to PE 2 over
        // channel 9; PE 2's later send on channel 5 is therefore
        // ordered — a contract violation but not a race.
        let t = Trace {
            meta: meta(),
            events: vec![send(1, 0, 5), send(2, 0, 9), recv(3, 2, 9), send(4, 2, 5)],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI105"]);
    }

    #[test]
    fn spi106_dropped_events() {
        let mut m = meta();
        m.dropped = 3;
        let t = Trace {
            meta: m,
            events: vec![send(1, 0, 0), recv(2, 1, 0)],
        };
        assert_eq!(codes(&race_check(&t)), vec!["SPI106"]);
    }

    #[test]
    fn hb_through_ack_channel_suppresses_slot_reuse_race() {
        // Producer waits for the consumer's ack (channel 1) before
        // reusing the slot: the reconstructed order is consistent even
        // though the raw timestamps are tight.
        let t = Trace {
            meta: bounded_meta(0, 1),
            events: vec![
                send(1, 0, 0),
                recv(2, 1, 0),
                send(3, 1, 1), // ack
                recv(4, 0, 1),
                send(5, 0, 0),
                recv(6, 1, 0),
            ],
        };
        let r = race_check(&t);
        assert!(codes(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.hb_edges, 3);
    }
}

//! # spi-verify — static & exhaustive-dynamic verification for SPI
//!
//! Three connected engines that check the places where the SPI
//! reproduction is most exposed to ordering bugs:
//!
//! 1. **Bounded model checking** ([`ring`], engine in
//!    [`spi_platform::verify`]) — a loom-style stateless explorer that
//!    enumerates every thread interleaving (up to happens-before
//!    equivalence, via DFS with sleep-set pruning) of the
//!    [`RingTransport`](spi_platform::RingTransport) ring + waitlist
//!    protocol at small bounds. The regression oracle
//!    [`ring::explore_ring_shared_consumers`] mechanically reverts the
//!    PR 3 lost-wakeup fix and asserts the explorer rediscovers the
//!    bug as a deadlocking schedule with a minimized interleaving.
//! 2. **Happens-before race checking** ([`race`]) — replays a
//!    `spi-trace` capture, reconstructs cross-PE ordering from matched
//!    send/receive pairs (data *and* ack/control channels — the
//!    materialized synchronization edges of the paper's `G_s`) with
//!    vector clocks, and reports races and ordering violations as the
//!    stable diagnostics SPI100–SPI106 (surfaced by
//!    `spi-lint race-check`).
//! 3. **Framing-protocol exploration** ([`framing`]) — exhaustive DFS
//!    over adversarial channel behavior (drop / corrupt / duplicate
//!    within a fault budget) against the real supervision seq/crc
//!    framing codecs, checking the delivered stream respects the
//!    configured [`DegradePolicy`](spi_platform::DegradePolicy)
//!    semantics at the bound.
//!
//! The companion `spi-analyze` pass `ResyncCertification` (SPI061 /
//! SPI062) closes the loop on the static side: every synchronization
//! edge the resynchronization optimizer removes must carry a
//! machine-checkable redundancy proof (see
//! [`spi_sched::ResyncCertificate`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod framing;
pub mod race;
pub mod ring;

pub use framing::{explore_framing, FramingExploration, FramingOptions, FramingViolation};
pub use race::{race_check, RaceReport};
pub use ring::{explore_pointer_spsc, explore_ring_shared_consumers, explore_ring_spsc};
pub use spi_platform::verify::{
    explore, Exploration, Failure, FailureKind, ModelOptions, Scenario, Step,
};

//! Canonical `RingTransport` / `PointerTransport` exploration scenarios.
//!
//! Three scenarios cover the ring + waitlist + pool protocols:
//!
//! * [`explore_ring_spsc`] — the production topology: one producer,
//!   one consumer, small ring, `n` messages each way. Exhaustive at
//!   the bound; any lost wakeup shows up as a deadlock because the
//!   model clock is frozen and park timeouts can never fire.
//! * [`explore_pointer_spsc`] — the pointer-exchange handoff: pool
//!   acquire, in-place framing, descriptor publish, lease drop as the
//!   slot-release ack. Covers the descriptor ring, the free ring and
//!   the slab recycling between them.
//! * [`explore_ring_shared_consumers`] — the regression oracle for the
//!   PR 3 lost-wakeup fix. Two consumers share the receive endpoint
//!   (the documented memory-safe-but-slower mode). With the fix
//!   mechanically reverted (wake-all *with* dequeue), one consumer's
//!   wake token can be absorbed by the other, it re-parks after its
//!   wait-list entry was drained, and the next publish finds nobody
//!   registered: a deadlock the explorer finds without needing any
//!   preemption. With the fix in place the same scenario is
//!   deadlock-free. Notably the strict 2-thread SPSC topology cannot
//!   expose the dequeue revert under sequential consistency — the
//!   `ready()` recheck after every park always rescues the single
//!   consumer — which is exactly why the oracle uses the shared
//!   endpoint mode (see DESIGN.md §12).

use std::sync::Arc;
use std::time::Duration;

use spi_platform::verify::{explore, Exploration, ModelOptions};
use spi_platform::{PointerTransport, RingTransport, Transport};

/// Far beyond any exploration: the model clock is frozen, so this
/// deadline is simply "never" inside a session.
const NEVER: Duration = Duration::from_secs(3600);

/// Exhaustively explores the 2-thread SPSC protocol: one producer
/// sending `messages` 4-byte payloads through a ring of `slots` slots,
/// one consumer receiving and checking FIFO order. Returns the full
/// exploration statistics; `failure` is `Some` if any interleaving
/// deadlocked, panicked or livelocked.
pub fn explore_ring_spsc(messages: usize, slots: usize, opts: &ModelOptions) -> Exploration {
    let slots = slots.max(1);
    explore(opts, move |sc| {
        let ring = Arc::new(RingTransport::new(slots * 4, 4));
        let p = Arc::clone(&ring);
        sc.thread("producer", move || {
            for i in 0..messages as u32 {
                p.send_with(4, &mut |buf| buf.copy_from_slice(&i.to_le_bytes()), NEVER)
                    .expect("model send");
            }
        });
        let c = Arc::clone(&ring);
        sc.thread("consumer", move || {
            for i in 0..messages as u32 {
                let mut got = None;
                c.recv_with(
                    &mut |b| got = Some(u32::from_le_bytes(b.try_into().expect("4 bytes"))),
                    NEVER,
                )
                .expect("model recv");
                assert_eq!(got, Some(i), "FIFO order violated");
            }
        });
    })
}

/// Exhaustively explores the pointer-exchange SPSC handoff: one
/// producer framing `messages` 4-byte payloads in place (pool acquire →
/// write slot → publish descriptor), one consumer receiving leases and
/// dropping them (the UBS-style slot-release acknowledgement through
/// the free ring). Two Vyukov rings plus the slab are in play, so the
/// schedule space is larger than the plain SPSC scenario at the same
/// bound; the invariant under test is that slot recycling can neither
/// deadlock (lost release ⇒ acquire parks forever under the frozen
/// model clock) nor corrupt FIFO order (descriptor pointing at a
/// reused slot before the consumer finished reading it would break the
/// payload check).
pub fn explore_pointer_spsc(messages: usize, slots: usize, opts: &ModelOptions) -> Exploration {
    let slots = slots.max(1);
    explore(opts, move |sc| {
        let t = Arc::new(PointerTransport::new(slots * 4, 4));
        let p = Arc::clone(&t);
        sc.thread("producer", move || {
            for i in 0..messages as u32 {
                p.send_in_place(
                    4,
                    &mut |buf| {
                        buf[..4].copy_from_slice(&i.to_le_bytes());
                        4
                    },
                    NEVER,
                )
                .expect("model send");
            }
        });
        let c = Arc::clone(&t);
        sc.thread("consumer", move || {
            for i in 0..messages as u32 {
                let token = c.recv_token(NEVER).expect("model recv");
                assert!(token.is_pooled(), "pointer path must not copy");
                assert_eq!(&token[..], &i.to_le_bytes(), "FIFO order violated");
                // Dropping the lease is the slot-release ack.
                drop(token);
            }
        });
    })
}

/// The PR 3 regression oracle: one producer sends two messages through
/// a single-slot ring while two consumers share the receive endpoint,
/// each taking one message. With `reverted_wakeup` the wait list uses
/// the pre-PR 3 wake-all-with-dequeue behavior and the exploration
/// must report a deadlock; with the shipped fix it must not.
pub fn explore_ring_shared_consumers(reverted_wakeup: bool, opts: &ModelOptions) -> Exploration {
    explore(opts, move |sc| {
        let ring = Arc::new(if reverted_wakeup {
            RingTransport::new_with_reverted_wakeup(4, 4)
        } else {
            RingTransport::new(4, 4)
        });
        let p = Arc::clone(&ring);
        sc.thread("producer", move || {
            for i in 0..2u32 {
                p.send_with(4, &mut |buf| buf.copy_from_slice(&i.to_le_bytes()), NEVER)
                    .expect("model send");
            }
        });
        for name in ["consumer-1", "consumer-2"] {
            let c = Arc::clone(&ring);
            sc.thread(name, move || {
                c.recv_with(&mut |_| {}, NEVER).expect("model recv");
            });
        }
    })
}

//! Exhaustive exploration of the supervision seq/crc framing protocol.
//!
//! Unlike [`crate::ring`] this engine does not interleave threads: the
//! framing protocol is a *sequential* codec plus a retry/dedup state
//! machine, so the adversary is the **channel**, not the scheduler. The
//! explorer enumerates every sequence of channel behaviors — deliver,
//! drop, corrupt a payload byte, corrupt a header byte, duplicate —
//! within a fault budget, runs the real
//! [`encode_frame_into`](spi_platform::encode_frame_into) /
//! [`decode_frame`](spi_platform::decode_frame) codecs plus a model of
//! the supervised sender (retransmit under the same sequence number up
//! to `max_retries`) and receiver (CRC discard, stale-duplicate dedup,
//! gap handling per [`DegradePolicy`]), and checks the delivered stream
//! against the policy's contract:
//!
//! * no corrupted payload is ever delivered (CRC must catch it);
//! * no message is delivered twice (dedup must catch duplicates);
//! * genuine messages arrive in send order;
//! * under [`DegradePolicy::Fail`], a run that completes delivered
//!   everything — loss is only allowed to surface as a fail-stop.
//!
//! Header corruption is the interesting adversary move: the CRC covers
//! only the payload, so a flipped sequence byte yields a *valid* frame
//! with the wrong sequence number. The receiver's dedup/gap machinery
//! must degrade it safely (discard or policy-gap), never mis-deliver.

use spi_platform::{decode_frame, encode_frame_into, DegradePolicy, FrameError};

/// Bounds and protocol parameters for [`explore_framing`].
#[derive(Debug, Clone, Copy)]
pub struct FramingOptions {
    /// Messages the sender pushes through the channel.
    pub messages: usize,
    /// Total adversarial actions (drop/corrupt/duplicate) per run.
    pub fault_budget: usize,
    /// Retransmissions per message before the sender degrades.
    pub max_retries: u32,
    /// Gap/loss handling contract being checked.
    pub policy: DegradePolicy,
    /// Receiver discards frames with stale sequence numbers. `true` is
    /// the shipped protocol; `false` is a seeded single-fault mutant
    /// used to prove the explorer detects duplicate delivery.
    pub dedup_stale: bool,
}

impl Default for FramingOptions {
    fn default() -> Self {
        FramingOptions {
            messages: 3,
            fault_budget: 2,
            max_retries: 2,
            policy: DegradePolicy::Fail,
            dedup_stale: true,
        }
    }
}

/// One contract violation plus the adversary script that produced it.
#[derive(Debug, Clone)]
pub struct FramingViolation {
    /// What went wrong (`corrupt-delivered`, `duplicate-delivered`,
    /// `order-violation`, `lost-under-fail`).
    pub kind: &'static str,
    /// The channel behavior, one entry per transmission attempt.
    pub actions: Vec<&'static str>,
    /// Human-readable account of the delivered stream.
    pub detail: String,
}

/// Result of [`explore_framing`].
#[derive(Debug, Clone, Default)]
pub struct FramingExploration {
    /// Complete adversary scripts explored.
    pub states_explored: u64,
    /// Contract violations found (empty for the shipped protocol).
    pub violations: Vec<FramingViolation>,
}

const ACTIONS: [&str; 5] = [
    "deliver",
    "drop",
    "corrupt-payload",
    "corrupt-seq",
    "duplicate",
];

#[derive(Clone)]
struct RunState {
    /// Next message index to send (its sequence number).
    next_msg: usize,
    /// Retransmissions already burned for `next_msg`.
    attempt: u32,
    faults_used: usize,
    /// Receiver's expected sequence number.
    expected: u32,
    delivered: Vec<Vec<u8>>,
    aborted: bool,
    script: Vec<&'static str>,
}

/// Exhaustively explores the framing protocol at the given bounds and
/// returns every contract violation (with its adversary script).
pub fn explore_framing(opts: &FramingOptions) -> FramingExploration {
    let mut out = FramingExploration::default();
    let root = RunState {
        next_msg: 0,
        attempt: 0,
        faults_used: 0,
        expected: 0,
        delivered: Vec::new(),
        aborted: false,
        script: Vec::new(),
    };
    dfs(opts, root, &mut out);
    out
}

fn payload_of(msg: usize) -> [u8; 4] {
    [(msg + 1) as u8; 4]
}

fn dfs(opts: &FramingOptions, st: RunState, out: &mut FramingExploration) {
    if st.aborted || st.next_msg == opts.messages {
        out.states_explored += 1;
        check_run(opts, &st, out);
        return;
    }
    for (i, &action) in ACTIONS.iter().enumerate() {
        let is_fault = i != 0;
        if is_fault && st.faults_used >= opts.fault_budget {
            continue;
        }
        let mut next = st.clone();
        next.script.push(action);
        if is_fault {
            next.faults_used += 1;
        }

        let seq = next.next_msg as u32;
        let mut frame = Vec::new();
        encode_frame_into(&mut frame, seq, &payload_of(next.next_msg));
        let (arrivals, sender_ok): (Vec<Vec<u8>>, bool) = match action {
            "deliver" => (vec![frame], true),
            "drop" => (vec![], false),
            "corrupt-payload" => {
                let mut f = frame;
                let at = spi_platform::FRAME_HEADER_BYTES;
                f[at] ^= 0xFF;
                (vec![f], false)
            }
            "corrupt-seq" => {
                // The CRC covers only the payload: this frame still
                // decodes cleanly, with the wrong sequence number.
                let mut f = frame;
                f[0] ^= 0x01;
                (vec![f], false)
            }
            "duplicate" => (vec![frame.clone(), frame], true),
            _ => unreachable!(),
        };

        for raw in arrivals {
            receiver_accept(opts, &mut next, &raw);
            if next.aborted {
                break;
            }
        }

        if next.aborted {
            // Fail-stop: the run ends here; check_run validates what
            // was delivered before the stop.
        } else if sender_ok {
            next.next_msg += 1;
            next.attempt = 0;
        } else {
            next.attempt += 1;
            if next.attempt > opts.max_retries {
                match opts.policy {
                    DegradePolicy::Fail => next.aborted = true,
                    // Sender-side skip: advance past the lost message;
                    // the receiver sees the sequence gap later.
                    DegradePolicy::Skip | DegradePolicy::Substitute => {
                        next.next_msg += 1;
                        next.attempt = 0;
                    }
                }
            }
        }
        dfs(opts, next, out);
    }
}

fn receiver_accept(opts: &FramingOptions, st: &mut RunState, raw: &[u8]) {
    let (seq, payload) = match decode_frame(raw) {
        Ok(ok) => ok,
        // CRC or framing failure: discard, the sender retransmits.
        Err(FrameError::BadCrc | FrameError::Truncated) => return,
    };
    if seq < st.expected {
        if opts.dedup_stale {
            return; // stale duplicate
        }
        // Seeded mutant: no dedup, stale frames get re-delivered.
        st.delivered.push(payload.to_vec());
        return;
    }
    if seq > st.expected {
        match opts.policy {
            DegradePolicy::Fail => {
                st.aborted = true;
                return;
            }
            DegradePolicy::Skip => {}
            DegradePolicy::Substitute => {
                for _ in st.expected..seq {
                    st.delivered.push(vec![0; 4]);
                }
            }
        }
    }
    st.delivered.push(payload.to_vec());
    st.expected = seq + 1;
}

fn check_run(opts: &FramingOptions, st: &RunState, out: &mut FramingExploration) {
    let mut violate = |kind: &'static str, detail: String| {
        out.violations.push(FramingViolation {
            kind,
            actions: st.script.clone(),
            detail,
        });
    };

    let mut genuine = Vec::new();
    for (pos, d) in st.delivered.iter().enumerate() {
        if *d == vec![0u8; 4] && opts.policy == DegradePolicy::Substitute {
            continue; // substitute token
        }
        match (0..opts.messages).find(|&m| d[..] == payload_of(m)) {
            Some(m) => genuine.push(m),
            None => violate(
                "corrupt-delivered",
                format!("delivered[{pos}] = {d:?} matches no sent payload"),
            ),
        }
    }
    for w in genuine.windows(2) {
        if w[1] == w[0] {
            violate(
                "duplicate-delivered",
                format!("message {} delivered twice: {genuine:?}", w[0]),
            );
        } else if w[1] < w[0] {
            violate(
                "order-violation",
                format!("messages delivered out of order: {genuine:?}"),
            );
        }
    }
    if opts.policy == DegradePolicy::Fail && !st.aborted && genuine.len() < opts.messages {
        violate(
            "lost-under-fail",
            format!(
                "run completed under Fail with {}/{} messages delivered",
                genuine.len(),
                opts.messages
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explore(policy: DegradePolicy, dedup: bool) -> FramingExploration {
        explore_framing(&FramingOptions {
            policy,
            dedup_stale: dedup,
            ..FramingOptions::default()
        })
    }

    #[test]
    fn shipped_protocol_clean_under_all_policies() {
        for policy in [
            DegradePolicy::Fail,
            DegradePolicy::Skip,
            DegradePolicy::Substitute,
        ] {
            let ex = explore(policy, true);
            assert!(ex.states_explored > 50, "vacuous: {}", ex.states_explored);
            assert!(
                ex.violations.is_empty(),
                "{policy:?}: {:?}",
                ex.violations.first()
            );
        }
    }

    #[test]
    fn seeded_dedup_mutant_is_caught() {
        let ex = explore(DegradePolicy::Fail, false);
        assert!(
            ex.violations
                .iter()
                .any(|v| v.kind == "duplicate-delivered"),
            "mutant survived: {:?}",
            ex.violations
        );
        // The script that kills it must actually use the duplicate move.
        let v = ex
            .violations
            .iter()
            .find(|v| v.kind == "duplicate-delivered")
            .expect("checked above");
        assert!(v.actions.contains(&"duplicate"), "{:?}", v.actions);
    }

    #[test]
    fn budget_zero_is_faultless_and_clean() {
        let ex = explore_framing(&FramingOptions {
            fault_budget: 0,
            ..FramingOptions::default()
        });
        assert_eq!(ex.states_explored, 1); // only all-deliver
        assert!(ex.violations.is_empty());
    }
}

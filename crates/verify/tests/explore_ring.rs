//! Bounded model checking of the `RingTransport` protocol.
//!
//! Three claims, per the verification plan (DESIGN.md §12):
//!
//! 1. the 2-thread SPSC protocol is deadlock/panic-free and the
//!    exploration is *exhaustive* at the tier-1 bound (2 messages
//!    through a 1-slot ring — every send and receive blocks at least
//!    once, plus all their spins and parks), and not vacuous: it must
//!    visit at least [`MIN_SCHEDULES`] distinct interleavings
//!    (anti-vacuity floor, committed as a baseline). A deeper bound
//!    (3 messages, 2 slots) runs `#[ignore]`d for the CI `verify` job;
//! 2. the shared-consumer scenario is clean with the shipped wait-list
//!    within a fixed schedule budget (its full space is too large to
//!    exhaust in tier-1; the budget is ~3x the depth at which the
//!    reverted-wakeup bug is found, so the budget is known to reach
//!    bug-revealing depths);
//! 3. with the PR 3 lost-wakeup fix mechanically reverted
//!    (`new_with_reverted_wakeup`: wake-all *with* dequeue), the same
//!    scenario deadlocks, and the explorer reports it with a minimized
//!    interleaving trace — the regression oracle.

use spi_verify::{
    explore_pointer_spsc, explore_ring_shared_consumers, explore_ring_spsc, FailureKind,
    ModelOptions,
};

/// Anti-vacuity floor for the tier-1 SPSC exploration. The committed
/// baseline at (messages = 2, slots = 1) is 2461 distinct schedules
/// (8912 sleep-set pruned); if a refactor of the shim or explorer
/// silently stops generating schedule points, the count collapses and
/// this test fails even though nothing visibly "breaks". Override via
/// `SPI_VERIFY_MIN_SCHEDULES` after re-measuring the baseline — upward
/// freely, downward only with a DESIGN.md §12 note.
const MIN_SCHEDULES: u64 = 2_000;

/// Anti-vacuity floor for the minimal pointer-exchange exploration.
/// Measured baseline at (messages = 1, slots = 1): 13 distinct
/// schedules (72 sleep-set pruned) — small because the free ring
/// starts full, so the only contention is the descriptor publish
/// against the consumer's dequeue-and-release.
const PTR_MIN_SCHEDULES: u64 = 10;

fn min_schedules() -> u64 {
    std::env::var("SPI_VERIFY_MIN_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MIN_SCHEDULES)
}

#[test]
fn spsc_exhaustive_at_tier1_bound() {
    let opts = ModelOptions::default();
    let ex = explore_ring_spsc(2, 1, &opts);
    assert!(
        !ex.capped,
        "exploration hit the schedule cap — bound too large to be exhaustive"
    );
    if let Some(f) = &ex.failure {
        panic!("SPSC protocol failed at the tier-1 bound:\n{f}");
    }
    assert!(
        ex.schedules >= min_schedules(),
        "vacuous exploration: {} schedules < floor {} (sleep-set pruned {})",
        ex.schedules,
        min_schedules(),
        ex.pruned
    );
}

/// Deeper SPSC bound for the CI `verify` job (`--ignored`): 3 messages
/// through a 2-slot ring, exhaustive. Measured baseline: 33869
/// schedules (130451 pruned), ~100 s in release — too slow for tier-1,
/// which is why it is ignored by default.
#[test]
#[ignore = "exhaustive deep bound (~100s release); run by the CI verify job"]
fn spsc_exhaustive_at_deep_bound() {
    let opts = ModelOptions::default();
    let ex = explore_ring_spsc(3, 2, &opts);
    assert!(!ex.capped, "deep bound no longer exhaustive within the cap");
    if let Some(f) = &ex.failure {
        panic!("SPSC protocol failed at the deep bound:\n{f}");
    }
    assert!(
        ex.schedules >= 30_000,
        "vacuous deep exploration: {} schedules (committed baseline 33869)",
        ex.schedules
    );
}

/// The pointer-exchange handoff at its minimal bound: one message
/// through a one-slot pool. Even this smallest case exercises the full
/// slot cycle — free-ring dequeue, in-place frame, descriptor publish,
/// lease drop re-enqueueing the slot — across two Vyukov rings.
/// Exhaustive; the anti-vacuity floor is the committed baseline
/// (re-measure before lowering, per DESIGN.md §12).
#[test]
fn pointer_spsc_exhaustive_at_minimal_bound() {
    let opts = ModelOptions::default();
    let ex = explore_pointer_spsc(1, 1, &opts);
    assert!(
        !ex.capped,
        "pointer exploration hit the schedule cap — bound too large to be exhaustive"
    );
    if let Some(f) = &ex.failure {
        panic!("pointer handoff failed at the minimal bound:\n{f}");
    }
    println!(
        "pointer(1,1): {} schedules ({} pruned)",
        ex.schedules, ex.pruned
    );
    assert!(
        ex.schedules >= PTR_MIN_SCHEDULES,
        "vacuous pointer exploration: {} schedules < floor {} (pruned {})",
        ex.schedules,
        PTR_MIN_SCHEDULES,
        ex.pruned
    );
}

/// Deeper pointer bound (2 messages, 1 slot — the producer must block
/// until the consumer's lease drop recycles the slot, covering the
/// full release-then-reacquire cycle). Exhaustive: measured baseline
/// 2461 schedules (13292 pruned), ~7 s in release — run `#[ignore]`d
/// by the CI verify job like the deep plain-ring bound.
#[test]
#[ignore = "exhaustive slot-reuse bound (~7s release); run by the CI verify job"]
fn pointer_spsc_exhaustive_at_reuse_bound() {
    let opts = ModelOptions::default();
    let ex = explore_pointer_spsc(2, 1, &opts);
    assert!(
        !ex.capped,
        "reuse bound no longer exhaustive within the cap"
    );
    if let Some(f) = &ex.failure {
        panic!("pointer slot reuse failed:\n{f}");
    }
    assert!(
        ex.schedules >= 2_000,
        "vacuous reuse exploration: {} schedules (committed baseline 2461)",
        ex.schedules
    );
}

#[test]
fn shared_consumers_clean_with_shipped_waitlist() {
    // The full clean space exceeds 500k runs; explore a fixed budget.
    // The reverted-wakeup oracle below finds its deadlock after ~3k
    // schedules, so a 10k-run budget is deep enough to be meaningful.
    let opts = ModelOptions {
        max_schedules: 10_000,
        ..ModelOptions::default()
    };
    let ex = explore_ring_shared_consumers(false, &opts);
    if let Some(f) = &ex.failure {
        panic!("shipped wait-list failed:\n{f}");
    }
}

#[test]
fn reverted_wakeup_rediscovers_pr3_lost_wakeup() {
    let ex = explore_ring_shared_consumers(true, &ModelOptions::default());
    let failure = ex
        .failure
        .expect("explorer must rediscover the PR 3 lost-wakeup deadlock");
    match &failure.kind {
        FailureKind::Deadlock { blocked } => {
            assert!(
                blocked.iter().any(|b| b.contains("consumer")),
                "deadlock should strand a consumer, got {blocked:?}"
            );
        }
        other => panic!("expected a deadlock, found {other:?}\n{failure}"),
    }
    assert!(
        !failure.trace.is_empty(),
        "failure must carry an interleaving trace"
    );
    // The minimized witness is part of the oracle's value: print it so
    // `cargo test -- --nocapture` shows the exact schedule.
    println!("minimized lost-wakeup witness:\n{failure}");
}

//! Quick state-space sizing harness (not part of the test suite).
use spi_verify::{explore_ring_shared_consumers, explore_ring_spsc, ModelOptions};
use std::time::Instant;

fn main() {
    let which: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let opts = ModelOptions {
        max_schedules: 500_000,
        ..Default::default()
    };
    let t = Instant::now();
    let (name, ex) = match which {
        0 => ("spsc m=2 s=1", explore_ring_spsc(2, 1, &opts)),
        1 => ("shared clean", explore_ring_shared_consumers(false, &opts)),
        2 => (
            "shared reverted",
            explore_ring_shared_consumers(true, &opts),
        ),
        3 => ("spsc m=3 s=1", explore_ring_spsc(3, 1, &opts)),
        _ => ("spsc m=3 s=2", explore_ring_spsc(3, 2, &opts)),
    };
    println!(
        "{name}: schedules={} pruned={} capped={} fail={} in {:?}",
        ex.schedules,
        ex.pruned,
        ex.capped,
        ex.failure.is_some(),
        t.elapsed()
    );
    if let Some(f) = ex.failure {
        println!("{f}");
    }
}

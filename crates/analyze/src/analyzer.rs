//! The pass pipeline and its report.

use serde::{Deserialize, Serialize};

use crate::diag::{Diagnostic, Severity};
use crate::input::AnalysisInput;
use crate::passes;

/// One analysis pass. Passes are stateless: they read the input and
/// append diagnostics.
pub trait Pass {
    /// Stable pass name (used in reports and docs).
    fn name(&self) -> &'static str;
    /// Runs the pass, appending any findings to `out`.
    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered pipeline of passes.
#[derive(Default)]
pub struct Analyzer {
    passes: Vec<Box<dyn Pass>>,
}

impl Analyzer {
    /// An empty pipeline; add passes with [`Analyzer::with_pass`].
    pub fn new() -> Self {
        Analyzer { passes: Vec::new() }
    }

    /// The full default pipeline, in dependency order: structural checks
    /// first, then rate/deadlock analysis, then VTS, protocol,
    /// synchronization and resource checks.
    pub fn default_pipeline() -> Self {
        Analyzer::new()
            .with_pass(passes::WellFormedness)
            .with_pass(passes::RateConsistency)
            .with_pass(passes::DeadlockWitness)
            .with_pass(passes::VtsSoundness)
            .with_pass(passes::ProtocolLints)
            .with_pass(passes::SyncCoverage)
            .with_pass(passes::ResyncFixpoint)
            .with_pass(passes::ResyncCertification)
            .with_pass(passes::ResourceOvercommit)
    }

    /// Appends a pass to the pipeline.
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over `input`.
    pub fn run(&self, input: &AnalysisInput<'_>) -> AnalysisReport {
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            pass.run(input, &mut diagnostics);
        }
        // Deterministic presentation: most severe first, then by code,
        // preserving per-pass emission order within a (severity, code).
        diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(b.code)));
        AnalysisReport { diagnostics }
    }
}

/// The collected findings of one analyzer run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when at least one finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Findings with the given code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// True when no findings at all were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders all findings in the compiler-style human format.
    pub fn render_human(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no findings\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_human());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// Renders the report as one JSON document.
    pub fn render_json(&self) -> String {
        let body: Vec<String> = self.diagnostics.iter().map(|d| d.render_json()).collect();
        format!(
            "{{\"diagnostics\":[{}],\"errors\":{},\"warnings\":{}}}",
            body.join(","),
            self.errors().count(),
            self.warnings().count()
        )
    }
}

//! SPI020 — deadlock witness.
//!
//! Class-S scheduling reports *that* simulation starves; this pass names
//! the delay-free cycle responsible. A consistent SDF graph deadlocks
//! exactly when some directed cycle carries fewer initial tokens than
//! one firing of each consumer needs, so among the starved actors we
//! search for a cycle using only edges whose delay cannot cover one
//! consumption.

use std::collections::{HashMap, HashSet};

use spi_dataflow::{ActorId, DataflowError, SdfGraph, VtsConversion};

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// Names the cycle that starves a consistent graph.
pub struct DeadlockWitness;

impl Pass for DeadlockWitness {
    fn name(&self) -> &'static str {
        "deadlock-witness"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let graph = input.graph;
        if graph.actor_count() == 0 {
            return;
        }
        // Schedule what the scheduler schedules: the VTS-converted graph
        // when dynamic edges exist.
        let owned;
        let g: &SdfGraph = if graph.is_pure_sdf() {
            graph
        } else if let Some(v) = input.vts {
            v.graph()
        } else {
            match VtsConversion::convert(graph) {
                Ok(v) => {
                    owned = v;
                    owned.graph()
                }
                // VTS soundness pass reports the conversion failure.
                Err(_) => return,
            }
        };
        if g.repetition_vector().is_err() {
            // Inconsistent: SPI010's territory.
            return;
        }
        let starved = match g.sdf_buffer_bounds() {
            Err(DataflowError::Deadlock { starved }) => starved,
            _ => return,
        };

        let diag = match find_delay_free_cycle(g, &starved) {
            Some(cycle) => {
                let names: Vec<String> = cycle.iter().map(|&a| input.actor_name(a)).collect();
                Diagnostic::new(
                    "SPI020",
                    Severity::Error,
                    Locus::Cycle(cycle),
                    format!(
                        "the schedule deadlocks: cycle {} -> {} carries fewer initial \
                         tokens than one firing of each consumer needs, so no actor \
                         on it can ever fire",
                        names.join(" -> "),
                        names[0],
                    ),
                )
                .with_suggestion("add delay (initial tokens) on at least one edge of the cycle")
            }
            None => {
                let names: Vec<String> = starved.iter().map(|&a| input.actor_name(a)).collect();
                Diagnostic::new(
                    "SPI020",
                    Severity::Error,
                    Locus::Actor(starved[0]),
                    format!(
                        "the schedule deadlocks: actors {{{}}} starve before completing \
                         one iteration",
                        names.join(", "),
                    ),
                )
                .with_suggestion("add delay (initial tokens) on an edge feeding the starved actors")
            }
        };
        out.push(diag);
    }
}

/// Finds a directed cycle among `starved` actors using only edges whose
/// delay is below one consumption (i.e. edges that block their consumer
/// at the start state).
fn find_delay_free_cycle(g: &SdfGraph, starved: &[ActorId]) -> Option<Vec<ActorId>> {
    let starved_set: HashSet<ActorId> = starved.iter().copied().collect();
    let mut adj: HashMap<ActorId, Vec<ActorId>> = HashMap::new();
    for (_, e) in g.edges() {
        if starved_set.contains(&e.src)
            && starved_set.contains(&e.dst)
            && e.delay < u64::from(e.consume.bound())
        {
            adj.entry(e.src).or_default().push(e.dst);
        }
    }
    // Iterative DFS with an explicit stack; `on_path` tracks the current
    // chain so the first back-edge closes a concrete cycle.
    let mut visited: HashSet<ActorId> = HashSet::new();
    for &start in starved {
        if visited.contains(&start) {
            continue;
        }
        let mut path: Vec<ActorId> = Vec::new();
        let mut iters: Vec<std::slice::Iter<'_, ActorId>> = Vec::new();
        let mut on_path: HashSet<ActorId> = HashSet::new();
        visited.insert(start);
        on_path.insert(start);
        path.push(start);
        iters.push(adj.get(&start).map(Vec::as_slice).unwrap_or(&[]).iter());
        while let Some(it) = iters.last_mut() {
            match it.next() {
                Some(&next) => {
                    if on_path.contains(&next) {
                        let pos = path.iter().position(|&a| a == next).unwrap_or(0);
                        return Some(path[pos..].to_vec());
                    }
                    if visited.insert(next) {
                        on_path.insert(next);
                        path.push(next);
                        iters.push(adj.get(&next).map(Vec::as_slice).unwrap_or(&[]).iter());
                    }
                }
                None => {
                    iters.pop();
                    if let Some(done) = path.pop() {
                        on_path.remove(&done);
                    }
                }
            }
        }
    }
    None
}

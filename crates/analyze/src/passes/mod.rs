//! The built-in analysis passes.
//!
//! | Code   | Severity | Pass | Finding |
//! |--------|----------|------|---------|
//! | SPI001 | warning  | well-formedness | actor connected to no edge |
//! | SPI002 | error    | well-formedness | zero production/consumption rate |
//! | SPI003 | error    | well-formedness | self-loop with fewer initial tokens than one firing consumes |
//! | SPI004 | warning  | well-formedness | disconnected subgraph |
//! | SPI010 | error    | rate-consistency | inconsistent balance equations, with the offending cycle |
//! | SPI020 | error    | deadlock-witness | delay-free cycle (or starved actor set) that deadlocks the schedule |
//! | SPI030 | error    | vts-soundness | dynamic edge with `b_max = 0` (unusable rate bound or zero token size) |
//! | SPI031 | error    | vts-soundness | declared FIFO depth below the eq. (1) packed capacity |
//! | SPI032 | warning/error | vts-soundness | delimiter signalling: worst-case frame expansion (error when it overflows a declared depth) |
//! | SPI040 | warning  | protocol-lints | UBS chosen although a static eq. (2) bound exists (§5.1 prefers BBS) |
//! | SPI041 | error    | protocol-lints | BBS chosen with no provable buffer bound |
//! | SPI042 | error    | protocol-lints | BBS capacity below the eq. (2) bound |
//! | SPI043 | warning  | protocol-lints | declared transport capacity below the eq. (2) byte requirement |
//! | SPI044 | warning  | protocol-lints | pointer-exchange pool with fewer slots than the channel's eq. (1) message capacity |
//! | SPI045 | warning  | protocol-lints | cross-partition socket credit window below the eq. (2) byte requirement |
//! | SPI046 | warning  | protocol-lints | configured record batch exceeds the credit window in messages |
//! | SPI050 | error    | sync-coverage | IPC edge not enforced by any synchronization path (data race) |
//! | SPI060 | warning  | resync-fixpoint | redundant synchronization edges remain after optimization |
//! | SPI061 | error    | resync-certification | removed sync edge whose redundancy proof is missing or does not re-verify |
//! | SPI062 | error    | resync-certification | resync addition that does not pay for itself, or inconsistent certificate totals |
//! | SPI070 | warning/error | resource-overcommit | device utilization above 80 % (error above 100 %) |
//!
//! The `SPI08x` range is reserved for the *runtime* conformance checker
//! in `spi-trace` (`spi-lint trace-check`), which replays a captured
//! execution trace against the same static bounds these passes verify
//! up front:
//!
//! | Code   | Severity | Pass | Finding |
//! |--------|----------|------|---------|
//! | SPI080 | error    | trace-check | observed occupancy exceeded the eq. (2) buffer bound |
//! | SPI081 | error    | trace-check | a message exceeded the eq. (1) packed-token size |
//! | SPI082 | error    | trace-check | per-channel FIFO order violated (digest mismatch) |
//! | SPI083 | error    | trace-check | observed makespan exceeded the predicted bound |
//! | SPI084 | warning  | trace-check | capture dropped events; checks ran on a partial stream |
//! | SPI085 | error    | trace-check | conservation violated: more receives than sends |
//! | SPI086 | error    | trace-check | a batched flush exceeded the channel's declared batching budget |
//!
//! The `SPI10x` range is reserved for the vector-clock happens-before
//! checker in `spi-verify` (`spi-lint race-check`), which replays a
//! captured trace and reports concurrency hazards:
//!
//! | Code   | Severity | Pass | Finding |
//! |--------|----------|------|---------|
//! | SPI100 | error    | race-check | receive observed before its matching send |
//! | SPI101 | error    | race-check | unordered sends from different PEs on one channel |
//! | SPI102 | error    | race-check | unordered receives from different PEs on one channel |
//! | SPI103 | error    | race-check | buffer-slot reuse not separated from the consuming receive |
//! | SPI104 | warning  | race-check | unpaired blocking-window marker (Block without Unblock) |
//! | SPI105 | warning  | race-check | endpoint shared by several PEs (ordered, but fragile) |
//! | SPI106 | warning  | race-check | capture dropped events; race analysis ran on a partial stream |

mod deadlock;
mod protocol;
mod rate_consistency;
mod resources;
mod resync;
mod resync_cert;
mod sync_coverage;
mod vts_soundness;
mod well_formed;

pub use deadlock::DeadlockWitness;
pub use protocol::ProtocolLints;
pub use rate_consistency::RateConsistency;
pub use resources::ResourceOvercommit;
pub use resync::ResyncFixpoint;
pub use resync_cert::ResyncCertification;
pub use sync_coverage::SyncCoverage;
pub use vts_soundness::VtsSoundness;
pub use well_formed::WellFormedness;

//! SPI030/031/032 — variable-token-size (VTS, §3) soundness.
//!
//! The VTS conversion replaces each dynamic-rate edge by a rate-1 edge
//! carrying packed tokens of at most `b_max` bytes. That only works
//! when `b_max` is positive (SPI030), when any hardware FIFO declared
//! for the edge holds the eq. (1) packed capacity (SPI031), and — under
//! delimiter length-signalling — when the worst-case escaped frame
//! (`2·b + 1` bytes versus `4 + b` with a header) still fits (SPI032).

use spi_dataflow::{DataflowError, LengthSignal, TokenPacker, VtsConversion};

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// Validates the VTS conversion against declared FIFO depths and the
/// chosen length-signalling discipline.
pub struct VtsSoundness;

impl Pass for VtsSoundness {
    fn name(&self) -> &'static str {
        "vts-soundness"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let graph = input.graph;

        // SPI030 (info flavor): a static edge with zero-byte tokens is
        // suspicious but harmless — it degenerates to pure control flow.
        for (id, e) in graph.edges() {
            if !e.is_dynamic() && e.token_bytes == 0 {
                out.push(Diagnostic::new(
                    "SPI030",
                    Severity::Info,
                    Locus::Edge(id),
                    format!(
                        "edge {id} ({} -> {}) carries 0-byte tokens; it synchronizes \
                         but transfers no data",
                        input.actor_name(e.src),
                        input.actor_name(e.dst),
                    ),
                ));
            }
        }

        let owned;
        let vts: &VtsConversion = match input.vts {
            Some(v) => v,
            None => match VtsConversion::convert(graph) {
                Ok(v) => {
                    owned = v;
                    &owned
                }
                Err(DataflowError::MissingRateBound { edge }) => {
                    out.push(
                        Diagnostic::new(
                            "SPI030",
                            Severity::Error,
                            Locus::Edge(edge),
                            format!(
                                "dynamic edge {edge} has no usable rate bound; the VTS \
                                 conversion cannot size its packed tokens (b_max undefined)"
                            ),
                        )
                        .with_suggestion("declare a positive bound on the dynamic rate"),
                    );
                    return;
                }
                Err(_) => return,
            },
        };

        for info in vts.converted_edges() {
            let e = graph.edge(info.edge);
            // SPI030: b_max = max(produce, consume bound) * token_bytes.
            // Zero means the packed token can hold nothing — every real
            // transfer would overflow it.
            if info.b_max == 0 {
                out.push(
                    Diagnostic::new(
                        "SPI030",
                        Severity::Error,
                        Locus::Edge(info.edge),
                        format!(
                            "dynamic edge {} ({} -> {}) converts to packed tokens of \
                             b_max = 0 bytes (rate bound {} x token size {} bytes); \
                             any nonempty transfer overflows",
                            info.edge,
                            input.actor_name(e.src),
                            input.actor_name(e.dst),
                            info.produce_bound.max(info.consume_bound),
                            info.raw_token_bytes,
                        ),
                    )
                    .with_suggestion("declare a positive rate bound and token size"),
                );
                continue;
            }
            // SPI032 (warning flavor): delimiter signalling expands the
            // worst-case frame to 2*b_max + 1 bytes because every payload
            // byte may need escaping; the header discipline is flat 4 + b.
            if input.signal == Some(LengthSignal::Delimiter) {
                let framed =
                    TokenPacker::for_edge(info, LengthSignal::Delimiter).max_packed_bytes() as u64;
                out.push(
                    Diagnostic::new(
                        "SPI032",
                        Severity::Warning,
                        Locus::Edge(info.edge),
                        format!(
                            "delimiter length-signalling on edge {} expands the worst-case \
                             frame to {framed} bytes (2*b_max+1 with byte stuffing) versus \
                             {} with a length header; headers also avoid the byte-wise \
                             delimiter scan in hardware",
                            info.edge,
                            4 + info.b_max,
                        ),
                    )
                    .with_suggestion("prefer header length-signalling on FPGA targets"),
                );
                // SPI032 (error flavor): the expanded frame no longer
                // fits a FIFO sized for the nominal packed capacity.
                if let Some(&depth) = input.fifo_depths.and_then(|d| d.get(&info.edge)) {
                    if framed > depth {
                        out.push(
                            Diagnostic::new(
                                "SPI032",
                                Severity::Error,
                                Locus::Edge(info.edge),
                                format!(
                                    "declared FIFO depth of {depth} bytes on edge {} cannot \
                                     hold one worst-case delimiter-framed token ({framed} \
                                     bytes); a maximal burst would be truncated",
                                    info.edge,
                                ),
                            )
                            .with_suggestion(format!(
                                "deepen the FIFO to at least {framed} bytes or switch to \
                                 header signalling"
                            )),
                        );
                    }
                }
            }
        }

        // SPI031: eq. (1) packed capacity versus declared FIFO depths,
        // for every edge the hardware constrains.
        if let Some(depths) = input.fifo_depths {
            let mut entries: Vec<_> = depths.iter().collect();
            entries.sort_by_key(|(id, _)| id.0);
            for (&edge, &depth) in entries {
                let Ok(required) = vts.packed_capacity_bytes(edge) else {
                    continue;
                };
                if depth < required {
                    let e = graph.edge(edge);
                    out.push(
                        Diagnostic::new(
                            "SPI031",
                            Severity::Error,
                            Locus::Edge(edge),
                            format!(
                                "declared FIFO depth of {depth} bytes on edge {edge} \
                                 ({} -> {}) is below the eq. (1) packed capacity \
                                 c(e) = {required} bytes; one iteration's tokens overflow it",
                                input.actor_name(e.src),
                                input.actor_name(e.dst),
                            ),
                        )
                        .with_suggestion(format!("deepen the FIFO to at least {required} bytes")),
                    );
                }
            }
        }
    }
}

//! SPI061/SPI062 — resynchronization certification.
//!
//! A certified resynchronization run ([`spi_sched::SyncGraph::
//! resynchronize_certified`]) claims, for every synchronization edge it
//! removed, a witness path in the final graph that path-implies the
//! removed constraint, and for every edge it added, a net-cost
//! justification (the addition made ≥ 2 removals possible). This pass
//! *re-derives* both claims from scratch against the attached sync
//! graph instead of trusting the optimizer:
//!
//! * **SPI061** (error) — a removed edge has no valid proof: it was
//!   reported unproven, its witness endpoints don't match, a witness
//!   hop is not an edge of the final graph, or the re-summed witness
//!   delay exceeds the removed edge's delay. The runtime may now be
//!   missing an ordering constraint the schedule depends on.
//! * **SPI062** (error) — an added resynchronization edge does not pay
//!   for itself (`killed < 2`), an addition is missing from the final
//!   graph, or the certificate's totals disagree with its own report.

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;
use spi_sched::{RedundancyProof, SyncGraph, SyncKind};

/// Re-verifies a [`spi_sched::ResyncCertificate`] against the final
/// synchronization graph.
pub struct ResyncCertification;

impl Pass for ResyncCertification {
    fn name(&self) -> &'static str {
        "resync-certification"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let Some(cert) = input.resync_cert else {
            return;
        };
        let Some(sync) = input.sync else {
            return;
        };

        for e in &cert.unproven {
            out.push(spi061(format!(
                "removal of sync edge t{} -> t{} (delay {}) carries no redundancy \
                 proof: the optimizer could not find a witness path in the final graph",
                e.from.0, e.to.0, e.delay
            )));
        }
        for p in &cert.removals {
            if let Err(why) = check_proof(sync, p) {
                out.push(spi061(format!(
                    "redundancy proof for removed sync edge t{} -> t{} (delay {}) does \
                     not re-verify: {why}",
                    p.edge.from.0, p.edge.to.0, p.edge.delay
                )));
            }
        }

        for a in &cert.additions {
            if a.killed < 2 {
                out.push(spi062(format!(
                    "added resync edge t{} -> t{} killed only {} removable edge(s); the \
                     greedy step must never accept a net-cost increase",
                    a.edge.from.0, a.edge.to.0, a.killed
                )));
            }
            let present = sync.edges().iter().any(|e| {
                e.from == a.edge.from && e.to == a.edge.to && matches!(e.kind, SyncKind::Resync)
            });
            if !present {
                out.push(spi062(format!(
                    "certificate lists added resync edge t{} -> t{} but the final sync \
                     graph does not contain it",
                    a.edge.from.0, a.edge.to.0
                )));
            }
        }

        let r = &cert.report;
        if r.edges_removed != cert.removals.len() + cert.unproven.len()
            || r.edges_added != cert.additions.len()
        {
            out.push(spi062(format!(
                "certificate totals are inconsistent with its report: report says \
                 {} removed / {} added, artifact lists {} proofs + {} unproven / {} additions",
                r.edges_removed,
                r.edges_added,
                cert.removals.len(),
                cert.unproven.len(),
                cert.additions.len()
            )));
        }
    }
}

/// Re-walks one witness path against the final graph.
fn check_proof(sync: &SyncGraph, p: &RedundancyProof) -> Result<(), String> {
    if p.witness.first() != Some(&p.edge.from) || p.witness.last() != Some(&p.edge.to) {
        return Err("witness endpoints do not match the removed edge".into());
    }
    if p.witness.len() < 2 {
        return Err("witness path has no hops".into());
    }
    let mut total = 0u64;
    for w in p.witness.windows(2) {
        let hop = sync
            .edges()
            .iter()
            .filter(|e| e.from == w[0] && e.to == w[1])
            .map(|e| e.delay)
            .min()
            .ok_or_else(|| {
                format!(
                    "witness hop t{} -> t{} is not an edge of the final graph",
                    w[0].0, w[1].0
                )
            })?;
        total = total.saturating_add(hop);
    }
    if total > p.edge.delay {
        return Err(format!(
            "witness delay re-sums to {total}, exceeding the removed edge's delay {}",
            p.edge.delay
        ));
    }
    if total != p.witness_delay {
        return Err(format!(
            "claimed witness delay {} does not match the re-derived {total}",
            p.witness_delay
        ));
    }
    Ok(())
}

fn spi061(msg: String) -> Diagnostic {
    Diagnostic::new("SPI061", Severity::Error, Locus::System, msg).with_suggestion(
        "a removed synchronization edge must be path-implied by the final graph; \
         re-run resynchronize_certified and do not hand-edit the sync graph afterwards",
    )
}

fn spi062(msg: String) -> Diagnostic {
    Diagnostic::new("SPI062", Severity::Error, Locus::System, msg).with_suggestion(
        "regenerate the certificate with the graph it describes; additions must each \
         make at least two removals possible",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_dataflow::SdfGraph;
    use spi_sched::{Protocol, TaskId};

    fn pipeline() -> (SdfGraph, SyncGraph) {
        use spi_dataflow::PrecedenceGraph;
        use spi_sched::{Assignment, IpcGraph, ProcId, SelfTimedSchedule};
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        let c = g.add_actor("C", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(if x == b { 1 } else { 0 })).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        let sync = SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 1 }).unwrap();
        (g, sync)
    }

    fn run_pass(
        graph: &SdfGraph,
        sync: &SyncGraph,
        cert: &spi_sched::ResyncCertificate,
    ) -> Vec<Diagnostic> {
        let input = AnalysisInput::new(graph)
            .with_sync(sync)
            .with_resync_cert(cert);
        let mut out = Vec::new();
        ResyncCertification.run(&input, &mut out);
        out
    }

    #[test]
    fn valid_certificate_is_silent() {
        let (g, mut sync) = pipeline();
        let (_, cert) = sync.resynchronize_certified(true, None);
        let out = run_pass(&g, &sync, &cert);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unproven_removal_trips_spi061() {
        let (g, mut sync) = pipeline();
        let (_, mut cert) = sync.resynchronize_certified(true, None);
        let p = cert.removals.pop().expect("pipeline removes two acks");
        cert.unproven.push(p.edge);
        let out = run_pass(&g, &sync, &cert);
        assert!(out.iter().any(|d| d.code == "SPI061"), "{out:?}");
    }

    #[test]
    fn tampered_witness_delay_trips_spi061() {
        let (g, mut sync) = pipeline();
        let (_, mut cert) = sync.resynchronize_certified(true, None);
        cert.removals[0].witness_delay += 1;
        let out = run_pass(&g, &sync, &cert);
        assert!(out.iter().any(|d| d.code == "SPI061"), "{out:?}");
    }

    #[test]
    fn phantom_addition_trips_spi062() {
        let (g, mut sync) = pipeline();
        let (_, mut cert) = sync.resynchronize_certified(true, None);
        cert.additions.push(spi_sched::ResyncAddition {
            edge: spi_sched::SyncEdge {
                from: TaskId(0),
                to: TaskId(1),
                delay: 0,
                kind: spi_sched::SyncKind::Resync,
            },
            killed: 2,
        });
        cert.report.edges_added += 1;
        let out = run_pass(&g, &sync, &cert);
        assert!(out.iter().any(|d| d.code == "SPI062"), "{out:?}");
    }

    #[test]
    fn inconsistent_totals_trip_spi062() {
        let (g, mut sync) = pipeline();
        let (_, mut cert) = sync.resynchronize_certified(true, None);
        cert.report.edges_removed += 1;
        let out = run_pass(&g, &sync, &cert);
        assert!(out.iter().any(|d| d.code == "SPI062"), "{out:?}");
    }
}

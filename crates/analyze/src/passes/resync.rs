//! SPI060 — resynchronization fixpoint lint.
//!
//! After redundant-edge elimination and resynchronization the sync graph
//! should contain no removable edge whose ordering another path already
//! implies. Finding one means the optimization pipeline stopped short of
//! its fixpoint and the runtime pays for synchronization it does not
//! need.

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// Flags sync graphs that still contain redundant edges.
pub struct ResyncFixpoint;

impl Pass for ResyncFixpoint {
    fn name(&self) -> &'static str {
        "resync-fixpoint"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let Some(sync) = input.sync else {
            return;
        };
        let redundant = sync.redundant_edges();
        if redundant.is_empty() {
            return;
        }
        let detail: Vec<String> = redundant
            .iter()
            .take(4)
            .map(|&i| {
                let e = sync.edges()[i];
                format!("t{} -> t{} (delay {})", e.from.0, e.to.0, e.delay)
            })
            .collect();
        out.push(
            Diagnostic::new(
                "SPI060",
                Severity::Warning,
                Locus::System,
                format!(
                    "{} synchronization edge(s) are still redundant after optimization \
                     (e.g. {}); each one costs a send/receive pair per iteration that \
                     another sync path already guarantees",
                    redundant.len(),
                    detail.join(", "),
                ),
            )
            .with_suggestion(
                "run redundant-edge elimination (and resynchronization) to the fixpoint",
            ),
        );
    }
}

//! SPI040/041/042/043/044 — synchronization-protocol lints (§4.2, §5.1).
//!
//! BBS (bounded-buffer synchronization) needs a provable buffer bound —
//! eq. (2): `B(e) = (Gamma + delay(e)) · c(e)` tokens, where `Gamma` is
//! the minimum-delay feedback path of the IPC graph. When the bound
//! exists, BBS is free of acknowledgement traffic and the paper's §5.1
//! measurements show it beats UBS; when it does not, only UBS is sound.
//! SPI043 closes the loop at the runtime layer: a declared transport
//! allocation smaller than the eq. (2) bytes can deadlock a legal
//! self-timed execution. SPI044 extends the same check to
//! pointer-exchange transports: the backing pool must provide at least
//! as many slots as the channel holds eq. (1)-sized messages, or slot
//! exhaustion throttles the sender below the proven bound. SPI045
//! applies the SPI043 capacity argument to *cross-partition* edges of a
//! distributed deployment (`spi-net`): a socket channel enforces
//! eq. (2) through a sender-side credit window, so a window declared
//! below the required bytes throttles — or deadlocks — a legal
//! self-timed run even though every in-memory buffer is sized right.
//! SPI046 sanity-checks the batched fast path riding on that window: a
//! record batch configured larger than the window holds messages can
//! never actually fill (the window forces a flush first), so the
//! declared amortization is unreachable and usually signals a
//! mis-lowered batch parameter.

use spi_sched::Protocol;

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// Checks each edge's protocol choice against its provable bound.
pub struct ProtocolLints;

impl Pass for ProtocolLints {
    fn name(&self) -> &'static str {
        "protocol-lints"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(ipc), Some(protocols)) = (input.ipc, input.protocols) else {
            return;
        };

        // The eq. (2) bound folded over every IPC instance of each edge:
        // the edge's buffer must hold the worst instance; one unbounded
        // instance makes the whole edge unbounded.
        let bounds = ipc.buffer_bounds_by_edge();

        let mut entries: Vec<_> = protocols.iter().collect();
        entries.sort_by_key(|(id, _)| id.0);
        for (&edge, &protocol) in entries {
            let Some(&bound) = bounds.get(&edge) else {
                // Not an IPC edge under this schedule; no protocol runs.
                continue;
            };
            let e = input.graph.edge(edge);
            let pair = format!("{} -> {}", input.actor_name(e.src), input.actor_name(e.dst));
            match (protocol, bound) {
                (Protocol::Ubs { .. }, Some(b)) => {
                    out.push(
                        Diagnostic::new(
                            "SPI040",
                            Severity::Warning,
                            Locus::Edge(edge),
                            format!(
                                "edge {edge} ({pair}) uses UBS although eq. (2) proves a \
                                 static bound of {b} token(s); BBS at that capacity removes \
                                 the acknowledgement traffic (the paper's §5.1 selection \
                                 rule prefers BBS whenever the bound exists)"
                            ),
                        )
                        .with_suggestion(format!("use BBS with capacity {b} on edge {edge}")),
                    );
                }
                (Protocol::Bbs { capacity }, None) => {
                    out.push(
                        Diagnostic::new(
                            "SPI041",
                            Severity::Error,
                            Locus::Edge(edge),
                            format!(
                                "edge {edge} ({pair}) uses BBS with capacity {capacity}, but \
                                 no feedback path bounds its buffer (eq. (2) has no finite \
                                 Gamma); the producer can overrun the consumer"
                            ),
                        )
                        .with_suggestion("use UBS on this edge or add a feedback path"),
                    );
                }
                (Protocol::Bbs { capacity }, Some(b)) if capacity < b => {
                    out.push(
                        Diagnostic::new(
                            "SPI042",
                            Severity::Error,
                            Locus::Edge(edge),
                            format!(
                                "edge {edge} ({pair}) uses BBS with capacity {capacity}, \
                                 below the eq. (2) bound of {b} token(s); the self-timed \
                                 schedule can legally buffer more than the FIFO holds"
                            ),
                        )
                        .with_suggestion(format!("raise the BBS capacity to at least {b}")),
                    );
                }
                _ => {}
            }

            // SPI043: the runtime allocation must cover the statically
            // required bytes — bound tokens per iteration of drift ×
            // producer firings per iteration × framed message size.
            if let (Some(decls), Some(b)) = (input.transports, bound) {
                if let Some(decl) = decls.get(&edge) {
                    let q_src = ipc
                        .tasks()
                        .iter()
                        .filter(|t| t.firing.actor == e.src)
                        .count() as u64;
                    let required = b * q_src.max(1) * decl.message_bytes_max;
                    if decl.capacity_bytes < required {
                        out.push(
                            Diagnostic::new(
                                "SPI043",
                                Severity::Warning,
                                Locus::Edge(edge),
                                format!(
                                    "edge {edge} ({pair}) declares a transport of \
                                     {} byte(s), below the eq. (2) requirement of \
                                     {required} bytes ({b} token(s) × {} firing(s) × \
                                     {} bytes/message); a self-timed run can block on a \
                                     legally full buffer",
                                    decl.capacity_bytes,
                                    q_src.max(1),
                                    decl.message_bytes_max,
                                ),
                            )
                            .with_suggestion(format!(
                                "allocate at least {required} bytes for edge {edge}"
                            )),
                        );
                    }

                    // SPI044: a pointer-exchange transport moves slot
                    // indices, not bytes, so the channel's message
                    // capacity (eq. (2) bytes over eq. (1)-sized
                    // messages) is only reachable if the pool has a
                    // slot for every in-flight message.
                    if let Some(slots) = decl.pool_slots {
                        let messages = decl
                            .capacity_bytes
                            .checked_div(decl.message_bytes_max)
                            .unwrap_or(0);
                        if slots < messages {
                            out.push(
                                Diagnostic::new(
                                    "SPI044",
                                    Severity::Warning,
                                    Locus::Edge(edge),
                                    format!(
                                        "edge {edge} ({pair}) backs a pointer-exchange \
                                         transport with {slots} pool slot(s), but its \
                                         declared capacity holds {messages} eq. (1)-sized \
                                         message(s) ({} bytes / {} bytes each); slot \
                                         exhaustion stalls the sender before the eq. (2) \
                                         bound is reached",
                                        decl.capacity_bytes, decl.message_bytes_max,
                                    ),
                                )
                                .with_suggestion(format!(
                                    "size the pool to at least {messages} slot(s) for \
                                     edge {edge}"
                                )),
                            );
                        }
                    }
                }
            }

            // SPI045: a cross-partition edge's socket credit window
            // must cover the same eq. (2) bytes. Unlike an undersized
            // in-memory buffer (SPI043), an undersized credit window is
            // invisible locally — each node's buffers look fine — so
            // the distributed deployment is called out explicitly.
            if let (Some(decls), Some(b)) = (input.net_transports, bound) {
                if let Some(decl) = decls.get(&edge) {
                    let q_src = ipc
                        .tasks()
                        .iter()
                        .filter(|t| t.firing.actor == e.src)
                        .count() as u64;
                    let required = b * q_src.max(1) * decl.message_bytes_max;
                    if decl.capacity_bytes < required {
                        out.push(
                            Diagnostic::new(
                                "SPI045",
                                Severity::Warning,
                                Locus::Edge(edge),
                                format!(
                                    "cross-partition edge {edge} ({pair}) grants a socket \
                                     credit window of {} byte(s), below the eq. (2) \
                                     requirement of {required} bytes ({b} token(s) × {} \
                                     firing(s) × {} bytes/message); the sender can stall \
                                     on exhausted credits inside a legal self-timed run",
                                    decl.capacity_bytes,
                                    q_src.max(1),
                                    decl.message_bytes_max,
                                ),
                            )
                            .with_suggestion(format!(
                                "widen the credit window to at least {required} bytes \
                                 for edge {edge}"
                            )),
                        );
                    }
                }
            }

            // SPI046: the batched fast path may never coalesce more
            // records than the credit window admits in flight — a batch
            // beyond `window / c(e)` messages cannot fill before the
            // window itself forces a flush, so the configuration's
            // claimed amortization is unreachable.
            if let Some(decls) = input.net_transports {
                if let Some(decl) = decls.get(&edge) {
                    if let Some(batch) = decl.batch_msgs {
                        let window_msgs =
                            (decl.capacity_bytes / decl.message_bytes_max.max(1)).max(1);
                        if batch > window_msgs {
                            out.push(
                                Diagnostic::new(
                                    "SPI046",
                                    Severity::Warning,
                                    Locus::Edge(edge),
                                    format!(
                                        "cross-partition edge {edge} ({pair}) configures a \
                                         record batch of {batch} message(s), beyond the \
                                         {window_msgs} message(s) its credit window admits \
                                         ({} bytes / {} bytes per message); the window \
                                         flushes every batch early and the configured \
                                         amortization is never reached",
                                        decl.capacity_bytes, decl.message_bytes_max,
                                    ),
                                )
                                .with_suggestion(format!(
                                    "cap the batch at {window_msgs} message(s) — half the \
                                     window leaves credit for the next batch in flight"
                                )),
                            );
                        }
                    }
                }
            }
        }
    }
}

//! SPI010 — rate-consistency explainer.
//!
//! The scheduler's repetition-vector computation reports *that* a graph
//! is inconsistent; this pass explains *why*: it propagates exact
//! rational firing ratios over a spanning tree and, for the first edge
//! whose rates contradict the propagated ratios, reconstructs the
//! undirected cycle that forces the contradiction and names the two
//! conflicting rate pairs.
//!
//! Dynamic edges are treated as the rate-1 packed-token edges the VTS
//! conversion (§3) turns them into, matching what the scheduler sees.

use std::collections::HashMap;

use spi_dataflow::{ActorId, EdgeId};

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// An exact nonnegative rational, kept reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Ratio {
    num: u128,
    den: u128,
}

impl Ratio {
    const ONE: Ratio = Ratio { num: 1, den: 1 };

    fn gcd(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a.max(1)
    }

    fn reduced(num: u128, den: u128) -> Ratio {
        let g = Ratio::gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// `self * p / c`; rates fit u32 so u128 cannot overflow here for
    /// any graph small enough to schedule.
    fn scale(self, p: u32, c: u32) -> Ratio {
        Ratio::reduced(self.num * u128::from(p), self.den * u128::from(c))
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Effective static rates of an edge: dynamic edges pack to rate 1:1.
fn effective_rates(e: &spi_dataflow::Edge) -> (u32, u32) {
    if e.is_dynamic() {
        (1, 1)
    } else {
        (e.produce.bound(), e.consume.bound())
    }
}

/// Explains inconsistent SDF rate systems with a concrete cycle.
pub struct RateConsistency;

impl Pass for RateConsistency {
    fn name(&self) -> &'static str {
        "rate-consistency"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let g = input.graph;
        // Zero rates make the ratios meaningless; SPI002 already fired.
        if g.edges().any(|(_, e)| {
            let (p, c) = effective_rates(e);
            p == 0 || c == 0
        }) {
            return;
        }

        // q: actor -> exact firing ratio relative to its component root.
        let mut q: HashMap<ActorId, Ratio> = HashMap::new();
        // parent: BFS tree edge used to reach each actor.
        let mut parent: HashMap<ActorId, (ActorId, EdgeId)> = HashMap::new();

        // Undirected adjacency: (neighbor, edge, forward?).
        let mut adj: HashMap<ActorId, Vec<(ActorId, EdgeId, bool)>> = HashMap::new();
        for (id, e) in g.edges() {
            adj.entry(e.src).or_default().push((e.dst, id, true));
            adj.entry(e.dst).or_default().push((e.src, id, false));
        }

        for (root, _) in g.actors() {
            if q.contains_key(&root) {
                continue;
            }
            q.insert(root, Ratio::ONE);
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(u) = queue.pop_front() {
                let qu = q[&u];
                for &(v, eid, forward) in adj.get(&u).map(Vec::as_slice).unwrap_or(&[]) {
                    let e = g.edge(eid);
                    let (p, c) = effective_rates(e);
                    // Crossing src -> dst multiplies by p/c; the reverse
                    // direction by c/p.
                    let qv = if forward {
                        qu.scale(p, c)
                    } else {
                        qu.scale(c, p)
                    };
                    match q.get(&v) {
                        None => {
                            q.insert(v, qv);
                            parent.insert(v, (u, eid));
                            queue.push_back(v);
                        }
                        Some(&assigned) if assigned != qv => {
                            out.push(explain(input, &parent, eid, root, assigned, qv));
                            // One witness per component keeps the report
                            // readable; further contradictions in this
                            // component follow from the same cycle.
                            return;
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
}

/// Builds the SPI010 diagnostic: reconstruct the cycle closed by
/// `bad_edge` through the BFS tree and show both conflicting ratios.
fn explain(
    input: &AnalysisInput<'_>,
    parent: &HashMap<ActorId, (ActorId, EdgeId)>,
    bad_edge: EdgeId,
    root: ActorId,
    assigned: Ratio,
    implied: Ratio,
) -> Diagnostic {
    let g = input.graph;
    let e = g.edge(bad_edge);
    let (p, c) = effective_rates(e);

    let path_to = |mut x: ActorId| {
        let mut path = vec![x];
        while x != root {
            let (up, _) = parent[&x];
            path.push(up);
            x = up;
        }
        path.reverse();
        path
    };
    let ps = path_to(e.src);
    let pd = path_to(e.dst);
    let mut lca = 0;
    while lca < ps.len() && lca < pd.len() && ps[lca] == pd[lca] {
        lca += 1;
    }
    // Cycle: LCA .. src, then dst .. back down to just above the LCA.
    let mut cycle: Vec<ActorId> = ps[lca.saturating_sub(1)..].to_vec();
    cycle.extend(pd[lca..].iter().rev());
    let names: Vec<String> = cycle.iter().map(|&a| input.actor_name(a)).collect();

    Diagnostic::new(
        "SPI010",
        Severity::Error,
        Locus::Cycle(cycle.clone()),
        format!(
            "rates are inconsistent around the cycle {}: edge {bad_edge} \
             ({} -> {}) produces {p} and consumes {c}, which implies \
             q({}) = {implied}, but the rest of the cycle fixes \
             q({}) = {assigned}; no integer repetition vector satisfies both",
            names.join(" -> "),
            input.actor_name(e.src),
            input.actor_name(e.dst),
            input.actor_name(e.dst),
            input.actor_name(e.dst),
        ),
    )
    .with_suggestion(format!(
        "adjust the production/consumption rates on edge {bad_edge} (or another \
         edge of the cycle) so the balance equations agree"
    ))
}

//! SPI050 — synchronization coverage (data-race detector).
//!
//! Every interprocessor data transfer in the IPC graph `G_ipc` must be
//! ordered by the synchronization graph `G_s` (Sriram & Bhattacharyya's
//! preservation property): for an IPC edge `(x, y)` with `delay(x, y)`
//! initial tokens there must be a path from `x` to `y` in `G_s` with
//! total delay at most `delay(x, y)`. An uncovered edge means the
//! receiving processor may read a buffer the sender has not written yet.

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;
use spi_sched::IpcEdgeKind;

/// Verifies every IPC edge is enforced by a sync path.
pub struct SyncCoverage;

impl Pass for SyncCoverage {
    fn name(&self) -> &'static str {
        "sync-coverage"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(ipc), Some(sync)) = (input.ipc, input.sync) else {
            return;
        };
        let n = sync.tasks().len();
        if n == 0 || ipc.tasks().len() != n {
            return;
        }

        // Min-plus all-pairs shortest delay over the sync graph.
        const INF: u64 = u64::MAX / 4;
        let mut dist = vec![vec![INF; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
        }
        for e in sync.edges() {
            let d = &mut dist[e.from.0][e.to.0];
            *d = (*d).min(e.delay);
        }
        for k in 0..n {
            for i in 0..n {
                if dist[i][k] == INF {
                    continue;
                }
                for j in 0..n {
                    let via = dist[i][k].saturating_add(dist[k][j]);
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }

        for e in ipc.ipc_edges() {
            let IpcEdgeKind::Ipc { via } = e.kind else {
                continue;
            };
            if dist[e.from.0][e.to.0] > e.delay {
                let src = ipc.task(e.from);
                let dst = ipc.task(e.to);
                let src_actor = input.actor_name(src.firing.actor);
                let dst_actor = input.actor_name(dst.firing.actor);
                out.push(
                    Diagnostic::new(
                        "SPI050",
                        Severity::Error,
                        Locus::Processors(src.proc, dst.proc),
                        format!(
                            "IPC edge via {via} from {src_actor}[{}] on {} to {dst_actor}[{}] \
                             on {} is not enforced by the synchronization graph (needs a sync \
                             path of delay <= {}, shortest is {}); {} may read the shared \
                             buffer before {} writes it — a data race",
                            src.firing.k,
                            src.proc,
                            dst.firing.k,
                            dst.proc,
                            e.delay,
                            if dist[e.from.0][e.to.0] == INF {
                                "none".to_string()
                            } else {
                                dist[e.from.0][e.to.0].to_string()
                            },
                            dst.proc,
                            src.proc,
                        ),
                    )
                    .with_suggestion(
                        "keep a data or feedback synchronization edge covering this transfer; \
                         do not remove non-redundant sync edges",
                    ),
                );
            }
        }
    }
}

//! SPI070 — resource overcommit against the target device.
//!
//! The aggregated estimate (SPI library + actor implementations + IPC
//! FIFOs) must fit the device; the paper's platform is a Virtex-4 SX35.
//! Above 100 % the design cannot place; above 80 % routing typically
//! fails timing closure. Overcommit is an error only when the input
//! *declares* a target device — against the defaulted SX35 it is a
//! warning, since a simulated system need not fit real silicon.

use spi_platform::Device;

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// Checks device utilization per resource category.
pub struct ResourceOvercommit;

impl Pass for ResourceOvercommit {
    fn name(&self) -> &'static str {
        "resource-overcommit"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let Some(used) = input.resources else {
            return;
        };
        let declared = input.device.is_some();
        let device = input.device.unwrap_or_else(Device::virtex4_sx35);
        let pct = device.utilization(&used);
        let categories = [
            ("slices", used.slices, device.capacity.slices, pct.slices),
            (
                "slice flip-flops",
                used.slice_ffs,
                device.capacity.slice_ffs,
                pct.slice_ffs,
            ),
            ("4-input LUTs", used.lut4, device.capacity.lut4, pct.lut4),
            ("block RAMs", used.bram, device.capacity.bram, pct.bram),
            ("DSP48s", used.dsp48, device.capacity.dsp48, pct.dsp48),
        ];
        for (name, amount, capacity, percent) in categories {
            let severity = if percent > 100.0 && declared {
                Severity::Error
            } else if percent > 80.0 {
                Severity::Warning
            } else {
                continue;
            };
            let verdict = if percent > 100.0 {
                "the design cannot place"
            } else {
                "routing and timing closure are at risk"
            };
            out.push(
                Diagnostic::new(
                    "SPI070",
                    severity,
                    Locus::System,
                    format!(
                        "{name}: {amount} of {capacity} used ({percent:.1} % of {}); {verdict}",
                        device.name,
                    ),
                )
                .with_suggestion(
                    "reduce parallel PEs, share actor hardware, or target a larger device",
                ),
            );
        }
    }
}

//! Graph well-formedness: SPI001 (unconnected actor), SPI002 (zero
//! rate), SPI003 (underdelayed self-loop), SPI004 (disconnected
//! subgraph).

use crate::analyzer::Pass;
use crate::diag::{Diagnostic, Locus, Severity};
use crate::input::AnalysisInput;

/// Structural checks that need nothing but the graph itself.
pub struct WellFormedness;

impl Pass for WellFormedness {
    fn name(&self) -> &'static str {
        "well-formedness"
    }

    fn run(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let g = input.graph;

        // SPI002 / SPI003: per-edge rate and self-loop checks.
        for (id, e) in g.edges() {
            for (port, rate) in [("produces", e.produce), ("consumes", e.consume)] {
                if rate.bound() == 0 {
                    out.push(
                        Diagnostic::new(
                            "SPI002",
                            Severity::Error,
                            Locus::Edge(id),
                            format!(
                                "edge {id} ({} -> {}) {port} 0 tokens per firing; \
                                 no finite repetition vector exists",
                                input.actor_name(e.src),
                                input.actor_name(e.dst),
                            ),
                        )
                        .with_suggestion("give every port a positive rate (or rate bound)"),
                    );
                }
            }
            if e.src == e.dst && e.delay < u64::from(e.consume.bound()) && e.consume.bound() > 0 {
                out.push(
                    Diagnostic::new(
                        "SPI003",
                        Severity::Error,
                        Locus::Edge(id),
                        format!(
                            "self-loop {id} on {} carries {} initial token(s) but each firing \
                             consumes {}; the actor can never fire",
                            input.actor_name(e.src),
                            e.delay,
                            e.consume.bound(),
                        ),
                    )
                    .with_suggestion(format!(
                        "set delay >= {} on the self-loop",
                        e.consume.bound()
                    )),
                );
            }
        }

        // SPI001: actors touching no edge at all. A single-actor system
        // is legitimately edge-free, so only flag when peers exist.
        if g.actor_count() > 1 {
            for (id, a) in g.actors() {
                if g.out_edges(id).is_empty() && g.in_edges(id).is_empty() {
                    out.push(
                        Diagnostic::new(
                            "SPI001",
                            Severity::Warning,
                            Locus::Actor(id),
                            format!("actor {} is not connected to any edge", a.name),
                        )
                        .with_suggestion("connect the actor or remove it from the graph"),
                    );
                }
            }
        }

        // SPI004: weakly-connected components among actors that do have
        // edges. Isolated actors are already SPI001.
        let n = g.actor_count();
        if n > 0 {
            let mut comp: Vec<usize> = (0..n).collect();
            fn find(comp: &mut [usize], x: usize) -> usize {
                let mut root = x;
                while comp[root] != root {
                    root = comp[root];
                }
                let mut cur = x;
                while comp[cur] != root {
                    let next = comp[cur];
                    comp[cur] = root;
                    cur = next;
                }
                root
            }
            for (_, e) in g.edges() {
                let (a, b) = (find(&mut comp, e.src.0), find(&mut comp, e.dst.0));
                if a != b {
                    comp[a] = b;
                }
            }
            let connected: Vec<spi_dataflow::ActorId> = g
                .actors()
                .filter(|(id, _)| !g.out_edges(*id).is_empty() || !g.in_edges(*id).is_empty())
                .map(|(id, _)| id)
                .collect();
            if let Some(&first) = connected.first() {
                let main = find(&mut comp, first.0);
                let mut seen = std::collections::HashSet::new();
                for &id in &connected[1..] {
                    let root = find(&mut comp, id.0);
                    if root != main && seen.insert(root) {
                        let members: Vec<String> = connected
                            .iter()
                            .filter(|&&a| find(&mut comp, a.0) == root)
                            .map(|&a| input.actor_name(a))
                            .collect();
                        out.push(
                            Diagnostic::new(
                                "SPI004",
                                Severity::Warning,
                                Locus::Actor(id),
                                format!(
                                    "actors {{{}}} form a subgraph disconnected from {}; \
                                     they share no data and need not be one system",
                                    members.join(", "),
                                    input.actor_name(first),
                                ),
                            )
                            .with_suggestion(
                                "split the graph into independent systems or connect the parts",
                            ),
                        );
                    }
                }
            }
        }
    }
}

//! What the analyzer looks at.
//!
//! Passes degrade gracefully: each one inspects only the sections of
//! [`AnalysisInput`] it understands and stays silent when its section is
//! absent. A graph-only input therefore runs the graph-level passes; the
//! builder's pre-flight adds the schedule-level sections once they exist.

use std::collections::HashMap;

use spi_dataflow::{EdgeId, LengthSignal, SdfGraph, VtsConversion};
use spi_platform::{Device, ResourceEstimate};
use spi_sched::{IpcGraph, Protocol, ResyncCertificate, SyncGraph};

/// Runtime transport declared for one edge's data channel: what the
/// execution layer actually allocated, checked by SPI043 against the
/// statically required eq. (2) bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportDecl {
    /// Total payload capacity of the channel in bytes.
    pub capacity_bytes: u64,
    /// Framed size of the largest message (packed token + header).
    pub message_bytes_max: u64,
    /// Slot count of the buffer pool backing a pointer-exchange
    /// transport, when one is used. `None` for copying transports.
    /// Checked by SPI044 against the channel's message capacity.
    pub pool_slots: Option<u64>,
    /// Most records the sending endpoint may coalesce into one batched
    /// write, when the transport batches (`spi-net`'s vectored fast
    /// path). `None` for unbatched transports. Checked by SPI046
    /// against the credit window in messages: a batch larger than the
    /// window can never fill before the window forces a flush, so the
    /// configuration is lying about its own amortization.
    pub batch_msgs: Option<u64>,
}

/// Everything a pass may inspect. Only `graph` is mandatory.
pub struct AnalysisInput<'a> {
    /// The SDF graph under analysis (possibly with dynamic-rate edges).
    pub graph: &'a SdfGraph,
    /// VTS conversion of `graph`, if already computed. When absent, VTS
    /// passes convert on the fly.
    pub vts: Option<&'a VtsConversion>,
    /// Length-signalling scheme chosen for dynamic tokens.
    pub signal: Option<LengthSignal>,
    /// Declared FIFO payload capacity in bytes per edge, when the
    /// hardware depths are fixed up front.
    pub fifo_depths: Option<&'a HashMap<EdgeId, u64>>,
    /// The interprocessor-communication graph of the chosen schedule.
    pub ipc: Option<&'a IpcGraph>,
    /// The synchronization graph after protocol selection (and after
    /// resynchronization, if it ran).
    pub sync: Option<&'a SyncGraph>,
    /// Proof artifact of a certified resynchronization run; checked by
    /// the `ResyncCertification` pass (SPI061/SPI062) against `sync`.
    pub resync_cert: Option<&'a ResyncCertificate>,
    /// Protocol chosen per dataflow edge with at least one IPC instance.
    pub protocols: Option<&'a HashMap<EdgeId, Protocol>>,
    /// Transport capacities declared per edge by the execution layer.
    pub transports: Option<&'a HashMap<EdgeId, TransportDecl>>,
    /// Socket transports declared for **cross-partition** edges of a
    /// distributed deployment: the sender-side credit window each edge
    /// was granted. Only edges that cross a node boundary appear here.
    /// Checked by SPI045 against the eq. (2) byte requirement.
    pub net_transports: Option<&'a HashMap<EdgeId, TransportDecl>>,
    /// Aggregated hardware cost of the system.
    pub resources: Option<ResourceEstimate>,
    /// Target device; defaults to the paper's Virtex-4 SX35 when
    /// `resources` is given without one.
    pub device: Option<Device>,
}

impl<'a> AnalysisInput<'a> {
    /// Graph-only input: runs the structural passes.
    pub fn new(graph: &'a SdfGraph) -> Self {
        AnalysisInput {
            graph,
            vts: None,
            signal: None,
            fifo_depths: None,
            ipc: None,
            sync: None,
            resync_cert: None,
            protocols: None,
            transports: None,
            net_transports: None,
            resources: None,
            device: None,
        }
    }

    /// Attaches a precomputed VTS conversion.
    pub fn with_vts(mut self, vts: &'a VtsConversion) -> Self {
        self.vts = Some(vts);
        self
    }

    /// Declares the length-signalling scheme.
    pub fn with_signal(mut self, signal: LengthSignal) -> Self {
        self.signal = Some(signal);
        self
    }

    /// Declares fixed FIFO payload capacities (bytes per edge).
    pub fn with_fifo_depths(mut self, depths: &'a HashMap<EdgeId, u64>) -> Self {
        self.fifo_depths = Some(depths);
        self
    }

    /// Attaches the IPC graph of the schedule.
    pub fn with_ipc(mut self, ipc: &'a IpcGraph) -> Self {
        self.ipc = Some(ipc);
        self
    }

    /// Attaches the synchronization graph.
    pub fn with_sync(mut self, sync: &'a SyncGraph) -> Self {
        self.sync = Some(sync);
        self
    }

    /// Attaches the proof artifact of a certified resynchronization
    /// run, enabling the SPI061/SPI062 certification checks.
    pub fn with_resync_cert(mut self, cert: &'a ResyncCertificate) -> Self {
        self.resync_cert = Some(cert);
        self
    }

    /// Attaches the per-edge protocol decisions.
    pub fn with_protocols(mut self, protocols: &'a HashMap<EdgeId, Protocol>) -> Self {
        self.protocols = Some(protocols);
        self
    }

    /// Declares the runtime transport allocated per edge (capacity and
    /// largest framed message), enabling the SPI043 capacity check.
    pub fn with_transports(mut self, transports: &'a HashMap<EdgeId, TransportDecl>) -> Self {
        self.transports = Some(transports);
        self
    }

    /// Declares the socket transports of a partitioned deployment: one
    /// entry per cross-partition edge with the sender-side credit
    /// window it was granted, enabling the SPI045 under-run check.
    pub fn with_net_transports(
        mut self,
        net_transports: &'a HashMap<EdgeId, TransportDecl>,
    ) -> Self {
        self.net_transports = Some(net_transports);
        self
    }

    /// Attaches the aggregated resource estimate (and optional device).
    pub fn with_resources(mut self, used: ResourceEstimate, device: Option<Device>) -> Self {
        self.resources = Some(used);
        self.device = device;
        self
    }

    /// Resolves the actor name for messages, tolerating bad ids.
    pub(crate) fn actor_name(&self, id: spi_dataflow::ActorId) -> String {
        self.graph
            .try_actor(id)
            .map(|a| a.name.clone())
            .unwrap_or_else(|_| format!("{id}"))
    }
}

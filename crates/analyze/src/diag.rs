//! Diagnostics: the unit of output of every analysis pass.

use std::fmt;

use serde::{Deserialize, Serialize};

use spi_dataflow::{ActorId, EdgeId};
use spi_sched::ProcId;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational note; no action needed.
    Info,
    /// Likely suboptimal or fragile, but the system can still be built
    /// and run correctly.
    Warning,
    /// The system is wrong: it cannot be scheduled, would deadlock, race
    /// or overflow. Builds must be aborted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the system a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Locus {
    /// The system as a whole (or no more precise location exists).
    System,
    /// One actor.
    Actor(ActorId),
    /// One edge.
    Edge(EdgeId),
    /// A directed cycle through the listed actors.
    Cycle(Vec<ActorId>),
    /// A pair of processors whose interaction is at fault.
    Processors(ProcId, ProcId),
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::System => write!(f, "system"),
            Locus::Actor(a) => write!(f, "actor {a}"),
            Locus::Edge(e) => write!(f, "edge {e}"),
            Locus::Cycle(actors) => {
                write!(f, "cycle ")?;
                for (i, a) in actors.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{a}")?;
                }
                if let Some(first) = actors.first() {
                    write!(f, " -> {first}")?;
                }
                Ok(())
            }
            Locus::Processors(a, b) => write!(f, "processors {a} and {b}"),
        }
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code (`SPI001`…); see the crate docs for
    /// the full table.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable explanation, with actor/edge names resolved.
    pub message: String,
    /// Structural location of the finding.
    pub locus: Locus,
    /// What to do about it, when the analyzer has a concrete suggestion.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        locus: Locus,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            locus,
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// Renders in the compiler-style human format.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.locus
        );
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  help: {s}"));
        }
        out
    }

    /// Renders as a JSON object (hand-rolled; stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{},", json_str(self.code)));
        out.push_str(&format!(
            "\"severity\":{},",
            json_str(&self.severity.to_string())
        ));
        out.push_str(&format!("\"message\":{},", json_str(&self.message)));
        out.push_str("\"locus\":");
        match &self.locus {
            Locus::System => out.push_str("{\"kind\":\"system\"}"),
            Locus::Actor(a) => out.push_str(&format!("{{\"kind\":\"actor\",\"actor\":{}}}", a.0)),
            Locus::Edge(e) => out.push_str(&format!("{{\"kind\":\"edge\",\"edge\":{}}}", e.0)),
            Locus::Cycle(actors) => {
                let ids: Vec<String> = actors.iter().map(|a| a.0.to_string()).collect();
                out.push_str(&format!(
                    "{{\"kind\":\"cycle\",\"actors\":[{}]}}",
                    ids.join(",")
                ));
            }
            Locus::Processors(a, b) => out.push_str(&format!(
                "{{\"kind\":\"processors\",\"src\":{},\"dst\":{}}}",
                a.0, b.0
            )),
        }
        match &self.suggestion {
            Some(s) => out.push_str(&format!(",\"suggestion\":{}", json_str(s))),
            None => out.push_str(",\"suggestion\":null"),
        }
        out.push('}');
        out
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn human_rendering_includes_code_locus_and_help() {
        let d = Diagnostic::new(
            "SPI001",
            Severity::Warning,
            Locus::Actor(ActorId(2)),
            "dangling",
        )
        .with_suggestion("connect it");
        let s = d.render_human();
        assert!(s.contains("warning[SPI001]"));
        assert!(s.contains("actor a2"));
        assert!(s.contains("help: connect it"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::new(
            "SPI010",
            Severity::Error,
            Locus::Edge(EdgeId(3)),
            "rates \"2 -> 3\"\nline",
        );
        let j = d.render_json();
        assert!(j.contains("\\\"2 -> 3\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"edge\":3"));
    }

    #[test]
    fn cycle_locus_displays_closed() {
        let l = Locus::Cycle(vec![ActorId(0), ActorId(1)]);
        assert_eq!(l.to_string(), "cycle a0 -> a1 -> a0");
    }
}

//! Static verification and lint passes for SPI systems.
//!
//! The scheduler and builder in the rest of the workspace *reject* bad
//! inputs; this crate *explains* them. An [`Analyzer`] runs an ordered
//! pipeline of [`Pass`]es over an [`AnalysisInput`] — at minimum an SDF
//! graph, optionally the VTS conversion, IPC graph, synchronization
//! graph, protocol decisions and resource totals of a full build — and
//! produces [`Diagnostic`]s with stable codes (`SPI001`…), severities
//! and concrete suggestions. See [`passes`] for the full code table.
//!
//! Three consumers drive the design:
//!
//! * **builder pre-flight** — `SpiSystemBuilder::build` runs the
//!   pipeline before and during construction; error diagnostics abort
//!   the build with the full explanation instead of a bare scheduler
//!   error, warnings are collected on the built system;
//! * **`spi-lint`** — a CLI that analyzes DIF files and renders the
//!   report for humans or as JSON;
//! * **tests** — randomized stress tests use the analyzer as an oracle:
//!   a graph that builds and simulates correctly must produce no error
//!   diagnostics (zero false positives).
//!
//! ```
//! use spi_analyze::{Analyzer, AnalysisInput};
//! use spi_dataflow::SdfGraph;
//!
//! let mut g = SdfGraph::new();
//! let a = g.add_actor("src", 10);
//! let b = g.add_actor("dst", 10);
//! g.add_edge(a, b, 2, 3, 0, 4).unwrap();
//! let report = Analyzer::default_pipeline().run(&AnalysisInput::new(&g));
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod diag;
mod input;
pub mod passes;

pub use analyzer::{AnalysisReport, Analyzer, Pass};
pub use diag::{Diagnostic, Locus, Severity};
pub use input::{AnalysisInput, TransportDecl};

/// Convenience: run the default pipeline on a bare graph.
pub fn analyze_graph(graph: &spi_dataflow::SdfGraph) -> AnalysisReport {
    Analyzer::default_pipeline().run(&AnalysisInput::new(graph))
}

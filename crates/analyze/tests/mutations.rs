//! Mutation tests: start from a known-good graph, break it one way,
//! and assert the exact diagnostic code fires. Every pass of the
//! default pipeline has at least one mutation here, plus a clean-graph
//! check proving the mutations (not the baseline) trigger the codes.

use std::collections::HashMap;

use spi_analyze::{AnalysisInput, Analyzer, Severity};
use spi_dataflow::{EdgeId, LengthSignal, PrecedenceGraph, SdfGraph, VtsConversion};
use spi_platform::{Device, ResourceEstimate};
use spi_sched::{
    Assignment, IpcEdgeKind, IpcGraph, ProcId, Protocol, SelfTimedSchedule, SyncGraph,
};

/// A small known-good pipeline: src -2:3-> mid -1:1-> sink.
fn good_graph() -> SdfGraph {
    let mut g = SdfGraph::new();
    let a = g.add_actor("src", 10);
    let b = g.add_actor("mid", 20);
    let c = g.add_actor("sink", 15);
    g.add_edge(a, b, 2, 3, 0, 4).unwrap();
    g.add_edge(b, c, 1, 1, 0, 4).unwrap();
    g
}

fn analyze(g: &SdfGraph) -> spi_analyze::AnalysisReport {
    Analyzer::default_pipeline().run(&AnalysisInput::new(g))
}

fn codes(report: &spi_analyze::AnalysisReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

/// Schedule derivation mirroring the builder: VTS, precedence expansion,
/// round-robin assignment, IPC graph, protocol map, sync graph.
struct Derived {
    vts: VtsConversion,
    ipc: IpcGraph,
    sync: SyncGraph,
    protocols: HashMap<EdgeId, Protocol>,
}

fn derive(
    g: &SdfGraph,
    procs: usize,
    protocol_of: impl Fn(EdgeId, Option<u64>) -> Protocol,
) -> Derived {
    let vts = VtsConversion::convert(g).unwrap();
    let cg = vts.graph().clone();
    let pg = PrecedenceGraph::expand(&cg).unwrap();
    let assignment = Assignment::by_actor(&pg, procs, |a| ProcId(a.0 % procs)).unwrap();
    let st = SelfTimedSchedule::from_assignment(&pg, assignment).unwrap();
    let ipc = IpcGraph::build(&cg, &pg, &st).unwrap();

    let bounds = ipc.buffer_bounds_by_edge();
    let protocols: HashMap<EdgeId, Protocol> = bounds
        .iter()
        .map(|(&via, &b)| (via, protocol_of(via, b)))
        .collect();
    let protocols_view = protocols.clone();
    let sync = SyncGraph::from_ipc(&ipc, |e| {
        let IpcEdgeKind::Ipc { via } = e.kind else {
            unreachable!()
        };
        protocols_view[&via]
    })
    .unwrap();
    Derived {
        vts,
        ipc,
        sync,
        protocols,
    }
}

/// Sound default: BBS at the bound when it exists, else UBS.
fn default_protocol(_via: EdgeId, bound: Option<u64>) -> Protocol {
    match bound {
        Some(b) => Protocol::Bbs { capacity: b.max(1) },
        None => Protocol::Ubs { ack_window: 1 },
    }
}

#[test]
fn baseline_graph_is_clean() {
    let report = analyze(&good_graph());
    assert!(
        report.is_clean(),
        "baseline must be clean, got: {}",
        report.render_human()
    );
}

#[test]
fn baseline_schedule_is_clean() {
    let g = good_graph();
    let d = derive(&g, 2, default_protocol);
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols),
    );
    assert!(
        !report.has_errors(),
        "sound schedule must carry no errors: {}",
        report.render_human()
    );
}

// ---- well-formedness ----------------------------------------------------

#[test]
fn mutation_unconnected_actor_fires_spi001() {
    let mut g = good_graph();
    g.add_actor("orphan", 5);
    let report = analyze(&g);
    assert!(
        codes(&report).contains(&"SPI001"),
        "got: {}",
        report.render_human()
    );
    // An orphan is a warning, not a build-stopping error.
    assert!(!report.has_errors());
}

#[test]
fn mutation_underdelayed_self_loop_fires_spi003() {
    let mut g = good_graph();
    let a = g.actor_by_name("mid").unwrap();
    // State edge that consumes 2 per firing but holds only 1 token.
    g.add_edge(a, a, 2, 2, 1, 4).unwrap();
    let report = analyze(&g);
    assert!(
        codes(&report).contains(&"SPI003"),
        "got: {}",
        report.render_human()
    );
    assert!(report.has_errors());
}

#[test]
fn mutation_disconnected_subgraph_fires_spi004() {
    let mut g = good_graph();
    let x = g.add_actor("island1", 5);
    let y = g.add_actor("island2", 5);
    g.add_edge(x, y, 1, 1, 0, 4).unwrap();
    let report = analyze(&g);
    assert!(
        codes(&report).contains(&"SPI004"),
        "got: {}",
        report.render_human()
    );
}

// ---- rate consistency ---------------------------------------------------

#[test]
fn mutation_inconsistent_rates_fire_spi010_with_cycle() {
    let mut g = good_graph();
    let a = g.actor_by_name("src").unwrap();
    let c = g.actor_by_name("sink").unwrap();
    // src -> sink shortcut whose rates contradict the 2:3 and 1:1 path.
    g.add_edge(a, c, 1, 1, 0, 4).unwrap();
    let report = analyze(&g);
    let spi010: Vec<_> = report.with_code("SPI010").collect();
    assert_eq!(spi010.len(), 1, "got: {}", report.render_human());
    assert_eq!(spi010[0].severity, Severity::Error);
    // The explainer names the full undirected cycle and both ratios.
    assert!(spi010[0].message.contains("src"));
    assert!(spi010[0].message.contains("sink"));
    assert!(
        spi010[0].message.contains("q("),
        "must show the conflicting ratios"
    );
}

// ---- deadlock witness ---------------------------------------------------

#[test]
fn mutation_delay_free_cycle_fires_spi020_naming_the_cycle() {
    let mut g = good_graph();
    let b = g.actor_by_name("mid").unwrap();
    let c = g.actor_by_name("sink").unwrap();
    // Feedback with zero initial tokens: mid and sink wait on each other.
    g.add_edge(c, b, 1, 1, 0, 4).unwrap();
    let report = analyze(&g);
    let spi020: Vec<_> = report.with_code("SPI020").collect();
    assert_eq!(spi020.len(), 1, "got: {}", report.render_human());
    assert!(spi020[0].message.contains("mid") && spi020[0].message.contains("sink"));
    assert!(matches!(spi020[0].locus, spi_analyze::Locus::Cycle(_)));
}

#[test]
fn adding_delay_to_the_cycle_clears_spi020() {
    let mut g = good_graph();
    let b = g.actor_by_name("mid").unwrap();
    let c = g.actor_by_name("sink").unwrap();
    g.add_edge(c, b, 1, 1, 1, 4).unwrap();
    let report = analyze(&g);
    assert!(!report.has_errors(), "got: {}", report.render_human());
}

// ---- VTS soundness ------------------------------------------------------

#[test]
fn mutation_zero_byte_dynamic_tokens_fire_spi030() {
    let mut g = good_graph();
    let b = g.actor_by_name("mid").unwrap();
    let c = g.actor_by_name("sink").unwrap();
    // Dynamic edge with 0-byte tokens: b_max = 8 * 0 = 0.
    g.add_dynamic_edge(b, c, 8, 8, 0, 0).unwrap();
    let report = analyze(&g);
    let spi030: Vec<_> = report.with_code("SPI030").collect();
    assert!(
        spi030.iter().any(|d| d.severity == Severity::Error),
        "got: {}",
        report.render_human()
    );
}

#[test]
fn mutation_shallow_fifo_fires_spi031() {
    let mut g = good_graph();
    let b = g.actor_by_name("mid").unwrap();
    let c = g.actor_by_name("sink").unwrap();
    let e = g.add_dynamic_edge(b, c, 8, 8, 0, 4).unwrap();
    // eq. (1): packed capacity = c_sdf * b_max; declare far less.
    let depths: HashMap<EdgeId, u64> = [(e, 8u64)].into_iter().collect();
    let report =
        Analyzer::default_pipeline().run(&AnalysisInput::new(&g).with_fifo_depths(&depths));
    assert!(
        codes(&report).contains(&"SPI031"),
        "got: {}",
        report.render_human()
    );
}

#[test]
fn mutation_delimiter_signalling_fires_spi032() {
    let mut g = good_graph();
    let b = g.actor_by_name("mid").unwrap();
    let c = g.actor_by_name("sink").unwrap();
    g.add_dynamic_edge(b, c, 8, 8, 0, 4).unwrap();
    let report = Analyzer::default_pipeline()
        .run(&AnalysisInput::new(&g).with_signal(LengthSignal::Delimiter));
    let spi032: Vec<_> = report.with_code("SPI032").collect();
    assert!(!spi032.is_empty(), "got: {}", report.render_human());
    // Advisory only — until a declared depth cannot hold the frame.
    assert!(!report.has_errors());
    // Worst-case escaped frame (2*b_max+1 = 65) overflows a 40-byte FIFO.
    let depths: HashMap<EdgeId, u64> = g.edges().map(|(id, _)| (id, 40u64)).collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_signal(LengthSignal::Delimiter)
            .with_fifo_depths(&depths),
    );
    assert!(
        report
            .with_code("SPI032")
            .any(|d| d.severity == Severity::Error),
        "got: {}",
        report.render_human()
    );
}

// ---- protocol lints -----------------------------------------------------

/// Good graph plus a delayed feedback edge so the eq. (2) bound exists
/// for the cross edges.
fn bounded_graph() -> SdfGraph {
    let mut g = SdfGraph::new();
    let a = g.add_actor("src", 10);
    let b = g.add_actor("dst", 20);
    g.add_edge(a, b, 1, 1, 0, 4).unwrap();
    g.add_edge(b, a, 1, 1, 2, 4).unwrap();
    g
}

#[test]
fn mutation_ubs_despite_bound_fires_spi040() {
    let g = bounded_graph();
    let d = derive(&g, 2, |_, _| Protocol::Ubs { ack_window: 4 });
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols),
    );
    let spi040: Vec<_> = report.with_code("SPI040").collect();
    assert!(!spi040.is_empty(), "got: {}", report.render_human());
    assert!(spi040.iter().all(|d| d.severity == Severity::Warning));
    assert!(
        spi040[0].message.contains("5.1"),
        "cites the paper's selection rule"
    );
}

#[test]
fn mutation_bbs_without_bound_fires_spi041() {
    // Pure feed-forward two-actor split: no feedback path at all (not
    // even via shared-processor sequence edges), so eq. (2) has no bound.
    let mut g = SdfGraph::new();
    let a = g.add_actor("src", 10);
    let b = g.add_actor("dst", 20);
    g.add_edge(a, b, 1, 1, 0, 4).unwrap();
    let vts = VtsConversion::convert(&g).unwrap();
    let cg = vts.graph().clone();
    let pg = PrecedenceGraph::expand(&cg).unwrap();
    let assignment = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
    let st = SelfTimedSchedule::from_assignment(&pg, assignment).unwrap();
    let ipc = IpcGraph::build(&cg, &pg, &st).unwrap();
    // Declare BBS although the bound does not exist. (The sync graph is
    // built with UBS, since BBS feedback edges would be unconstructible.)
    let sync = SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 4 }).unwrap();
    let mut protocols: HashMap<EdgeId, Protocol> = HashMap::new();
    for e in ipc.ipc_edges() {
        if let IpcEdgeKind::Ipc { via } = e.kind {
            protocols.insert(via, Protocol::Bbs { capacity: 4 });
        }
    }
    assert!(!protocols.is_empty(), "schedule must cross processors");
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&vts)
            .with_ipc(&ipc)
            .with_sync(&sync)
            .with_protocols(&protocols),
    );
    assert!(
        codes(&report).contains(&"SPI041"),
        "got: {}",
        report.render_human()
    );
    assert!(report.has_errors());
}

#[test]
fn mutation_undersized_bbs_fires_spi042() {
    let g = bounded_graph();
    // Derive a *sound* schedule, then declare capacity 1 on every BBS
    // edge — below the eq. (2) bound of >= 2 on the forward edge. (The
    // sync graph itself stays sound; only the declared FIFO sizing lies.)
    let d = derive(&g, 2, default_protocol);
    let undersized: HashMap<EdgeId, Protocol> = d
        .protocols
        .iter()
        .map(|(&id, &p)| match p {
            Protocol::Bbs { .. } => (id, Protocol::Bbs { capacity: 1 }),
            other => (id, other),
        })
        .collect();
    assert!(
        undersized
            .values()
            .any(|p| matches!(p, Protocol::Bbs { .. })),
        "precondition: the schedule selects BBS somewhere"
    );
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&undersized),
    );
    assert!(
        codes(&report).contains(&"SPI042"),
        "got: {}",
        report.render_human()
    );
    assert!(report.has_errors());
}

#[test]
fn mutation_undersized_transport_fires_spi043() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // Declare one byte of runtime buffer for every edge — far below any
    // eq. (2) requirement — while the protocol choices stay sound.
    let starved: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_transports(&starved),
    );
    let spi043: Vec<_> = report.with_code("SPI043").collect();
    assert!(!spi043.is_empty(), "got: {}", report.render_human());
    assert!(spi043.iter().all(|d| d.severity == Severity::Warning));
    assert!(
        spi043[0].message.contains("eq. (2)"),
        "names the bound it checks against"
    );
}

#[test]
fn adequately_sized_transport_stays_clean_of_spi043() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // Generously sized: no edge can require more than this.
    let roomy: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_transports(&roomy),
    );
    assert!(
        !codes(&report).contains(&"SPI043"),
        "got: {}",
        report.render_human()
    );
}

#[test]
fn mutation_starved_pointer_pool_fires_spi044() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // The byte capacity is generous (SPI043 stays quiet), but the
    // pointer-exchange pool declares a single slot — far below the
    // `capacity / message` count the channel is supposed to hold.
    let starved_pool: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: Some(1),
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_transports(&starved_pool),
    );
    let spi044: Vec<_> = report.with_code("SPI044").collect();
    assert!(!spi044.is_empty(), "got: {}", report.render_human());
    assert!(spi044.iter().all(|d| d.severity == Severity::Warning));
    assert!(
        spi044[0].message.contains("eq. (1)"),
        "names the packed-token capacity it checks against"
    );
    assert!(
        !codes(&report).contains(&"SPI043"),
        "the byte capacity itself is sound; only the pool is starved"
    );
}

#[test]
fn matching_pointer_pool_stays_clean_of_spi044() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // PointerTransport::new's sizing rule: one slot per message the
    // declared capacity holds. Also covers copying transports, which
    // declare no pool at all.
    let sized: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .enumerate()
        .map(|(i, &id)| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: if i % 2 == 0 {
                        Some((1 << 20) / 6)
                    } else {
                        None
                    },
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_transports(&sized),
    );
    assert!(
        !codes(&report).contains(&"SPI044"),
        "got: {}",
        report.render_human()
    );
}

#[test]
fn mutation_starved_credit_window_fires_spi045() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // The in-memory transports are generous (SPI043 quiet), but the
    // cross-partition socket edges grant a one-byte credit window.
    let roomy: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let starved_net: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_transports(&roomy)
            .with_net_transports(&starved_net),
    );
    let spi045: Vec<_> = report.with_code("SPI045").collect();
    assert!(!spi045.is_empty(), "got: {}", report.render_human());
    assert!(spi045.iter().all(|d| d.severity == Severity::Warning));
    assert!(
        spi045[0].message.contains("credit window"),
        "names the mechanism that under-runs the bound"
    );
    assert!(
        !codes(&report).contains(&"SPI043"),
        "only the socket window is starved, not the in-memory buffers"
    );
}

#[test]
fn adequate_credit_window_stays_clean_of_spi045() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    let roomy: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: None,
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_net_transports(&roomy),
    );
    assert!(
        !codes(&report).contains(&"SPI045"),
        "got: {}",
        report.render_human()
    );
}

#[test]
fn mutation_oversized_batch_fires_spi046() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // A generous credit window (SPI045 quiet) of 1 MiB / 6-byte
    // messages, but the batch claims more records than the window can
    // ever hold in flight.
    let over_batched: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .map(|&id| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: Some(((1u64 << 20) / 6) + 1),
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_net_transports(&over_batched),
    );
    let spi046: Vec<_> = report.with_code("SPI046").collect();
    assert!(!spi046.is_empty(), "got: {}", report.render_human());
    assert!(spi046.iter().all(|d| d.severity == Severity::Warning));
    assert!(
        spi046[0].message.contains("credit window"),
        "names the bound the batch outruns"
    );
    assert!(
        !codes(&report).contains(&"SPI045"),
        "the window itself is adequately sized"
    );
}

#[test]
fn window_bounded_batch_stays_clean_of_spi046() {
    use spi_analyze::TransportDecl;
    let g = bounded_graph();
    let d = derive(&g, 2, default_protocol);
    // Batches at (and below) the window's message capacity are sound;
    // unbatched transports declare nothing at all.
    let bounded: HashMap<EdgeId, TransportDecl> = d
        .protocols
        .keys()
        .enumerate()
        .map(|(i, &id)| {
            (
                id,
                TransportDecl {
                    capacity_bytes: 1 << 20,
                    message_bytes_max: 6,
                    pool_slots: None,
                    batch_msgs: if i % 2 == 0 {
                        Some((1u64 << 20) / 6 / 2)
                    } else {
                        None
                    },
                },
            )
        })
        .collect();
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync)
            .with_protocols(&d.protocols)
            .with_net_transports(&bounded),
    );
    assert!(
        !codes(&report).contains(&"SPI046"),
        "got: {}",
        report.render_human()
    );
}

// ---- sync coverage ------------------------------------------------------

#[test]
fn mutation_missing_sync_edges_fire_spi050_with_processor_pair() {
    let g = good_graph();
    let vts = VtsConversion::convert(&g).unwrap();
    let cg = vts.graph().clone();
    let pg = PrecedenceGraph::expand(&cg).unwrap();

    // The real schedule: actors split across two processors.
    let two = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
    let st2 = SelfTimedSchedule::from_assignment(&pg, two).unwrap();
    let ipc2 = IpcGraph::build(&cg, &pg, &st2).unwrap();
    assert!(ipc2
        .ipc_edges()
        .any(|e| matches!(e.kind, IpcEdgeKind::Ipc { .. })));

    // The mutated sync graph: derived from a single-processor schedule,
    // so it never orders the cross-processor transfers above.
    let one = Assignment::by_actor(&pg, 1, |_| ProcId(0)).unwrap();
    let st1 = SelfTimedSchedule::from_assignment(&pg, one).unwrap();
    let ipc1 = IpcGraph::build(&cg, &pg, &st1).unwrap();
    let sync1 = SyncGraph::from_ipc(&ipc1, |_| Protocol::Ubs { ack_window: 1 }).unwrap();

    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&vts)
            .with_ipc(&ipc2)
            .with_sync(&sync1),
    );
    let spi050: Vec<_> = report.with_code("SPI050").collect();
    assert!(!spi050.is_empty(), "got: {}", report.render_human());
    assert!(spi050.iter().all(|d| d.severity == Severity::Error));
    assert!(
        spi050
            .iter()
            .all(|d| matches!(d.locus, spi_analyze::Locus::Processors(_, _))),
        "race reports name the processor pair"
    );
}

#[test]
fn intact_sync_graph_passes_spi050() {
    let g = good_graph();
    let d = derive(&g, 2, default_protocol);
    let report = Analyzer::default_pipeline().run(
        &AnalysisInput::new(&g)
            .with_vts(&d.vts)
            .with_ipc(&d.ipc)
            .with_sync(&d.sync),
    );
    assert!(
        report.with_code("SPI050").next().is_none(),
        "got: {}",
        report.render_human()
    );
}

// ---- resync fixpoint ----------------------------------------------------

#[test]
fn mutation_unoptimized_sync_graph_fires_spi060() {
    // UBS everywhere leaves ack edges that data paths already cover.
    let g = bounded_graph();
    let d = derive(&g, 2, |_, _| Protocol::Ubs { ack_window: 4 });
    assert!(
        !d.sync.redundant_edges().is_empty(),
        "precondition: the unoptimized sync graph has redundancy"
    );
    let report = Analyzer::default_pipeline().run(&AnalysisInput::new(&g).with_sync(&d.sync));
    let spi060: Vec<_> = report.with_code("SPI060").collect();
    assert_eq!(spi060.len(), 1, "got: {}", report.render_human());
    assert_eq!(spi060[0].severity, Severity::Warning);

    // Running the optimization to its fixpoint clears the lint.
    let mut optimized = derive(&g, 2, |_, _| Protocol::Ubs { ack_window: 4 });
    optimized.sync.remove_redundant();
    let report =
        Analyzer::default_pipeline().run(&AnalysisInput::new(&g).with_sync(&optimized.sync));
    assert!(
        report.with_code("SPI060").next().is_none(),
        "got: {}",
        report.render_human()
    );
}

// ---- resource overcommit ------------------------------------------------

#[test]
fn mutation_overcommitted_device_fires_spi070() {
    let g = good_graph();
    let sx35 = Device::virtex4_sx35();
    // 120 % of the device's slices.
    let used = ResourceEstimate::new(sx35.capacity.slices * 12 / 10, 100, 100, 10, 10);
    let report =
        Analyzer::default_pipeline().run(&AnalysisInput::new(&g).with_resources(used, Some(sx35)));
    let spi070: Vec<_> = report.with_code("SPI070").collect();
    assert!(
        spi070.iter().any(|d| d.severity == Severity::Error),
        "declared device + >100% is an error: {}",
        report.render_human()
    );

    // Same estimate against the *defaulted* device: advisory only —
    // a simulated system need not fit real silicon.
    let report =
        Analyzer::default_pipeline().run(&AnalysisInput::new(&g).with_resources(used, None));
    assert!(report.with_code("SPI070").next().is_some());
    assert!(!report.has_errors(), "got: {}", report.render_human());

    // 85 % utilization: timing-closure warning either way.
    let warn_used = ResourceEstimate::new(sx35.capacity.slices * 85 / 100, 0, 0, 0, 0);
    let report = Analyzer::default_pipeline()
        .run(&AnalysisInput::new(&g).with_resources(warn_used, Some(sx35)));
    assert!(
        report
            .with_code("SPI070")
            .any(|d| d.severity == Severity::Warning),
        "got: {}",
        report.render_human()
    );
}

// ---- report plumbing ----------------------------------------------------

#[test]
fn reports_render_both_formats_and_sort_errors_first() {
    let mut g = good_graph();
    g.add_actor("orphan", 1); // SPI001 warning
    let b = g.actor_by_name("mid").unwrap();
    g.add_edge(b, b, 2, 2, 0, 4).unwrap(); // SPI003 error
    let report = analyze(&g);
    assert!(report.has_errors());
    assert_eq!(
        report.diagnostics[0].severity,
        Severity::Error,
        "errors sort first"
    );
    let human = report.render_human();
    assert!(human.contains("error[SPI003]") && human.contains("warning[SPI001]"));
    let json = report.render_json();
    assert!(json.contains("\"code\":\"SPI003\"") && json.contains("\"errors\":"));
}

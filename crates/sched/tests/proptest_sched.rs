//! Property-based tests of the scheduling and synchronization layer.

use proptest::prelude::*;

use spi_dataflow::{PrecedenceGraph, SdfGraph};
use spi_sched::{
    latency, maximum_cycle_ratio, Assignment, IpcGraph, ProcId, Protocol, SelfTimedSchedule,
    SyncGraph, WeightedEdge,
};

/// Strategy: a live random pipeline with a delayed feedback edge, plus a
/// processor count.
fn scenario() -> impl Strategy<Value = (SdfGraph, usize)> {
    (
        prop::collection::vec(1u64..40, 2..7), // exec times
        1usize..4,                             // processors
        1u64..4,                               // feedback delay
    )
        .prop_map(|(execs, procs, delay)| {
            let mut g = SdfGraph::new();
            let actors: Vec<_> = execs
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_actor(format!("v{i}"), c))
                .collect();
            for w in actors.windows(2) {
                g.add_edge(w[0], w[1], 1, 1, 0, 4).expect("edge");
            }
            g.add_edge(*actors.last().expect("nonempty"), actors[0], 1, 1, delay, 4)
                .expect("feedback");
            (g, procs)
        })
}

fn build_sync(g: &SdfGraph, procs: usize, ack: u64) -> SyncGraph {
    let pg = PrecedenceGraph::expand(g).expect("consistent");
    let assign = Assignment::by_actor(&pg, procs, |a| ProcId(a.0 % procs)).expect("assigned");
    let st = SelfTimedSchedule::from_assignment(&pg, assign).expect("scheduled");
    let ipc = IpcGraph::build(g, &pg, &st).expect("built");
    SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: ack }).expect("live")
}

proptest! {
    #[test]
    fn hlfet_schedules_are_always_valid((g, procs) in scenario()) {
        let pg = PrecedenceGraph::expand(&g).expect("consistent");
        let assign = Assignment::hlfet(&g, &pg, procs).expect("assigned");
        // from_assignment validates precedence internally; HLFET must
        // always produce a coverable assignment.
        let st = SelfTimedSchedule::from_assignment(&pg, assign).expect("valid");
        prop_assert_eq!(st.total_firings(), pg.firings().len());
    }

    #[test]
    fn resync_never_increases_cost_or_breaks_liveness((g, procs) in scenario()) {
        let mut sg = build_sync(&g, procs, 2);
        let before = sg.sync_cost();
        let report = sg.resynchronize(true);
        prop_assert!(report.sync_cost_after <= before);
        prop_assert_eq!(report.sync_cost_after, sg.sync_cost());
        prop_assert!(!sg.has_zero_delay_cycle());
    }

    #[test]
    fn resync_preserves_original_constraints((g, procs) in scenario()) {
        let original = build_sync(&g, procs, 1);
        let mut optimized = original.clone();
        optimized.resynchronize(false);
        // Min-plus closure of the optimized graph must still enforce
        // every original edge.
        let n = optimized.tasks().len();
        let mut dist = vec![vec![u64::MAX; n]; n];
        for (i, row) in dist.iter_mut().enumerate() { row[i] = 0; }
        for e in optimized.edges() {
            let d = &mut dist[e.from.0][e.to.0];
            *d = (*d).min(e.delay);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if dist[i][k] != u64::MAX && dist[k][j] != u64::MAX {
                        dist[i][j] = dist[i][j].min(dist[i][k] + dist[k][j]);
                    }
                }
            }
        }
        for e in original.edges() {
            prop_assert!(dist[e.from.0][e.to.0] <= e.delay);
        }
    }

    #[test]
    fn measured_period_never_beats_mcm((g, procs) in scenario()) {
        // The analytic maximum cycle mean lower-bounds the asymptotic
        // period; the measured finite-horizon period converges from
        // above (up to transient effects within tolerance).
        let sg = build_sync(&g, procs, 2);
        if let Some(mcm) = sg.iteration_period() {
            let measured = latency::measured_period(&sg, 48);
            prop_assert!(
                measured >= mcm * 0.95,
                "measured {measured} far below analytic bound {mcm}"
            );
        }
    }

    #[test]
    fn mcr_scales_linearly_with_weights(
        w1 in 1u64..50, w2 in 1u64..50, d in 1u64..5, scale in 2u64..5
    ) {
        let base = [
            WeightedEdge { from: 0, to: 1, weight: w1, delay: 0 },
            WeightedEdge { from: 1, to: 0, weight: w2, delay: d },
        ];
        let scaled: Vec<WeightedEdge> = base
            .iter()
            .map(|e| WeightedEdge { weight: e.weight * scale, ..*e })
            .collect();
        let r1 = maximum_cycle_ratio(2, &base).expect("cyclic");
        let r2 = maximum_cycle_ratio(2, &scaled).expect("cyclic");
        prop_assert!((r2 - r1 * scale as f64).abs() < 1e-6 * r2.max(1.0));
    }

    #[test]
    fn latency_is_monotone_under_added_constraints((g, procs) in scenario()) {
        // Removing redundant edges must not increase any task's first
        // completion (constraints only ever get weaker).
        let sg = build_sync(&g, procs, 2);
        let before = latency::self_timed_times(&sg, 1);
        let mut reduced = sg.clone();
        reduced.remove_redundant();
        let after = latency::self_timed_times(&reduced, 1);
        for t in 0..sg.tasks().len() {
            prop_assert!(after[0][t].1 <= before[0][t].1);
        }
    }
}

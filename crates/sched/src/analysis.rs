//! Throughput analysis: maximum cycle mean / cycle ratio.
//!
//! For a self-timed implementation, the asymptotic iteration period
//! equals the *maximum cycle ratio* of the synchronization graph:
//! `max over cycles C of (Σ execution time on C) / (Σ delay on C)`
//! (Sriram & Bhattacharyya). This module computes it with a
//! binary-search (Lawler) scheme over Bellman–Ford positive-cycle
//! detection — robust for the small, possibly non-strongly-connected
//! graphs that app schedules produce.

use crate::ipc_graph::Task;
use crate::sync_graph::SyncEdge;

/// A generic weighted edge for cycle-ratio computation: traversing the
/// edge accrues `weight` time and consumes `delay` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedEdge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Time accrued along the edge (typically `exec(from)`).
    pub weight: u64,
    /// Tokens (iteration delays) on the edge.
    pub delay: u64,
}

/// Maximum cycle ratio `max_C Σweight/Σdelay` of a directed graph.
///
/// Returns:
/// * `None` if the graph has no directed cycle;
/// * `Some(f64::INFINITY)` if some cycle has positive weight and zero
///   delay (a self-timed deadlock);
/// * the finite maximum otherwise (to ~1e-9 relative precision).
///
/// # Examples
///
/// ```
/// use spi_sched::{maximum_cycle_ratio, WeightedEdge};
///
/// // Two-node loop: 10 + 20 cycles of work, 1 token → period 30.
/// let edges = [
///     WeightedEdge { from: 0, to: 1, weight: 10, delay: 0 },
///     WeightedEdge { from: 1, to: 0, weight: 20, delay: 1 },
/// ];
/// let mcr = maximum_cycle_ratio(2, &edges).expect("cyclic");
/// assert!((mcr - 30.0).abs() < 1e-6);
/// ```
pub fn maximum_cycle_ratio(n: usize, edges: &[WeightedEdge]) -> Option<f64> {
    if n == 0 || edges.is_empty() {
        return None;
    }
    if !has_cycle(n, edges, |_| true) {
        return None;
    }
    // Zero-delay positive-weight cycle → infinite ratio.
    if has_cycle(n, edges, |e| e.delay == 0) {
        // Check the zero-delay cycle actually accrues weight; a cycle of
        // zero-weight zero-delay edges is a degenerate no-op.
        if has_positive_cycle(n, edges, f64::INFINITY) {
            return Some(f64::INFINITY);
        }
    }

    let mut lo = 0.0_f64;
    let mut hi: f64 = edges.iter().map(|e| e.weight as f64).sum::<f64>().max(1.0);
    // λ < MCR  ⟺  a positive cycle exists under weights w − λ·d.
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if has_positive_cycle(n, edges, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Convenience wrapper over a synchronization graph's tasks and edges:
/// edge weight = execution time of the source task.
pub fn max_cycle_mean(tasks: &[Task], edges: &[SyncEdge]) -> Option<f64> {
    let wedges: Vec<WeightedEdge> = edges
        .iter()
        .map(|e| WeightedEdge {
            from: e.from.0,
            to: e.to.0,
            weight: tasks[e.from.0].exec_cycles,
            delay: e.delay,
        })
        .collect();
    maximum_cycle_ratio(tasks.len(), &wedges)
}

/// Classic parallel-speedup bounds of one graph iteration: the total
/// work and the critical path of the delay-0 precedence structure.
/// `speedup ≤ min(n, total_work / critical_path)`; the figures-6/7
/// saturation points follow directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeedupBounds {
    /// Σ execution cycles of every firing in one iteration.
    pub total_work_cycles: u64,
    /// Longest dependence chain (cycles) within one iteration.
    pub critical_path_cycles: u64,
}

impl SpeedupBounds {
    /// The asymptotic speedup limit `total / critical` (Brent's bound).
    pub fn max_speedup(&self) -> f64 {
        self.total_work_cycles as f64 / self.critical_path_cycles.max(1) as f64
    }
}

/// Computes [`SpeedupBounds`] for one iteration of a consistent graph.
///
/// # Errors
///
/// Anything [`spi_dataflow::PrecedenceGraph::expand`] can return.
pub fn speedup_bounds(
    graph: &spi_dataflow::SdfGraph,
) -> Result<SpeedupBounds, spi_dataflow::DataflowError> {
    let pg = spi_dataflow::PrecedenceGraph::expand(graph)?;
    let firings = pg.firings();
    let exec = |f: &spi_dataflow::Firing| graph.actor(f.actor).exec_cycles;
    let total_work_cycles: u64 = firings.iter().map(exec).sum();

    use std::collections::HashMap;
    let idx: HashMap<spi_dataflow::Firing, usize> =
        firings.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let order = pg
        .topological_order()
        .expect("APG of a consistent graph is acyclic");
    let mut finish = vec![0u64; firings.len()];
    for f in order {
        let u = idx[&f];
        let ready = pg
            .apg_edges()
            .filter(|e| e.to == f)
            .map(|e| finish[idx[&e.from]])
            .max()
            .unwrap_or(0);
        finish[u] = ready + exec(&f);
    }
    Ok(SpeedupBounds {
        total_work_cycles,
        critical_path_cycles: finish.into_iter().max().unwrap_or(0),
    })
}

/// Cycle detection over the subgraph of edges passing `filter`.
fn has_cycle(n: usize, edges: &[WeightedEdge], filter: impl Fn(&WeightedEdge) -> bool) -> bool {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges.iter().filter(|e| filter(e)) {
        adj[e.from].push(e.to);
    }
    let mut indeg = vec![0usize; n];
    for row in &adj {
        for &v in row {
            indeg[v] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(u) = stack.pop() {
        seen += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                stack.push(v);
            }
        }
    }
    seen != n
}

/// Does a cycle with `Σ(w − λ·d) > 0` exist? (Bellman–Ford, run from a
/// virtual super-source so disconnected components are covered.)
///
/// For `λ = ∞` the test degenerates to: does a positive-weight cycle of
/// zero-delay edges exist?
fn has_positive_cycle(n: usize, edges: &[WeightedEdge], lambda: f64) -> bool {
    let cost = |e: &WeightedEdge| -> f64 {
        if lambda.is_infinite() {
            if e.delay > 0 {
                return f64::NEG_INFINITY;
            }
            e.weight as f64
        } else {
            e.weight as f64 - lambda * e.delay as f64
        }
    };
    // Longest-path relaxation; start every node at 0 (super-source).
    let mut dist = vec![0.0_f64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in edges {
            let c = cost(e);
            if c == f64::NEG_INFINITY {
                continue;
            }
            let cand = dist[e.from] + c;
            if cand > dist[e.to] + 1e-12 {
                dist[e.to] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    // Still relaxing after n rounds → positive cycle.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_loop_ratio() {
        let edges = [
            WeightedEdge {
                from: 0,
                to: 1,
                weight: 5,
                delay: 0,
            },
            WeightedEdge {
                from: 1,
                to: 0,
                weight: 7,
                delay: 2,
            },
        ];
        let mcr = maximum_cycle_ratio(2, &edges).unwrap();
        assert!((mcr - 6.0).abs() < 1e-6, "(5+7)/2 = 6, got {mcr}");
    }

    #[test]
    fn acyclic_graph_has_no_ratio() {
        let edges = [
            WeightedEdge {
                from: 0,
                to: 1,
                weight: 5,
                delay: 0,
            },
            WeightedEdge {
                from: 1,
                to: 2,
                weight: 5,
                delay: 3,
            },
        ];
        assert_eq!(maximum_cycle_ratio(3, &edges), None);
    }

    #[test]
    fn zero_delay_cycle_is_infinite() {
        let edges = [
            WeightedEdge {
                from: 0,
                to: 1,
                weight: 5,
                delay: 0,
            },
            WeightedEdge {
                from: 1,
                to: 0,
                weight: 5,
                delay: 0,
            },
        ];
        assert_eq!(maximum_cycle_ratio(2, &edges), Some(f64::INFINITY));
    }

    #[test]
    fn max_over_multiple_cycles() {
        // Cycle A: ratio 10/1 = 10. Cycle B: ratio 30/2 = 15 → MCR 15.
        let edges = [
            WeightedEdge {
                from: 0,
                to: 0,
                weight: 10,
                delay: 1,
            },
            WeightedEdge {
                from: 1,
                to: 2,
                weight: 10,
                delay: 1,
            },
            WeightedEdge {
                from: 2,
                to: 1,
                weight: 20,
                delay: 1,
            },
        ];
        let mcr = maximum_cycle_ratio(3, &edges).unwrap();
        assert!((mcr - 15.0).abs() < 1e-6, "got {mcr}");
    }

    #[test]
    fn disconnected_components_both_considered() {
        let edges = [
            WeightedEdge {
                from: 0,
                to: 0,
                weight: 4,
                delay: 2,
            },
            WeightedEdge {
                from: 3,
                to: 3,
                weight: 9,
                delay: 1,
            },
        ];
        let mcr = maximum_cycle_ratio(4, &edges).unwrap();
        assert!((mcr - 9.0).abs() < 1e-6);
    }

    #[test]
    fn empty_graph_is_none() {
        assert_eq!(maximum_cycle_ratio(0, &[]), None);
        assert_eq!(maximum_cycle_ratio(5, &[]), None);
    }

    #[test]
    fn speedup_bounds_on_fork_join() {
        // A(10) → {B(100), C(100)} → D(10): work 220, critical 120.
        let mut g = spi_dataflow::SdfGraph::new();
        let a = g.add_actor("a", 10);
        let b = g.add_actor("b", 100);
        let c = g.add_actor("c", 100);
        let d = g.add_actor("d", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(a, c, 1, 1, 0, 4).unwrap();
        g.add_edge(b, d, 1, 1, 0, 4).unwrap();
        g.add_edge(c, d, 1, 1, 0, 4).unwrap();
        let bounds = speedup_bounds(&g).unwrap();
        assert_eq!(bounds.total_work_cycles, 220);
        assert_eq!(bounds.critical_path_cycles, 120);
        assert!((bounds.max_speedup() - 220.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_bounds_serial_chain_is_one() {
        let mut g = spi_dataflow::SdfGraph::new();
        let a = g.add_actor("a", 50);
        let b = g.add_actor("b", 50);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        let bounds = speedup_bounds(&g).unwrap();
        assert_eq!(bounds.total_work_cycles, bounds.critical_path_cycles);
        assert!((bounds.max_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_zero_delay_cycle_is_not_infinite() {
        // A degenerate cycle that costs nothing should not report deadlock;
        // the other cycle dominates.
        let edges = [
            WeightedEdge {
                from: 0,
                to: 1,
                weight: 0,
                delay: 0,
            },
            WeightedEdge {
                from: 1,
                to: 0,
                weight: 0,
                delay: 0,
            },
            WeightedEdge {
                from: 2,
                to: 2,
                weight: 8,
                delay: 4,
            },
        ];
        let mcr = maximum_cycle_ratio(3, &edges).unwrap();
        assert!((mcr - 2.0).abs() < 1e-6, "got {mcr}");
    }
}

//! Predicted-performance query API for self-timed schedules.
//!
//! The paper's eq. (3) semantics give every task of the synchronization
//! graph an analytic ASAP start/end time; [`crate::latency`] computes
//! those by fixed-point iteration. This module packages the numbers the
//! *runtime* side wants to compare itself against: an iteration-period
//! estimate (the maximum cycle mean the schedule converges to) and a
//! **makespan bound** for a finite horizon of iterations — the value a
//! trace-conformance checker holds an observed execution against.
//!
//! The bound is computed exactly (fixed point) up to a capped horizon
//! and extrapolated linearly past it using the worst of the analytic
//! period and the measured tail increment, rounded up — extrapolation
//! never undercuts the exact value for a longer horizon, because
//! self-timed iteration increments are non-increasing toward the steady
//! state (monotonicity of eq. (3) with fixed initial tokens).
//!
//! The numbers cover **computation and synchronization ordering only**:
//! the sync graph carries no per-message communication costs (channel
//! wire time, send/receive overhead). Callers that know those costs —
//! the SPI system builder does — add them as slack via
//! [`PredictedMetrics::makespan_with_slack`].

use std::time::Duration;

use crate::latency::self_timed_times;
use crate::sync_graph::SyncGraph;

/// Horizon up to which the makespan is computed by exact fixed point;
/// longer horizons extrapolate from this prefix.
const EXACT_HORIZON_CAP: u64 = 256;

/// Analytic performance prediction for a self-timed schedule over a
/// finite horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedMetrics {
    /// Number of tasks in the synchronization graph.
    pub tasks: usize,
    /// Iterations the prediction covers.
    pub horizon: u64,
    /// Completion cycle of the first iteration (pipeline fill latency).
    pub first_iteration_makespan: u64,
    /// Steady-state iteration period from maximum-cycle-mean analysis;
    /// `None` when the graph is acyclic (unbounded pipelining).
    pub iteration_period: Option<f64>,
    /// Compute-only makespan bound for `horizon` iterations, in cycles.
    pub makespan_cycles: u64,
}

impl PredictedMetrics {
    /// The makespan bound with communication slack added: a fixed
    /// startup allowance plus a per-iteration cost, both in cycles.
    /// Callers use this to turn the compute-only analytic number into a
    /// conservative envelope for an execution that also pays per-message
    /// channel costs.
    pub fn makespan_with_slack(&self, per_iteration_cycles: u64, fixed_cycles: u64) -> u64 {
        self.makespan_cycles
            .saturating_add(per_iteration_cycles.saturating_mul(self.horizon))
            .saturating_add(fixed_cycles)
    }

    /// A wall-clock **per-operation deadline** for a supervised run,
    /// derived from the analytic per-iteration cost: a healthy peer
    /// produces or consumes at least one token per iteration, so no
    /// single channel op should block longer than `safety_factor`
    /// iterations' worth of predicted cycles. Uses the worst of the
    /// pipeline-fill latency and the amortized steady-state iteration
    /// cost (fill dominates on deep pipelines, steady state on cyclic
    /// graphs throttled by feedback).
    ///
    /// Returns `None` when there is no basis for a deadline — zero
    /// clock, an empty horizon, or a zero-cost prediction — so callers
    /// fall back to their configured default rather than a 0 ns
    /// deadline that would fail every op.
    pub fn op_deadline(&self, clock_hz: u64, safety_factor: f64) -> Option<Duration> {
        // `is_finite` + `<= 0.0` also rejects NaN and infinities.
        if clock_hz == 0 || self.horizon == 0 || !safety_factor.is_finite() || safety_factor <= 0.0
        {
            return None;
        }
        let amortized = self.makespan_cycles.div_ceil(self.horizon);
        let per_iter_cycles = self.first_iteration_makespan.max(amortized);
        if per_iter_cycles == 0 {
            return None;
        }
        let nanos = (per_iter_cycles as f64) * safety_factor * 1e9 / (clock_hz as f64);
        Some(Duration::from_nanos(nanos.ceil() as u64))
    }
}

/// Computes [`PredictedMetrics`] for `iterations` of `graph` under the
/// self-timed (eq. 3) semantics.
pub fn predicted_metrics(graph: &SyncGraph, iterations: u64) -> PredictedMetrics {
    let tasks = graph.tasks().len();
    let period = graph.iteration_period();
    if tasks == 0 || iterations == 0 {
        return PredictedMetrics {
            tasks,
            horizon: iterations,
            first_iteration_makespan: 0,
            iteration_period: period,
            makespan_cycles: 0,
        };
    }

    let exact_horizon = iterations.min(EXACT_HORIZON_CAP);
    let times = self_timed_times(graph, exact_horizon);
    let makespan_at = |k: usize| -> u64 { times[k].iter().map(|&(_, e)| e).max().unwrap_or(0) };
    let first_iteration_makespan = makespan_at(0);
    let exact_makespan = makespan_at(exact_horizon as usize - 1);

    let makespan_cycles = if iterations <= exact_horizon {
        exact_makespan
    } else {
        // Extrapolate with the larger of the analytic period and the
        // measured tail increment (conservative for schedules still
        // settling at the cap), rounded up.
        let tail_inc = if exact_horizon >= 2 {
            exact_makespan - makespan_at(exact_horizon as usize - 2)
        } else {
            exact_makespan
        };
        let per_iter = period.unwrap_or(0.0).max(tail_inc as f64);
        let remaining = iterations - exact_horizon;
        exact_makespan.saturating_add((per_iter * remaining as f64).ceil() as u64)
    };

    PredictedMetrics {
        tasks,
        horizon: iterations,
        first_iteration_makespan,
        iteration_period: period,
        makespan_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, ProcId};
    use crate::ipc_graph::IpcGraph;
    use crate::selftimed::SelfTimedSchedule;
    use crate::sync_graph::Protocol;
    use spi_dataflow::{PrecedenceGraph, SdfGraph};

    fn two_proc_pipeline(exec: &[u64]) -> SyncGraph {
        let mut g = SdfGraph::new();
        let actors: Vec<_> = exec
            .iter()
            .enumerate()
            .map(|(i, &c)| g.add_actor(format!("v{i}"), c))
            .collect();
        for w in actors.windows(2) {
            g.add_edge(w[0], w[1], 1, 1, 0, 4).unwrap();
        }
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 2 }).unwrap()
    }

    #[test]
    fn one_iteration_matches_first_completion() {
        let sg = two_proc_pipeline(&[10, 20, 30]);
        let m = predicted_metrics(&sg, 1);
        assert_eq!(m.first_iteration_makespan, 60);
        assert_eq!(m.makespan_cycles, 60);
        assert_eq!(m.horizon, 1);
        assert_eq!(m.tasks, sg.tasks().len());
    }

    #[test]
    fn makespan_grows_monotonically_with_horizon() {
        let sg = two_proc_pipeline(&[10, 40, 10]);
        let mut prev = 0;
        for iters in [1, 2, 4, 8, 32] {
            let m = predicted_metrics(&sg, iters).makespan_cycles;
            assert!(m >= prev, "{iters} iterations: {m} < {prev}");
            prev = m;
        }
    }

    #[test]
    fn extrapolated_bound_dominates_exact_fixpoint() {
        let sg = two_proc_pipeline(&[10, 20, 5]);
        // 300 > EXACT_HORIZON_CAP forces the extrapolated path; the
        // directly computed fixpoint must stay under the bound.
        let predicted = predicted_metrics(&sg, 300).makespan_cycles;
        let exact = self_timed_times(&sg, 300)
            .last()
            .unwrap()
            .iter()
            .map(|&(_, e)| e)
            .max()
            .unwrap();
        assert!(
            predicted >= exact,
            "extrapolation must be conservative: {predicted} < {exact}"
        );
        // ...but not uselessly loose.
        assert!(
            predicted <= exact.saturating_mul(2),
            "{predicted} vs {exact}"
        );
    }

    #[test]
    fn slack_adds_per_iteration_and_fixed_terms() {
        let sg = two_proc_pipeline(&[10, 10]);
        let m = predicted_metrics(&sg, 5);
        assert_eq!(m.makespan_with_slack(7, 100), m.makespan_cycles + 35 + 100);
    }

    #[test]
    fn zero_iterations_predict_zero() {
        let sg = two_proc_pipeline(&[10, 10]);
        let m = predicted_metrics(&sg, 0);
        assert_eq!(m.makespan_cycles, 0);
        assert_eq!(m.first_iteration_makespan, 0);
    }

    #[test]
    fn op_deadline_scales_with_clock_and_safety_factor() {
        let sg = two_proc_pipeline(&[10, 20, 30]);
        let m = predicted_metrics(&sg, 1);
        // 60 cycles at 1 MHz = 60 µs per iteration; ×10 safety = 600 µs.
        let d = m.op_deadline(1_000_000, 10.0).unwrap();
        assert_eq!(d, Duration::from_micros(600));
        // Faster clock, tighter deadline.
        let d = m.op_deadline(1_000_000_000, 10.0).unwrap();
        assert_eq!(d, Duration::from_nanos(600));
    }

    #[test]
    fn op_deadline_uses_worst_of_fill_and_amortized_cost() {
        let sg = two_proc_pipeline(&[10, 40, 10]);
        let m = predicted_metrics(&sg, 64);
        let amortized = m.makespan_cycles.div_ceil(m.horizon);
        let worst = m.first_iteration_makespan.max(amortized);
        let d = m.op_deadline(1_000_000, 1.0).unwrap();
        assert_eq!(d, Duration::from_nanos(worst * 1_000));
    }

    #[test]
    fn op_deadline_degenerate_inputs_yield_none() {
        let sg = two_proc_pipeline(&[10, 10]);
        let m = predicted_metrics(&sg, 4);
        assert_eq!(m.op_deadline(0, 10.0), None);
        assert_eq!(m.op_deadline(1_000_000, 0.0), None);
        assert_eq!(m.op_deadline(1_000_000, -1.0), None);
        let empty = predicted_metrics(&sg, 0);
        assert_eq!(empty.op_deadline(1_000_000, 10.0), None);
    }
}

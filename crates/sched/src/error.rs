//! Error types for multiprocessor scheduling and synchronization analysis.

use std::fmt;

use spi_dataflow::{ActorId, DataflowError, Firing};

/// Errors produced by scheduling, IPC-graph and sync-graph analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// An underlying dataflow analysis failed.
    Dataflow(DataflowError),
    /// A firing was not assigned to any processor.
    UnassignedFiring(Firing),
    /// An actor was not assigned to any processor.
    UnassignedActor(ActorId),
    /// A processor index exceeded the declared processor count.
    ProcessorOutOfRange {
        /// Offending processor index.
        proc: usize,
        /// Number of processors declared.
        count: usize,
    },
    /// The requested processor count was zero.
    NoProcessors,
    /// A per-processor firing order violates intra-iteration precedence,
    /// so no self-timed execution of it can succeed.
    OrderViolatesPrecedence {
        /// The firing scheduled too early.
        early: Firing,
        /// The firing it depends on, scheduled later on the same processor.
        late: Firing,
    },
    /// The synchronization graph contains a zero-delay cycle, so the
    /// self-timed execution deadlocks.
    ZeroDelayCycle,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Dataflow(e) => write!(f, "dataflow analysis failed: {e}"),
            SchedError::UnassignedFiring(x) => write!(f, "firing {x} has no processor"),
            SchedError::UnassignedActor(a) => write!(f, "actor {a} has no processor"),
            SchedError::ProcessorOutOfRange { proc, count } => {
                write!(f, "processor {proc} out of range (count {count})")
            }
            SchedError::NoProcessors => write!(f, "processor count must be positive"),
            SchedError::OrderViolatesPrecedence { early, late } => {
                write!(f, "schedule places {early} before its producer {late}")
            }
            SchedError::ZeroDelayCycle => {
                write!(f, "synchronization graph has a zero-delay cycle (deadlock)")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Dataflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataflowError> for SchedError {
    fn from(e: DataflowError) -> Self {
        SchedError::Dataflow(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SchedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SchedError::ProcessorOutOfRange { proc: 5, count: 2 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('2'));
        let d: SchedError = DataflowError::EmptyGraph.into();
        assert!(d.to_string().contains("dataflow"));
    }

    #[test]
    fn source_chains_to_dataflow() {
        use std::error::Error;
        let e: SchedError = DataflowError::EmptyGraph.into();
        assert!(e.source().is_some());
        assert!(SchedError::NoProcessors.source().is_none());
    }
}

//! Lowering record-batching parameters from the schedule.
//!
//! The paper's resynchronization pass (§4) prunes redundant UBS
//! acknowledgements at *compile* time; batching data records and
//! coalescing credit acknowledgements is the same optimization applied
//! to the *transport*: fewer wire operations carrying the same token
//! traffic, with buffer bounds unchanged. A batch is always bounded by
//! the edge's credit window — B(e)/c(e) messages, eq. (1)/(2) — so a
//! batched sender can never hold back more records than the receiver's
//! declared allocation admits, and the static bounds certified by
//! `spi-verify` stay valid verbatim.
//!
//! The flush deadline is derived from the analytic iteration period
//! ([`crate::PredictedMetrics::op_deadline`] machinery): a Nagle-style
//! timer only pays off when it is short relative to how fast the
//! schedule actually produces tokens, so the deadline is a fraction of
//! the predicted per-iteration wall time, clamped to a sane range.

use std::time::Duration;

/// Upper clamp on a lowered batch: past a few dozen records per
/// `writev` the syscall amortization is already >95% and larger batches
/// only add latency.
pub const BATCH_MAX_MSGS_CAP: u64 = 32;

/// Shortest useful flush deadline — below this the timer fires faster
/// than a cross-core wakeup and degenerates to per-record flushing.
pub const FLUSH_AFTER_MIN: Duration = Duration::from_micros(20);

/// Longest tolerated flush deadline — bounds the latency a straggling
/// record can sit in a sender's pending batch.
pub const FLUSH_AFTER_MAX: Duration = Duration::from_millis(2);

/// Flush deadline used when the schedule offers no period prediction
/// (acyclic graph, zero clock).
pub const FLUSH_AFTER_DEFAULT: Duration = Duration::from_micros(200);

/// Per-edge batching parameters lowered from the schedule, consumed by
/// the network transport (`spi-net`) when a cross-partition edge is
/// instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlan {
    /// Most records a sender may coalesce into one vectored write.
    /// `1` disables batching (the legacy one-record-per-write path).
    pub max_msgs: u64,
    /// Nagle deadline: a pending batch older than this is flushed even
    /// if it is not full. Irrelevant when `max_msgs == 1`.
    pub flush_after: Duration,
}

impl BatchPlan {
    /// The unbatched plan: every record is written immediately.
    pub fn disabled() -> BatchPlan {
        BatchPlan {
            max_msgs: 1,
            flush_after: Duration::ZERO,
        }
    }

    /// Whether this plan coalesces records at all.
    pub fn is_batched(&self) -> bool {
        self.max_msgs > 1
    }
}

impl Default for BatchPlan {
    fn default() -> Self {
        BatchPlan::disabled()
    }
}

/// Derives the batch plan for one cross-partition edge.
///
/// `window_msgs` is the edge's credit window in messages —
/// `B(e) / c(e)`, i.e. `capacity_bytes / max_message_bytes` of the
/// lowered transport. The batch is capped at **half** the window so the
/// receiver always holds enough returned credit for the next batch
/// while the current one is in flight (double buffering), and at
/// [`BATCH_MAX_MSGS_CAP`] because syscall amortization saturates.
/// Windows of ≤ 3 messages lower to the unbatched plan — there is no
/// room to coalesce without stalling the pipeline.
///
/// `op_deadline` is the schedule's predicted per-operation wall time
/// ([`crate::PredictedMetrics::op_deadline`]); the flush deadline is an
/// eighth of it, clamped to `[`[`FLUSH_AFTER_MIN`]`, `[`FLUSH_AFTER_MAX`]`]`,
/// falling back to [`FLUSH_AFTER_DEFAULT`] when no prediction exists.
pub fn batch_plan(window_msgs: u64, op_deadline: Option<Duration>) -> BatchPlan {
    let max_msgs = (window_msgs / 2).min(BATCH_MAX_MSGS_CAP);
    if max_msgs <= 1 {
        return BatchPlan::disabled();
    }
    let flush_after = op_deadline
        .map(|d| (d / 8).clamp(FLUSH_AFTER_MIN, FLUSH_AFTER_MAX))
        .unwrap_or(FLUSH_AFTER_DEFAULT);
    BatchPlan {
        max_msgs,
        flush_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_windows_lower_to_the_unbatched_plan() {
        for w in 0..=3 {
            let p = batch_plan(w, None);
            assert_eq!(p, BatchPlan::disabled(), "window {w}");
            assert!(!p.is_batched());
        }
    }

    #[test]
    fn batch_never_exceeds_half_the_credit_window() {
        for w in 4..=128 {
            let p = batch_plan(w, None);
            assert!(
                p.max_msgs <= w / 2,
                "window {w}: batch {} > half-window",
                p.max_msgs
            );
        }
    }

    #[test]
    fn batch_is_capped_regardless_of_window() {
        let p = batch_plan(10_000, None);
        assert_eq!(p.max_msgs, BATCH_MAX_MSGS_CAP);
    }

    #[test]
    fn flush_deadline_tracks_the_predicted_period_within_clamps() {
        // 800 µs predicted op deadline → 100 µs flush (an eighth).
        let p = batch_plan(64, Some(Duration::from_micros(800)));
        assert_eq!(p.flush_after, Duration::from_micros(100));
        // Very fast schedule: clamped up to the minimum useful timer.
        let p = batch_plan(64, Some(Duration::from_micros(8)));
        assert_eq!(p.flush_after, FLUSH_AFTER_MIN);
        // Very slow schedule: clamped down so latency stays bounded.
        let p = batch_plan(64, Some(Duration::from_secs(1)));
        assert_eq!(p.flush_after, FLUSH_AFTER_MAX);
        // No prediction at all: the configured default.
        let p = batch_plan(64, None);
        assert_eq!(p.flush_after, FLUSH_AFTER_DEFAULT);
    }
}

//! Processor assignment: manual mappings and HLFET list scheduling.
//!
//! SPI's methodology (paper §2) assumes a *self-timed* implementation: a
//! compile-time processor assignment plus per-processor firing order,
//! with run-time synchronization only where data crosses processors.
//! This module produces the assignment, either from an explicit
//! actor→processor map or automatically via Highest-Level-First /
//! Estimated-Time (HLFET) list scheduling on the acyclic precedence
//! graph.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use spi_dataflow::{ActorId, Firing, PrecedenceGraph, SdfGraph};

use crate::error::{Result, SchedError};

/// A processor index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A firing→processor assignment over a fixed processor count.
///
/// # Examples
///
/// ```
/// use spi_dataflow::{SdfGraph, PrecedenceGraph};
/// use spi_sched::{Assignment, ProcId};
///
/// let mut g = SdfGraph::new();
/// let a = g.add_actor("A", 10);
/// let b = g.add_actor("B", 10);
/// g.add_edge(a, b, 1, 1, 0, 4)?;
/// let pg = PrecedenceGraph::expand(&g)?;
///
/// // Put every firing of A on P0 and of B on P1.
/// let assign = Assignment::by_actor(&pg, 2, |actor| {
///     if actor == a { ProcId(0) } else { ProcId(1) }
/// })?;
/// assert_eq!(assign.processor_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    map: HashMap<Firing, ProcId>,
    processors: usize,
}

impl Assignment {
    /// Builds an assignment by mapping each *actor* to one processor
    /// (all its firings follow).
    ///
    /// # Errors
    ///
    /// [`SchedError::NoProcessors`] for a zero processor count and
    /// [`SchedError::ProcessorOutOfRange`] if the function returns an
    /// index ≥ `processors`.
    pub fn by_actor(
        pg: &PrecedenceGraph,
        processors: usize,
        mut f: impl FnMut(ActorId) -> ProcId,
    ) -> Result<Self> {
        if processors == 0 {
            return Err(SchedError::NoProcessors);
        }
        let mut map = HashMap::new();
        for &firing in pg.firings() {
            let p = f(firing.actor);
            if p.0 >= processors {
                return Err(SchedError::ProcessorOutOfRange {
                    proc: p.0,
                    count: processors,
                });
            }
            map.insert(firing, p);
        }
        Ok(Assignment { map, processors })
    }

    /// Builds an assignment from an explicit firing→processor map.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoProcessors`], [`SchedError::ProcessorOutOfRange`],
    /// or [`SchedError::UnassignedFiring`] if a firing of `pg` is missing
    /// from `map`.
    pub fn from_map(
        pg: &PrecedenceGraph,
        processors: usize,
        map: HashMap<Firing, ProcId>,
    ) -> Result<Self> {
        if processors == 0 {
            return Err(SchedError::NoProcessors);
        }
        for &firing in pg.firings() {
            match map.get(&firing) {
                None => return Err(SchedError::UnassignedFiring(firing)),
                Some(p) if p.0 >= processors => {
                    return Err(SchedError::ProcessorOutOfRange {
                        proc: p.0,
                        count: processors,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(Assignment { map, processors })
    }

    /// HLFET (Highest Level First, Estimated Time) list scheduling.
    ///
    /// Levels are longest paths (in execution cycles) to any APG sink;
    /// ready firings are greedily placed on the earliest-available
    /// processor. A classic, deterministic baseline mapper.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoProcessors`] for a zero processor count.
    pub fn hlfet(graph: &SdfGraph, pg: &PrecedenceGraph, processors: usize) -> Result<Self> {
        if processors == 0 {
            return Err(SchedError::NoProcessors);
        }
        let firings = pg.firings();
        let n = firings.len();
        let idx: HashMap<Firing, usize> =
            firings.iter().enumerate().map(|(i, &f)| (f, i)).collect();

        // Build APG adjacency.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pred_count = vec![0usize; n];
        for p in pg.apg_edges() {
            let (u, v) = (idx[&p.from], idx[&p.to]);
            succ[u].push(v);
            pred_count[v] += 1;
        }

        // Static levels via reverse topological order.
        let exec = |i: usize| graph.actor(firings[i].actor).exec_cycles;
        let order = pg
            .topological_order()
            .expect("APG of a consistent graph is acyclic");
        let mut level = vec![0u64; n];
        for &f in order.iter().rev() {
            let u = idx[&f];
            let best_succ = succ[u].iter().map(|&v| level[v]).max().unwrap_or(0);
            level[u] = exec(u) + best_succ;
        }

        // List schedule: ready set ordered by (level desc, firing id asc).
        let mut ready: Vec<usize> = (0..n).filter(|&i| pred_count[i] == 0).collect();
        let mut proc_free = vec![0u64; processors];
        let mut finish = vec![0u64; n];
        let mut map = HashMap::new();
        let mut remaining_preds = pred_count;
        let mut scheduled = 0;
        while scheduled < n {
            ready.sort_by(|&x, &y| level[y].cmp(&level[x]).then(firings[x].cmp(&firings[y])));
            let u = ready.remove(0);
            // Earliest start = max(processor free, predecessors' finish).
            let data_ready = pg
                .apg_edges()
                .filter(|p| idx[&p.to] == u)
                .map(|p| finish[idx[&p.from]])
                .max()
                .unwrap_or(0);
            let (best_p, _) = proc_free
                .iter()
                .enumerate()
                .min_by_key(|&(p, &free)| (free.max(data_ready), p))
                .expect("processors > 0");
            let start = proc_free[best_p].max(data_ready);
            finish[u] = start + exec(u);
            proc_free[best_p] = finish[u];
            map.insert(firings[u], ProcId(best_p));
            scheduled += 1;
            for &v in &succ[u] {
                remaining_preds[v] -= 1;
                if remaining_preds[v] == 0 {
                    ready.push(v);
                }
            }
        }
        Ok(Assignment { map, processors })
    }

    /// ETF (Earliest Task First) list scheduling with communication
    /// costs: like HLFET, but a candidate's start time on a processor
    /// includes `comm_cycles(bytes)` for every cross-processor
    /// dependence, so the mapper weighs data locality against load
    /// balance. `comm_cycles` receives the producing edge's payload
    /// bytes per firing.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoProcessors`] for a zero processor count.
    pub fn etf(
        graph: &SdfGraph,
        pg: &PrecedenceGraph,
        processors: usize,
        mut comm_cycles: impl FnMut(u64) -> u64,
    ) -> Result<Self> {
        if processors == 0 {
            return Err(SchedError::NoProcessors);
        }
        let firings = pg.firings();
        let n = firings.len();
        let idx: HashMap<Firing, usize> =
            firings.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut remaining_preds = vec![0usize; n];
        for p in pg.apg_edges() {
            let (u, v) = (idx[&p.from], idx[&p.to]);
            succ[u].push(v);
            remaining_preds[v] += 1;
        }
        let exec = |i: usize| graph.actor(firings[i].actor).exec_cycles;
        // Per-edge transfer bytes per producer firing.
        let bytes_of = |via: spi_dataflow::EdgeId| {
            let e = graph.edge(via);
            u64::from(e.produce.bound()) * u64::from(e.token_bytes)
        };

        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
        let mut proc_free = vec![0u64; processors];
        let mut placed: Vec<Option<(usize, u64)>> = vec![None; n]; // (proc, finish)
        let mut map = HashMap::new();
        let mut scheduled = 0;
        while scheduled < n {
            // For every (ready firing, processor) pair compute the
            // earliest start; pick the global minimum.
            let mut best: Option<(u64, usize, usize)> = None; // (start, firing, proc)
            for &u in &ready {
                #[allow(clippy::needless_range_loop)] // p IS the processor index
                for p in 0..processors {
                    let mut data_ready = 0u64;
                    for dep in pg.apg_edges().filter(|d| idx[&d.to] == u) {
                        let (dp, dfinish) = placed[idx[&dep.from]].expect("preds scheduled first");
                        let arrive = if dp == p {
                            dfinish
                        } else {
                            dfinish + comm_cycles(bytes_of(dep.via))
                        };
                        data_ready = data_ready.max(arrive);
                    }
                    let start = proc_free[p].max(data_ready);
                    if best
                        .map(|(s, bu, bp)| (start, u, p) < (s, bu, bp))
                        .unwrap_or(true)
                    {
                        best = Some((start, u, p));
                    }
                }
            }
            let (start, u, p) = best.expect("ready set nonempty");
            let finish = start + exec(u);
            placed[u] = Some((p, finish));
            proc_free[p] = finish;
            map.insert(firings[u], ProcId(p));
            ready.retain(|&x| x != u);
            scheduled += 1;
            for &v in &succ[u] {
                remaining_preds[v] -= 1;
                if remaining_preds[v] == 0 {
                    ready.push(v);
                }
            }
        }
        Ok(Assignment { map, processors })
    }

    /// Processor of `firing`.
    ///
    /// # Errors
    ///
    /// [`SchedError::UnassignedFiring`] if the firing is unknown.
    pub fn processor(&self, firing: Firing) -> Result<ProcId> {
        self.map
            .get(&firing)
            .copied()
            .ok_or(SchedError::UnassignedFiring(firing))
    }

    /// Number of processors in the target.
    pub fn processor_count(&self) -> usize {
        self.processors
    }

    /// All firings assigned to `proc`, in deterministic (actor, k) order.
    pub fn firings_on(&self, proc: ProcId) -> Vec<Firing> {
        let mut v: Vec<Firing> = self
            .map
            .iter()
            .filter(|(_, &p)| p == proc)
            .map(|(&f, _)| f)
            .collect();
        v.sort();
        v
    }

    /// Number of distinct processors actually used.
    pub fn processors_used(&self) -> usize {
        let mut used: Vec<ProcId> = self.map.values().copied().collect();
        used.sort();
        used.dedup();
        used.len()
    }
}

/// A processor→node partition for distributed deployment.
///
/// The paper's self-timed schedules assume message passing on every
/// inter-processor edge; a partition splits the processor set across N
/// OS *node* processes so that intra-node edges keep their in-memory
/// transports while cross-node edges lower to sockets (`spi-net`). The
/// partition is purely a grouping of [`ProcId`]s — the assignment,
/// firing order and IPC graph are untouched, so eq. (1)/(2) bounds
/// carry over per edge regardless of where its endpoints land.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `node_of[p]` is the node hosting processor `p`.
    node_of: Vec<usize>,
    /// Number of nodes (some may host no processor).
    nodes: usize,
}

impl Partition {
    /// Splits `processors` into `nodes` contiguous blocks of (nearly)
    /// equal size: with `P` processors and `N` nodes, the first
    /// `P mod N` nodes take `⌈P/N⌉` processors each, the rest `⌊P/N⌋`.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoProcessors`] when either count is zero or there
    /// are more nodes than processors (an empty node cannot take part
    /// in the start barrier).
    pub fn blocks(processors: usize, nodes: usize) -> Result<Self> {
        if processors == 0 || nodes == 0 || nodes > processors {
            return Err(SchedError::NoProcessors);
        }
        let base = processors / nodes;
        let extra = processors % nodes;
        let mut node_of = Vec::with_capacity(processors);
        for node in 0..nodes {
            let take = base + usize::from(node < extra);
            node_of.extend(std::iter::repeat_n(node, take));
        }
        Ok(Partition { node_of, nodes })
    }

    /// Builds a partition from an explicit processor→node map.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoProcessors`] for an empty map, a node index ≥
    /// `nodes`, or a node hosting no processor.
    pub fn from_fn(
        processors: usize,
        nodes: usize,
        mut node_of: impl FnMut(ProcId) -> usize,
    ) -> Result<Self> {
        if processors == 0 || nodes == 0 {
            return Err(SchedError::NoProcessors);
        }
        let node_of: Vec<usize> = (0..processors).map(|p| node_of(ProcId(p))).collect();
        let mut seen = vec![false; nodes];
        for &n in &node_of {
            if n >= nodes {
                return Err(SchedError::ProcessorOutOfRange {
                    proc: n,
                    count: nodes,
                });
            }
            seen[n] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(SchedError::NoProcessors);
        }
        Ok(Partition { node_of, nodes })
    }

    /// The node hosting processor `proc`.
    ///
    /// # Errors
    ///
    /// [`SchedError::ProcessorOutOfRange`] for an unknown processor.
    pub fn node_of(&self, proc: ProcId) -> Result<usize> {
        self.node_of
            .get(proc.0)
            .copied()
            .ok_or(SchedError::ProcessorOutOfRange {
                proc: proc.0,
                count: self.node_of.len(),
            })
    }

    /// Number of node processes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of processors partitioned.
    pub fn processor_count(&self) -> usize {
        self.node_of.len()
    }

    /// The processors hosted by `node`, in ascending order.
    pub fn procs_on(&self, node: usize) -> Vec<ProcId> {
        self.node_of
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == node)
            .map(|(p, _)| ProcId(p))
            .collect()
    }

    /// Whether an edge between these processors crosses a node
    /// boundary (and therefore lowers to a socket transport).
    pub fn is_cross(&self, a: ProcId, b: ProcId) -> bool {
        match (self.node_of.get(a.0), self.node_of.get(b.0)) {
            (Some(na), Some(nb)) => na != nb,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_dataflow::SdfGraph;

    fn diamond() -> (SdfGraph, PrecedenceGraph) {
        // A -> B, A -> C, B -> D, C -> D (all rate 1).
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 30);
        let c = g.add_actor("C", 20);
        let d = g.add_actor("D", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(a, c, 1, 1, 0, 4).unwrap();
        g.add_edge(b, d, 1, 1, 0, 4).unwrap();
        g.add_edge(c, d, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        (g, pg)
    }

    #[test]
    fn by_actor_assigns_every_firing() {
        let (_, pg) = diamond();
        let assign = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
        for &f in pg.firings() {
            assert_eq!(assign.processor(f).unwrap().0, f.actor.0 % 2);
        }
        assert_eq!(assign.processor_count(), 2);
        assert_eq!(assign.processors_used(), 2);
    }

    #[test]
    fn by_actor_rejects_out_of_range() {
        let (_, pg) = diamond();
        assert!(matches!(
            Assignment::by_actor(&pg, 2, |_| ProcId(7)),
            Err(SchedError::ProcessorOutOfRange { proc: 7, count: 2 })
        ));
        assert!(matches!(
            Assignment::by_actor(&pg, 0, |_| ProcId(0)),
            Err(SchedError::NoProcessors)
        ));
    }

    #[test]
    fn from_map_requires_total_coverage() {
        let (_, pg) = diamond();
        let partial: HashMap<Firing, ProcId> = pg
            .firings()
            .iter()
            .take(2)
            .map(|&f| (f, ProcId(0)))
            .collect();
        assert!(matches!(
            Assignment::from_map(&pg, 1, partial),
            Err(SchedError::UnassignedFiring(_))
        ));
    }

    #[test]
    fn hlfet_uses_all_processors_when_parallelism_exists() {
        let (g, pg) = diamond();
        let assign = Assignment::hlfet(&g, &pg, 2).unwrap();
        // B and C are independent; a 2-PE HLFET must separate them.
        let b = g.actor_by_name("B").unwrap();
        let c = g.actor_by_name("C").unwrap();
        let pb = assign.processor(Firing { actor: b, k: 0 }).unwrap();
        let pc = assign.processor(Firing { actor: c, k: 0 }).unwrap();
        assert_ne!(pb, pc);
    }

    #[test]
    fn hlfet_single_processor_is_total() {
        let (g, pg) = diamond();
        let assign = Assignment::hlfet(&g, &pg, 1).unwrap();
        assert_eq!(assign.processors_used(), 1);
        assert_eq!(assign.firings_on(ProcId(0)).len(), pg.firings().len());
    }

    #[test]
    fn firings_on_is_sorted_and_disjoint() {
        let (g, pg) = diamond();
        let assign = Assignment::hlfet(&g, &pg, 2).unwrap();
        let on0 = assign.firings_on(ProcId(0));
        let on1 = assign.firings_on(ProcId(1));
        assert_eq!(on0.len() + on1.len(), pg.firings().len());
        let mut sorted = on0.clone();
        sorted.sort();
        assert_eq!(on0, sorted);
        assert!(on0.iter().all(|f| !on1.contains(f)));
    }

    #[test]
    fn etf_prefers_locality_under_heavy_comm() {
        // Chain a → b with huge transfer cost: ETF should co-locate
        // them; with zero comm cost it may split freely.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        g.add_edge(a, b, 1, 1, 0, 4096).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let heavy = Assignment::etf(&g, &pg, 2, |bytes| bytes).unwrap();
        let pa = heavy.processor(Firing { actor: a, k: 0 }).unwrap();
        let pb = heavy.processor(Firing { actor: b, k: 0 }).unwrap();
        assert_eq!(pa, pb, "huge comm cost must keep the chain together");
    }

    #[test]
    fn etf_spreads_independent_work() {
        // Fork A → {B, C} with cheap comm: B and C go to different PEs.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 5);
        let b = g.add_actor("B", 200);
        let c = g.add_actor("C", 200);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(a, c, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::etf(&g, &pg, 2, |_| 1).unwrap();
        let pb = assign.processor(Firing { actor: b, k: 0 }).unwrap();
        let pc = assign.processor(Firing { actor: c, k: 0 }).unwrap();
        assert_ne!(pb, pc, "independent heavy work must spread");
    }

    #[test]
    fn etf_covers_every_firing() {
        let (g, pg) = diamond();
        let assign = Assignment::etf(&g, &pg, 3, |b| b / 4).unwrap();
        for &f in pg.firings() {
            assert!(assign.processor(f).is_ok());
        }
        assert!(matches!(
            Assignment::etf(&g, &pg, 0, |_| 0),
            Err(SchedError::NoProcessors)
        ));
    }

    #[test]
    fn partition_blocks_are_contiguous_and_balanced() {
        let p = Partition::blocks(5, 2).unwrap();
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.processor_count(), 5);
        assert_eq!(p.procs_on(0), vec![ProcId(0), ProcId(1), ProcId(2)]);
        assert_eq!(p.procs_on(1), vec![ProcId(3), ProcId(4)]);
        assert!(p.is_cross(ProcId(2), ProcId(3)));
        assert!(!p.is_cross(ProcId(0), ProcId(2)));
        assert_eq!(p.node_of(ProcId(4)).unwrap(), 1);
    }

    #[test]
    fn partition_rejects_degenerate_shapes() {
        assert!(Partition::blocks(0, 1).is_err());
        assert!(Partition::blocks(3, 0).is_err());
        assert!(Partition::blocks(2, 3).is_err(), "empty node rejected");
        // Explicit map: node index out of range and empty node.
        assert!(Partition::from_fn(3, 2, |_| 5).is_err());
        assert!(Partition::from_fn(3, 2, |_| 0).is_err(), "node 1 empty");
    }

    #[test]
    fn partition_from_fn_follows_the_map() {
        let p = Partition::from_fn(3, 2, |proc| usize::from(proc.0 == 1)).unwrap();
        assert_eq!(p.procs_on(0), vec![ProcId(0), ProcId(2)]);
        assert_eq!(p.procs_on(1), vec![ProcId(1)]);
        assert!(p.is_cross(ProcId(0), ProcId(1)));
        assert!(!p.is_cross(ProcId(0), ProcId(2)));
        assert!(p.node_of(ProcId(9)).is_err());
    }

    #[test]
    fn hlfet_multirate_graph() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("src", 5);
        let b = g.add_actor("work", 50);
        let c = g.add_actor("snk", 5);
        g.add_edge(a, b, 4, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 4, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::hlfet(&g, &pg, 3).unwrap();
        // The four independent "work" firings should spread across PEs.
        assert!(assign.processors_used() >= 2);
    }
}

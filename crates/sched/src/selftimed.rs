//! Self-timed multiprocessor schedules (paper §2).
//!
//! A self-timed schedule fixes, at compile time, (a) which processor runs
//! each firing and (b) the firing order *within* each processor. Actual
//! start times are decided at run time by data availability — the robust
//! middle ground between fully-static and fully-dynamic scheduling that
//! the paper adopts for SPI.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use spi_dataflow::{Firing, PrecedenceGraph};

use crate::assign::{Assignment, ProcId};
use crate::error::{Result, SchedError};

/// A self-timed schedule: the assignment plus a total order per processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfTimedSchedule {
    assignment: Assignment,
    order: Vec<Vec<Firing>>,
}

impl SelfTimedSchedule {
    /// Derives per-processor orders from a topological order of the APG,
    /// the canonical way to turn an assignment into a valid self-timed
    /// schedule.
    ///
    /// # Errors
    ///
    /// [`SchedError::UnassignedFiring`] if the assignment does not cover
    /// every firing of `pg`.
    pub fn from_assignment(pg: &PrecedenceGraph, assignment: Assignment) -> Result<Self> {
        let topo = pg
            .topological_order()
            .expect("APG of a consistent graph is acyclic");
        let mut order = vec![Vec::new(); assignment.processor_count()];
        for f in topo {
            let p = assignment.processor(f)?;
            order[p.0].push(f);
        }
        Ok(SelfTimedSchedule { assignment, order })
    }

    /// Builds a schedule from explicit per-processor orders, validating
    /// that each order respects intra-iteration precedence among firings
    /// on the *same* processor (cross-processor ordering is enforced at
    /// run time by synchronization, but a processor-local inversion can
    /// never be executed).
    ///
    /// # Errors
    ///
    /// [`SchedError::OrderViolatesPrecedence`] on a local inversion, plus
    /// assignment coverage errors.
    pub fn from_orders(
        pg: &PrecedenceGraph,
        assignment: Assignment,
        order: Vec<Vec<Firing>>,
    ) -> Result<Self> {
        let pos: HashMap<Firing, (usize, usize)> = order
            .iter()
            .enumerate()
            .flat_map(|(p, list)| list.iter().enumerate().map(move |(i, &f)| (f, (p, i))))
            .collect();
        for &f in pg.firings() {
            let p = assignment.processor(f)?;
            if pos.get(&f).map(|&(pp, _)| pp) != Some(p.0) {
                return Err(SchedError::UnassignedFiring(f));
            }
        }
        for e in pg.apg_edges() {
            let (pf, fi) = pos[&e.from];
            let (pt, ti) = pos[&e.to];
            if pf == pt && ti < fi {
                return Err(SchedError::OrderViolatesPrecedence {
                    early: e.to,
                    late: e.from,
                });
            }
        }
        Ok(SelfTimedSchedule { assignment, order })
    }

    /// The underlying assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.assignment.processor_count()
    }

    /// Firing order on `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn order_on(&self, proc: ProcId) -> &[Firing] {
        &self.order[proc.0]
    }

    /// Iterates `(ProcId, order)` pairs.
    pub fn processors(&self) -> impl Iterator<Item = (ProcId, &[Firing])> {
        self.order
            .iter()
            .enumerate()
            .map(|(p, list)| (ProcId(p), list.as_slice()))
    }

    /// Total firings across processors (= one graph iteration).
    pub fn total_firings(&self) -> usize {
        self.order.iter().map(Vec::len).sum()
    }
}

impl std::fmt::Display for SelfTimedSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (p, order) in self.processors() {
            write!(f, "{p}:")?;
            for firing in order {
                write!(f, " {firing}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_dataflow::SdfGraph;

    fn pipeline() -> (SdfGraph, PrecedenceGraph) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        let c = g.add_actor("C", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        (g, pg)
    }

    #[test]
    fn from_assignment_covers_all_firings() {
        let (_, pg) = pipeline();
        let assign = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        assert_eq!(st.total_firings(), pg.firings().len());
        assert_eq!(st.processor_count(), 2);
    }

    #[test]
    fn from_assignment_orders_respect_precedence() {
        let (_, pg) = pipeline();
        // A and C on P0 — A must come first because A→B→C.
        let assign =
            Assignment::by_actor(&pg, 2, |a| ProcId(if a.0 == 1 { 1 } else { 0 })).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let p0 = st.order_on(ProcId(0));
        assert_eq!(p0.len(), 2);
        assert!(p0[0].actor.0 < p0[1].actor.0);
    }

    #[test]
    fn from_orders_rejects_local_inversion() {
        let (_, pg) = pipeline();
        let assign = Assignment::by_actor(&pg, 1, |_| ProcId(0)).unwrap();
        let mut firings: Vec<Firing> = pg.firings().to_vec();
        firings.reverse(); // C, B, A — violates A→B on the same processor
        let err = SelfTimedSchedule::from_orders(&pg, assign, vec![firings]);
        assert!(matches!(
            err,
            Err(SchedError::OrderViolatesPrecedence { .. })
        ));
    }

    #[test]
    fn from_orders_accepts_valid_order() {
        let (_, pg) = pipeline();
        let assign = Assignment::by_actor(&pg, 1, |_| ProcId(0)).unwrap();
        let firings: Vec<Firing> = pg.firings().to_vec();
        let st = SelfTimedSchedule::from_orders(&pg, assign, vec![firings]).unwrap();
        assert_eq!(st.total_firings(), 3);
    }

    #[test]
    fn display_lists_processors_and_orders() {
        let (_, pg) = pipeline();
        let assign = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let s = st.to_string();
        assert!(s.contains("P0:"));
        assert!(s.contains("P1:"));
        assert!(s.contains("a0#0"));
    }

    #[test]
    fn from_orders_detects_misplaced_firing() {
        let (_, pg) = pipeline();
        let assign = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
        // Put everything on P0's list although B is assigned to P1.
        let err =
            SelfTimedSchedule::from_orders(&pg, assign, vec![pg.firings().to_vec(), Vec::new()]);
        assert!(matches!(err, Err(SchedError::UnassignedFiring(_))));
    }
}

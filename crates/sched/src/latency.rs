//! Latency analysis of self-timed synchronization graphs.
//!
//! Resynchronization trades synchronization cost against *latency*: an
//! added ordering edge can delay a sink's first completion even when the
//! steady-state throughput is unchanged (Sriram & Bhattacharyya treat
//! this as latency-constrained resynchronization). This module computes
//! self-timed start/end times directly from the paper's eq. (3)
//! semantics — `start(v, k) ≥ end(v_j, k − delay)` — by fixed-point
//! iteration over a finite horizon, and derives first-output latency.

use std::collections::HashMap;

use crate::ipc_graph::TaskId;
use crate::sync_graph::SyncGraph;

/// Self-timed start/end times of every task over `iterations` graph
/// iterations, assuming unbounded processors honor only the
/// synchronization edges (ASAP schedule of eq. 3).
///
/// Returns `times[k][t] = (start, end)` for iteration `k` and task `t`.
/// Tasks with no enabling constraints start at cycle 0 of iteration 0.
pub fn self_timed_times(graph: &SyncGraph, iterations: u64) -> Vec<Vec<(u64, u64)>> {
    let n = graph.tasks().len();
    let iters = iterations as usize;
    let exec: Vec<u64> = graph.tasks().iter().map(|t| t.exec_cycles).collect();
    let mut times = vec![vec![(0u64, 0u64); n]; iters];

    // Iterate to fixed point: constraints only reference earlier or
    // same-iteration events, so a few sweeps converge (same-iteration
    // cycles are excluded by the zero-delay-cycle liveness check).
    let mut changed = true;
    let mut sweeps = 0;
    while changed && sweeps < n * iters + 2 {
        changed = false;
        sweeps += 1;
        for k in 0..iters {
            for t in 0..n {
                let mut start = 0u64;
                for e in graph.edges() {
                    if e.to.0 != t {
                        continue;
                    }
                    let dep_iter = k as i64 - e.delay as i64;
                    if dep_iter < 0 {
                        continue; // satisfied by initial state
                    }
                    let (_, dep_end) = times[dep_iter as usize][e.from.0];
                    start = start.max(dep_end);
                }
                let end = start + exec[t];
                if times[k][t] != (start, end) {
                    times[k][t] = (start, end);
                    changed = true;
                }
            }
        }
    }
    times
}

/// First-output latency: cycle at which `sink` first completes, under
/// the eq. (3) semantics. `None` if the task id is out of range.
pub fn first_completion(graph: &SyncGraph, sink: TaskId) -> Option<u64> {
    if sink.0 >= graph.tasks().len() {
        return None;
    }
    let times = self_timed_times(graph, 1);
    Some(times[0][sink.0].1)
}

/// Average iteration period measured over a finite horizon (converges to
/// the maximum cycle mean as the horizon grows).
pub fn measured_period(graph: &SyncGraph, iterations: u64) -> f64 {
    if iterations == 0 || graph.tasks().is_empty() {
        return 0.0;
    }
    let times = self_timed_times(graph, iterations);
    let last = times.last().expect("nonempty horizon");
    let first = times.first().expect("nonempty horizon");
    let makespan_last = last.iter().map(|&(_, e)| e).max().unwrap_or(0);
    let makespan_first = first.iter().map(|&(_, e)| e).max().unwrap_or(0);
    if iterations == 1 {
        makespan_last as f64
    } else {
        (makespan_last - makespan_first) as f64 / (iterations - 1) as f64
    }
}

/// Per-task latency report across the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// `(task, first start, first end)` in task-id order.
    pub first_iteration: Vec<(TaskId, u64, u64)>,
    /// Measured steady-state period.
    pub period: f64,
}

/// Computes the full latency report over a default 16-iteration horizon.
pub fn latency_report(graph: &SyncGraph) -> LatencyReport {
    let times = self_timed_times(graph, 1);
    let first_iteration = times[0]
        .iter()
        .enumerate()
        .map(|(i, &(s, e))| (TaskId(i), s, e))
        .collect();
    LatencyReport {
        first_iteration,
        period: measured_period(graph, 16),
    }
}

/// Map from firing label to first completion, convenient for tests.
pub fn first_completions_by_name(
    graph: &SyncGraph,
    names: &HashMap<TaskId, String>,
) -> HashMap<String, u64> {
    let times = self_timed_times(graph, 1);
    names
        .iter()
        .map(|(&t, name)| (name.clone(), times[0][t.0].1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, ProcId};
    use crate::ipc_graph::IpcGraph;
    use crate::selftimed::SelfTimedSchedule;
    use crate::sync_graph::Protocol;
    use spi_dataflow::{PrecedenceGraph, SdfGraph};

    fn two_proc_pipeline(exec: &[u64]) -> SyncGraph {
        let mut g = SdfGraph::new();
        let actors: Vec<_> = exec
            .iter()
            .enumerate()
            .map(|(i, &c)| g.add_actor(format!("v{i}"), c))
            .collect();
        for w in actors.windows(2) {
            g.add_edge(w[0], w[1], 1, 1, 0, 4).unwrap();
        }
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |a| ProcId(a.0 % 2)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 2 }).unwrap()
    }

    #[test]
    fn pipeline_latency_is_sum_of_stage_times() {
        let sg = two_proc_pipeline(&[10, 20, 30]);
        let times = self_timed_times(&sg, 1);
        // v0 at 0..10, v1 at 10..30, v2 at 30..60 (ignoring free seq edges
        // that only involve same-processor ordering v0 → v2… which adds
        // no wait because v2 starts after v1 anyway).
        let ends: Vec<u64> = times[0].iter().map(|&(_, e)| e).collect();
        assert_eq!(ends.iter().max(), Some(&60));
    }

    #[test]
    fn first_completion_matches_manual_chain() {
        let sg = two_proc_pipeline(&[5, 7]);
        // Task order in the sync graph follows processor order; find the
        // sink as the task with the largest completion.
        let times = self_timed_times(&sg, 1);
        let max_end = times[0].iter().map(|&(_, e)| e).max().unwrap();
        assert_eq!(max_end, 12);
        let sink = TaskId(
            times[0]
                .iter()
                .enumerate()
                .max_by_key(|&(_, &(_, e))| e)
                .unwrap()
                .0,
        );
        assert_eq!(first_completion(&sg, sink), Some(12));
        assert_eq!(first_completion(&sg, TaskId(99)), None);
    }

    #[test]
    fn measured_period_converges_to_mcm() {
        let sg = two_proc_pipeline(&[10, 40, 10]);
        let mcm = sg.iteration_period().expect("cyclic through loopbacks");
        let measured = measured_period(&sg, 64);
        assert!(
            (measured - mcm).abs() / mcm < 0.15,
            "measured {measured} vs analytic {mcm}"
        );
    }

    #[test]
    fn later_iterations_never_start_earlier() {
        let sg = two_proc_pipeline(&[10, 20, 30, 5]);
        let times = self_timed_times(&sg, 8);
        for (k, window) in times.windows(2).enumerate() {
            for (t, (prev, next)) in window[0].iter().zip(&window[1]).enumerate() {
                assert!(next.0 >= prev.0, "iteration {k} task {t}");
            }
        }
    }

    #[test]
    fn completions_by_name_maps_labels() {
        let sg = two_proc_pipeline(&[4, 6]);
        let names: HashMap<TaskId, String> = sg
            .tasks()
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i), format!("{}", t.firing.actor)))
            .collect();
        let map = first_completions_by_name(&sg, &names);
        assert_eq!(map.len(), 2);
        assert_eq!(map["a0"], 4);
        assert_eq!(map["a1"], 10);
    }

    #[test]
    fn latency_report_is_complete() {
        let sg = two_proc_pipeline(&[10, 20]);
        let report = latency_report(&sg);
        assert_eq!(report.first_iteration.len(), sg.tasks().len());
        assert!(report.period > 0.0);
    }
}

//! # spi-sched — multiprocessor scheduling & synchronization machinery
//!
//! The scheduling substrate of the DATE 2008 SPI reproduction:
//!
//! * [`Assignment`] / [`ProcId`] — firing→processor mapping (manual or
//!   HLFET list scheduling);
//! * [`SelfTimedSchedule`] — the self-timed model the paper adopts
//!   (compile-time order, run-time synchronization);
//! * [`IpcGraph`] — the §4.1 inter-processor communication graph with the
//!   eq. (2) IPC buffer bound;
//! * [`SyncGraph`] — synchronization-only view with redundant-edge
//!   elimination and greedy [`SyncGraph::resynchronize`] (§4.1);
//! * [`maximum_cycle_ratio`] — iteration-period (throughput) analysis.
//!
//! # Examples
//!
//! Map a pipeline onto two processors and measure the synchronization
//! cost before/after resynchronization:
//!
//! ```
//! use spi_dataflow::{PrecedenceGraph, SdfGraph};
//! use spi_sched::{Assignment, IpcGraph, ProcId, Protocol, SelfTimedSchedule, SyncGraph};
//!
//! let mut g = SdfGraph::new();
//! let a = g.add_actor("A", 10);
//! let b = g.add_actor("B", 10);
//! g.add_edge(a, b, 1, 1, 0, 4)?;
//! g.add_edge(b, a, 1, 1, 1, 4)?; // results feed the next iteration
//!
//! let pg = PrecedenceGraph::expand(&g)?;
//! let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0))?;
//! let st = SelfTimedSchedule::from_assignment(&pg, assign)?;
//! let ipc = IpcGraph::build(&g, &pg, &st)?;
//! let mut sync = SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 1 })?;
//! let report = sync.resynchronize(true);
//! assert!(report.sync_cost_after <= report.sync_cost_before);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod assign;
mod batch;
mod error;
mod ipc_graph;
pub mod latency;
mod predicted;
mod selftimed;
mod sync_graph;

pub use analysis::{
    max_cycle_mean, maximum_cycle_ratio, speedup_bounds, SpeedupBounds, WeightedEdge,
};
pub use assign::{Assignment, Partition, ProcId};
pub use batch::{
    batch_plan, BatchPlan, BATCH_MAX_MSGS_CAP, FLUSH_AFTER_DEFAULT, FLUSH_AFTER_MAX,
    FLUSH_AFTER_MIN,
};
pub use error::{Result, SchedError};
pub use ipc_graph::{IpcEdge, IpcEdgeKind, IpcGraph, Task, TaskId};
pub use latency::{
    first_completion, latency_report, measured_period, self_timed_times, LatencyReport,
};
pub use predicted::{predicted_metrics, PredictedMetrics};
pub use selftimed::SelfTimedSchedule;
pub use sync_graph::{
    Protocol, RedundancyProof, ResyncAddition, ResyncCertificate, ResyncReport, SyncEdge,
    SyncGraph, SyncKind,
};

//! Synchronization graphs and resynchronization (paper §4, §4.1).
//!
//! The synchronization graph `G_s` starts as a copy of `G_ipc` but tracks
//! only ordering constraints. Each *removable* synchronization edge costs
//! run-time work (a semaphore check, or for SPI's UBS protocol an
//! acknowledgement message). Two optimizations reduce that cost:
//!
//! 1. **Redundant-edge elimination** — a sync edge `(x → y, d)` is
//!    redundant when another `x → y` path has total delay ≤ `d`; its
//!    constraint is already enforced transitively. Removing *all*
//!    redundant edges at once is safe (Sriram & Bhattacharyya, ch. 5 of
//!    *Embedded Multiprocessors*).
//! 2. **Resynchronization** — deliberately *adding* a cheap sync edge can
//!    make several existing ones redundant; the paper applies this to
//!    prune SPI_UBS acknowledgement edges on distributed-memory targets.
//!    Optimal resynchronization reduces to set cover (NP-hard); we
//!    implement the standard greedy heuristic with an optional
//!    throughput-preservation guard.

use serde::{Deserialize, Serialize};

use spi_dataflow::EdgeId;

use crate::analysis::max_cycle_mean;
use crate::error::{Result, SchedError};
use crate::ipc_graph::{IpcEdgeKind, IpcGraph, Task, TaskId};

/// Classification of synchronization edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncKind {
    /// Processor-internal sequencing; enforced by the program counter,
    /// costs nothing, never removable.
    Sequence,
    /// Processor iteration loopback; also free.
    Loopback,
    /// "Data available" synchronization of an IPC edge (sender→receiver).
    Data {
        /// Application edge it derives from.
        via: EdgeId,
    },
    /// BBS back-pressure: receiver→sender edge whose delay is the buffer
    /// capacity minus the edge delay.
    Feedback {
        /// Application edge it derives from.
        via: EdgeId,
    },
    /// UBS acknowledgement message: receiver→sender.
    Ack {
        /// Application edge it derives from.
        via: EdgeId,
    },
    /// An edge added by resynchronization.
    Resync,
}

impl SyncKind {
    /// `true` if eliminating this edge saves run-time synchronization
    /// work (messages or semaphore operations).
    pub fn is_removable(&self) -> bool {
        !matches!(self, SyncKind::Sequence | SyncKind::Loopback)
    }
}

/// One synchronization edge: `start(to, k) ≥ end(from, k − delay)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyncEdge {
    /// Source task.
    pub from: TaskId,
    /// Destination task.
    pub to: TaskId,
    /// Iteration delay of the constraint.
    pub delay: u64,
    /// What the edge models.
    pub kind: SyncKind,
}

/// Synchronization protocol chosen for one IPC edge (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Bounded-buffer synchronization: usable when a static buffer bound
    /// is guaranteed; sender blocks via shared read/write pointers.
    Bbs {
        /// Buffer capacity in packed tokens (≥ the eq. (2) bound).
        capacity: u64,
    },
    /// Unbounded-buffer synchronization: growable buffer plus
    /// acknowledgement messages for consistency.
    Ubs {
        /// Outstanding unacknowledged messages allowed before the sender
        /// must block on an ack.
        ack_window: u64,
    },
}

/// The synchronization graph of a self-timed SPI implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncGraph {
    tasks: Vec<Task>,
    edges: Vec<SyncEdge>,
}

impl SyncGraph {
    /// Derives `G_s` from `G_ipc`, materializing each IPC edge's
    /// synchronization structure according to its protocol:
    /// every IPC edge contributes a forward [`SyncKind::Data`] edge;
    /// BBS edges add a [`SyncKind::Feedback`] back-pressure edge with
    /// delay `capacity − delay(e)`; UBS edges add a [`SyncKind::Ack`]
    /// edge with delay `ack_window + delay(e)`.
    ///
    /// # Errors
    ///
    /// [`SchedError::ZeroDelayCycle`] if a BBS capacity is smaller than
    /// the edge's delay (the back-pressure edge would need negative
    /// delay, i.e. the buffer cannot even hold the initial tokens).
    pub fn from_ipc(
        ipc: &IpcGraph,
        mut protocol_of: impl FnMut(&crate::ipc_graph::IpcEdge) -> Protocol,
    ) -> Result<Self> {
        let mut edges = Vec::new();
        for e in ipc.edges() {
            match e.kind {
                IpcEdgeKind::Sequence => edges.push(SyncEdge {
                    from: e.from,
                    to: e.to,
                    delay: e.delay,
                    kind: SyncKind::Sequence,
                }),
                IpcEdgeKind::Loopback => edges.push(SyncEdge {
                    from: e.from,
                    to: e.to,
                    delay: e.delay,
                    kind: SyncKind::Loopback,
                }),
                IpcEdgeKind::Ipc { via } => {
                    edges.push(SyncEdge {
                        from: e.from,
                        to: e.to,
                        delay: e.delay,
                        kind: SyncKind::Data { via },
                    });
                    match protocol_of(e) {
                        Protocol::Bbs { capacity } => {
                            if capacity < e.delay {
                                return Err(SchedError::ZeroDelayCycle);
                            }
                            edges.push(SyncEdge {
                                from: e.to,
                                to: e.from,
                                delay: capacity - e.delay,
                                kind: SyncKind::Feedback { via },
                            });
                        }
                        Protocol::Ubs { ack_window } => {
                            edges.push(SyncEdge {
                                from: e.to,
                                to: e.from,
                                delay: ack_window + e.delay,
                                kind: SyncKind::Ack { via },
                            });
                        }
                    }
                }
            }
        }
        let g = SyncGraph {
            tasks: ipc.tasks().to_vec(),
            edges,
        };
        if g.has_zero_delay_cycle() {
            return Err(SchedError::ZeroDelayCycle);
        }
        Ok(g)
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All synchronization edges.
    pub fn edges(&self) -> &[SyncEdge] {
        &self.edges
    }

    /// Number of removable synchronization edges — the paper's "net
    /// synchronization cost" metric (each costs messages/semaphore work
    /// per iteration).
    pub fn sync_cost(&self) -> usize {
        self.edges.iter().filter(|e| e.kind.is_removable()).count()
    }

    /// Number of UBS acknowledgement edges still present.
    pub fn ack_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| matches!(e.kind, SyncKind::Ack { .. }))
            .count()
    }

    /// All-pairs minimum path delays (min-plus Floyd–Warshall).
    /// `dist[u][v] == u64::MAX` means unreachable.
    fn all_pairs_min_delay(&self) -> Vec<Vec<u64>> {
        self.all_pairs_min_delay_with_next().0
    }

    /// Floyd–Warshall with path reconstruction: `next[u][v]` is the
    /// first hop of a minimum-delay `u → v` path (`usize::MAX` when
    /// unreachable). Used to materialize redundancy-proof witnesses.
    fn all_pairs_min_delay_with_next(&self) -> (Vec<Vec<u64>>, Vec<Vec<usize>>) {
        let n = self.tasks.len();
        let mut dist = vec![vec![u64::MAX; n]; n];
        let mut next = vec![vec![usize::MAX; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
            next[i][i] = i;
        }
        for e in &self.edges {
            let d = &mut dist[e.from.0][e.to.0];
            if e.delay < *d {
                *d = e.delay;
                next[e.from.0][e.to.0] = e.to.0;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if dist[i][k] == u64::MAX {
                    continue;
                }
                for j in 0..n {
                    if dist[k][j] == u64::MAX {
                        continue;
                    }
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                        next[i][j] = next[i][k];
                    }
                }
            }
        }
        (dist, next)
    }

    /// The tasks along a minimum-delay path `u → v` (inclusive), from a
    /// `next` table of [`SyncGraph::all_pairs_min_delay_with_next`].
    fn walk_path(next: &[Vec<usize>], u: usize, v: usize) -> Option<Vec<TaskId>> {
        if next[u][v] == usize::MAX {
            return None;
        }
        let mut path = vec![TaskId(u)];
        let mut cur = u;
        while cur != v {
            cur = next[cur][v];
            path.push(TaskId(cur));
            if path.len() > next.len() + 1 {
                return None; // defensive: corrupt table
            }
        }
        Some(path)
    }

    /// Indices (into [`SyncGraph::edges`]) of removable edges that are
    /// redundant: another path with no greater delay already enforces
    /// their constraint.
    ///
    /// Uses the classic criterion: `e = (x → y, d)` is redundant iff some
    /// other edge `e' = (x → z, d')` with `e' ≠ e` satisfies
    /// `d' + ρ(z, y) ≤ d`, where `ρ` is the all-pairs minimum path delay.
    ///
    /// Note the returned set may contain edges that are only *mutually*
    /// redundant (two identical parallel edges each cite the other);
    /// [`SyncGraph::remove_redundant`] therefore removes one edge at a
    /// time, re-evaluating in between, which is always safe: a single
    /// redundant edge's constraint survives through the witnessing path,
    /// which is still intact after removing just that edge.
    pub fn redundant_edges(&self) -> Vec<usize> {
        let dist = self.all_pairs_min_delay();
        let mut out = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if !e.kind.is_removable() {
                continue;
            }
            let redundant = self.edges.iter().enumerate().any(|(j, e2)| {
                j != i
                    && e2.from == e.from
                    && e2.delay <= e.delay
                    && dist[e2.to.0][e.to.0] != u64::MAX
                    && e2.delay + dist[e2.to.0][e.to.0] <= e.delay
            });
            if redundant {
                out.push(i);
            }
        }
        out
    }

    /// Removes redundant removable edges until none remain, returning
    /// how many were dropped. Removal is one edge per pass (lowest index
    /// first) so mutually-redundant ties cannot erase each other.
    pub fn remove_redundant(&mut self) -> usize {
        self.remove_redundant_tracked().len()
    }

    /// Like [`SyncGraph::remove_redundant`] but returns the removed
    /// edges themselves, in removal order, so a caller can certify each
    /// removal afterwards.
    pub fn remove_redundant_tracked(&mut self) -> Vec<SyncEdge> {
        let mut removed = Vec::new();
        while let Some(&i) = self.redundant_edges().first() {
            removed.push(self.edges.remove(i));
        }
        removed
    }

    /// Greedy resynchronization (paper §4.1): repeatedly add one
    /// zero-delay `Resync` edge between tasks on different processors if
    /// doing so lets strictly more existing removable edges be removed
    /// than the one edge added — i.e. the *net* synchronization cost
    /// drops. When `preserve_throughput` is set, a candidate that would
    /// increase the maximum cycle mean (lengthen the iteration period) is
    /// rejected.
    ///
    /// Returns a report of edges added and removed.
    pub fn resynchronize(&mut self, preserve_throughput: bool) -> ResyncReport {
        self.resynchronize_constrained(preserve_throughput, None)
    }

    /// Latency-constrained resynchronization: like
    /// [`SyncGraph::resynchronize`], but additionally rejects any added
    /// edge that would push the first-iteration completion time of any
    /// task beyond `max_latency` cycles (the latency-aware variant of
    /// the optimization in Sriram & Bhattacharyya).
    pub fn resynchronize_constrained(
        &mut self,
        preserve_throughput: bool,
        max_latency: Option<u64>,
    ) -> ResyncReport {
        self.resynchronize_certified(preserve_throughput, max_latency)
            .0
    }

    /// Certified resynchronization: identical optimization to
    /// [`SyncGraph::resynchronize_constrained`], but every edge removal
    /// is justified by a [`RedundancyProof`] — a concrete witness path
    /// in the *final* graph whose total delay does not exceed the
    /// removed edge's — and every addition records how many removals it
    /// enabled. Post-hoc certification on the final graph is sound
    /// because redundancy removal is transitive: each intermediate
    /// witness that was itself later removed was in turn path-implied,
    /// so the composed final-graph path still enforces the constraint.
    ///
    /// A removal the final graph cannot justify lands in
    /// [`ResyncCertificate::unproven`] — that is a bug in the optimizer
    /// (surfaced by the analyzer as SPI061), never an expected outcome.
    pub fn resynchronize_certified(
        &mut self,
        preserve_throughput: bool,
        max_latency: Option<u64>,
    ) -> (ResyncReport, ResyncCertificate) {
        let baseline_cost = self.sync_cost();
        // Always start from the irredundant form.
        let mut removed_edges = self.remove_redundant_tracked();
        let mut additions = Vec::new();
        let base_mcm = max_cycle_mean(&self.tasks, &self.edges);

        loop {
            let dist = self.all_pairs_min_delay();
            let n = self.tasks.len();
            let mut best: Option<(usize, usize, usize)> = None; // (gain, u, v)
            for u in 0..n {
                for v in 0..n {
                    if u == v || self.tasks[u].proc == self.tasks[v].proc {
                        continue;
                    }
                    // A zero-delay u→v edge must not close a zero-delay
                    // cycle: require every v→u path to carry delay ≥ 1.
                    if dist[v][u] == 0 {
                        continue;
                    }
                    // Skip if an equal-or-better u→v ordering already
                    // exists (the candidate would be instantly redundant).
                    if dist[u][v] == 0 {
                        continue;
                    }
                    let gain = self.count_killed_by(u, v, &dist);
                    if gain >= 2 && best.map(|(g, ..)| gain > g).unwrap_or(true) {
                        best = Some((gain, u, v));
                    }
                }
            }
            let Some((_, u, v)) = best else { break };
            let candidate = SyncEdge {
                from: TaskId(u),
                to: TaskId(v),
                delay: 0,
                kind: SyncKind::Resync,
            };
            let mut trial = self.clone();
            trial.edges.push(candidate);
            let killed = trial.remove_redundant_tracked();
            if killed.len() < 2 {
                break; // stale estimate; no profitable candidate remains
            }
            if preserve_throughput {
                let new_mcm = max_cycle_mean(&trial.tasks, &trial.edges);
                if mcm_worse(base_mcm, new_mcm) {
                    // Blacklist by just stopping: a finer implementation
                    // would skip this candidate; in practice profitable
                    // candidates that hurt throughput are rare on these
                    // app graphs.
                    break;
                }
            }
            if let Some(limit) = max_latency {
                let times = crate::latency::self_timed_times(&trial, 1);
                let worst = times[0].iter().map(|&(_, e)| e).max().unwrap_or(0);
                if worst > limit {
                    break;
                }
            }
            *self = trial;
            additions.push(ResyncAddition {
                edge: candidate,
                killed: killed.len(),
            });
            removed_edges.extend(killed);
        }

        // Certify every removal against the final graph.
        let (dist, next) = self.all_pairs_min_delay_with_next();
        let mut removals = Vec::new();
        let mut unproven = Vec::new();
        for e in removed_edges {
            let proved = (dist[e.from.0][e.to.0] != u64::MAX && dist[e.from.0][e.to.0] <= e.delay)
                .then(|| Self::walk_path(&next, e.from.0, e.to.0))
                .flatten();
            match proved {
                Some(witness) => removals.push(RedundancyProof {
                    edge: e,
                    witness_delay: dist[e.from.0][e.to.0],
                    witness,
                }),
                None => unproven.push(e),
            }
        }

        let report = ResyncReport {
            sync_cost_before: baseline_cost,
            sync_cost_after: self.sync_cost(),
            edges_added: additions.len(),
            edges_removed: removals.len() + unproven.len(),
        };
        let cert = ResyncCertificate {
            removals,
            unproven,
            additions,
            report,
        };
        (report, cert)
    }

    /// How many removable edges would become redundant if a zero-delay
    /// `u→v` edge existed (approximation used to rank candidates).
    fn count_killed_by(&self, u: usize, v: usize, dist: &[Vec<u64>]) -> usize {
        self.edges
            .iter()
            .filter(|e| {
                e.kind.is_removable()
                    && reach(dist, e.from.0, u)
                        .and_then(|a| reach(dist, v, e.to.0).map(|b| a + b))
                        .map(|through| through <= e.delay)
                        .unwrap_or(false)
            })
            .count()
    }

    /// `true` if the delay-0 subgraph has a cycle (self-timed deadlock).
    pub fn has_zero_delay_cycle(&self) -> bool {
        let n = self.tasks.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.delay == 0 {
                adj[e.from.0].push(e.to.0);
            }
        }
        // Kahn's algorithm: cycle iff not all nodes drain.
        let mut indeg = vec![0usize; n];
        for row in &adj {
            for &v in row {
                indeg[v] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        seen != n
    }

    /// Renders the graph in Graphviz DOT, the form in which the paper
    /// draws its figures 3 and 5. Sequence/loopback edges are drawn
    /// solid (processor structure), removable synchronization edges
    /// dashed — matching the paper's "dashed edges represent
    /// synchronization edges" convention.
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = format!("digraph \"{title}\" {{\n  rankdir=LR;\n");
        // Group tasks by processor into clusters.
        let mut procs: Vec<_> = self.tasks.iter().map(|t| t.proc).collect();
        procs.sort();
        procs.dedup();
        for p in procs {
            out.push_str(&format!(
                "  subgraph cluster_{} {{\n    label=\"{p}\";\n",
                p.0
            ));
            for (i, t) in self.tasks.iter().enumerate() {
                if t.proc == p {
                    out.push_str(&format!(
                        "    t{i} [label=\"{}#{}\"];\n",
                        t.firing.actor, t.firing.k
                    ));
                }
            }
            out.push_str("  }\n");
        }
        for e in &self.edges {
            let style = if e.kind.is_removable() {
                "dashed"
            } else {
                "solid"
            };
            let label = if e.delay > 0 {
                format!(" label=\"{}\"", e.delay)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  t{} -> t{} [style={style}{label}];\n",
                e.from.0, e.to.0
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Estimated iteration period in cycles: the maximum cycle mean of
    /// the graph (`None` if the graph is acyclic, which cannot happen for
    /// well-formed schedules since every processor has a loopback).
    pub fn iteration_period(&self) -> Option<f64> {
        max_cycle_mean(&self.tasks, &self.edges)
    }
}

fn reach(dist: &[Vec<u64>], a: usize, b: usize) -> Option<u64> {
    (dist[a][b] != u64::MAX).then(|| dist[a][b])
}

fn mcm_worse(base: Option<f64>, new: Option<f64>) -> bool {
    match (base, new) {
        (Some(b), Some(n)) => n > b + 1e-9,
        (None, Some(_)) => true,
        _ => false,
    }
}

/// Outcome of a resynchronization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResyncReport {
    /// Removable sync edges before any optimization.
    pub sync_cost_before: usize,
    /// Removable sync edges after redundancy removal + resynchronization.
    pub sync_cost_after: usize,
    /// Resync edges added.
    pub edges_added: usize,
    /// Redundant edges removed (including those killed by added edges).
    pub edges_removed: usize,
}

impl ResyncReport {
    /// Net reduction in synchronization cost.
    pub fn net_reduction(&self) -> isize {
        self.sync_cost_before as isize - self.sync_cost_after as isize
    }
}

/// Machine-checkable witness that a removed synchronization edge's
/// constraint is still enforced: a path in the final graph from the
/// edge's source to its destination with total delay ≤ the edge's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundancyProof {
    /// The edge that was removed.
    pub edge: SyncEdge,
    /// Tasks along the witness path, endpoints inclusive
    /// (`witness[0] == edge.from`, `witness.last() == edge.to`).
    pub witness: Vec<TaskId>,
    /// Total delay along the witness path (≤ `edge.delay`).
    pub witness_delay: u64,
}

/// One resynchronization edge the optimizer added, with its
/// justification: how many removable edges it made redundant. The
/// greedy step only accepts a candidate whose net cost drops, so
/// `killed ≥ 2` always holds for a sound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResyncAddition {
    /// The added zero-delay [`SyncKind::Resync`] edge.
    pub edge: SyncEdge,
    /// Removable edges this addition made redundant.
    pub killed: usize,
}

/// Proof artifact of one certified resynchronization run
/// ([`SyncGraph::resynchronize_certified`]): one [`RedundancyProof`]
/// per removed edge, one [`ResyncAddition`] per added edge, and the
/// summary [`ResyncReport`]. The `spi-analyze` pass
/// `ResyncCertification` re-derives every claim against the final
/// graph and reports SPI061/SPI062 when anything fails to check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResyncCertificate {
    /// Proven removals.
    pub removals: Vec<RedundancyProof>,
    /// Removals the final graph could not justify (optimizer bug).
    pub unproven: Vec<SyncEdge>,
    /// Added resynchronization edges with their kill counts.
    pub additions: Vec<ResyncAddition>,
    /// The matching summary report.
    pub report: ResyncReport,
}

impl ResyncCertificate {
    /// `true` when every removal carries a valid proof.
    pub fn fully_proven(&self) -> bool {
        self.unproven.is_empty()
    }

    /// Human-readable rendering, one line per proof/addition.
    pub fn render(&self) -> String {
        let mut out = format!(
            "resync certificate: {} removals proven, {} unproven, {} additions \
             (cost {} -> {})\n",
            self.removals.len(),
            self.unproven.len(),
            self.additions.len(),
            self.report.sync_cost_before,
            self.report.sync_cost_after
        );
        for p in &self.removals {
            let path: Vec<String> = p.witness.iter().map(|t| format!("t{}", t.0)).collect();
            out.push_str(&format!(
                "  remove t{} -> t{} (delay {}): witness {} (delay {})\n",
                p.edge.from.0,
                p.edge.to.0,
                p.edge.delay,
                path.join(" -> "),
                p.witness_delay
            ));
        }
        for e in &self.unproven {
            out.push_str(&format!(
                "  UNPROVEN remove t{} -> t{} (delay {})\n",
                e.from.0, e.to.0, e.delay
            ));
        }
        for a in &self.additions {
            out.push_str(&format!(
                "  add t{} -> t{} (delay 0): kills {}\n",
                a.edge.from.0, a.edge.to.0, a.killed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, ProcId};
    use crate::ipc_graph::IpcGraph;
    use crate::selftimed::SelfTimedSchedule;
    use spi_dataflow::{PrecedenceGraph, SdfGraph};

    /// Pipeline A→B→C split over 2 processors: A,C on P0; B on P1.
    fn two_proc_pipeline() -> SyncGraph {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        let c = g.add_actor("C", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(if x == b { 1 } else { 0 })).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 1 }).unwrap()
    }

    #[test]
    fn from_ipc_materializes_acks_for_ubs() {
        let sg = two_proc_pipeline();
        // Two IPC edges (A→B, B→C) → 2 Data + 2 Ack.
        assert_eq!(sg.ack_count(), 2);
        assert_eq!(sg.sync_cost(), 4);
    }

    #[test]
    fn bbs_feedback_edge_has_capacity_delay() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        let sg = SyncGraph::from_ipc(&ipc, |_| Protocol::Bbs { capacity: 3 }).unwrap();
        let fb: Vec<_> = sg
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, SyncKind::Feedback { .. }))
            .collect();
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].delay, 3);
    }

    #[test]
    fn bbs_capacity_below_delay_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        g.add_edge(a, b, 1, 1, 2, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        // IPC edge (delay 2 via the dataflow edge? the precedence edge has
        // inter-iteration delay); capacity 1 < delay 2 → error.
        let r = SyncGraph::from_ipc(&ipc, |_| Protocol::Bbs { capacity: 1 });
        assert!(matches!(r, Err(SchedError::ZeroDelayCycle)));
    }

    #[test]
    fn redundant_ack_detected_and_removed() {
        // A→B then B→A(ack). If A and B exchange two parallel data edges
        // in the same direction, one Data edge's sync is redundant.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(a, b, 1, 1, 0, 4).unwrap(); // parallel duplicate
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        let mut sg = SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 1 }).unwrap();
        let before = sg.sync_cost();
        let removed = sg.remove_redundant();
        assert!(removed >= 1, "parallel sync edges must collapse");
        assert_eq!(sg.sync_cost(), before - removed);
        // Constraint still enforced: some A→B sync edge remains.
        assert!(sg
            .edges()
            .iter()
            .any(|e| matches!(e.kind, SyncKind::Data { .. })));
    }

    #[test]
    fn pipeline_acks_are_redundant_via_loopbacks() {
        // This is the paper's figure-3 effect in miniature: the UBS acks
        // B->A and C->B are enforced by data + loopback paths
        // (B->C, C->loop->A) of equal total delay, so redundancy removal
        // drops both acks while every Data edge survives.
        let mut sg = two_proc_pipeline();
        assert_eq!(sg.sync_cost(), 4);
        let removed = sg.remove_redundant();
        assert_eq!(removed, 2);
        assert_eq!(sg.ack_count(), 0);
        let data = sg
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, SyncKind::Data { .. }))
            .count();
        assert_eq!(data, 2, "data synchronization is essential");
        assert!(!sg.has_zero_delay_cycle());
    }

    #[test]
    fn zero_delay_cycle_detection() {
        let sg = two_proc_pipeline();
        assert!(!sg.has_zero_delay_cycle());
    }

    #[test]
    fn certified_resync_proves_every_removal() {
        let mut sg = two_proc_pipeline();
        let (report, cert) = sg.resynchronize_certified(true, None);
        // The pipeline drops both UBS acks; each must carry a witness.
        assert_eq!(report.edges_removed, 2);
        assert!(cert.fully_proven(), "unproven: {:?}", cert.unproven);
        assert_eq!(cert.removals.len(), 2);
        for p in &cert.removals {
            assert_eq!(p.witness.first(), Some(&p.edge.from));
            assert_eq!(p.witness.last(), Some(&p.edge.to));
            assert!(p.witness_delay <= p.edge.delay);
            // Re-walk the witness against the final graph: every hop
            // must exist with delays summing to at most the claim.
            let mut total = 0u64;
            for w in p.witness.windows(2) {
                let hop = sg
                    .edges()
                    .iter()
                    .filter(|e| e.from == w[0] && e.to == w[1])
                    .map(|e| e.delay)
                    .min()
                    .expect("witness hop must be a real edge");
                total += hop;
            }
            assert_eq!(total, p.witness_delay);
        }
        for a in &cert.additions {
            assert!(a.killed >= 2, "additions must pay for themselves");
        }
        assert_eq!(cert.report, report);
        assert!(cert.render().contains("removals proven"));
    }

    #[test]
    fn certified_and_plain_resync_agree() {
        let mut a = two_proc_pipeline();
        let mut b = two_proc_pipeline();
        let plain = a.resynchronize(true);
        let (certified, _) = b.resynchronize_certified(true, None);
        assert_eq!(plain, certified);
        assert_eq!(a, b);
    }

    #[test]
    fn resync_reports_consistent_costs() {
        let mut sg = two_proc_pipeline();
        let report = sg.resynchronize(true);
        assert_eq!(report.sync_cost_after, sg.sync_cost());
        assert!(report.sync_cost_after <= report.sync_cost_before);
        assert!(report.net_reduction() >= 0);
        assert!(!sg.has_zero_delay_cycle(), "resync must preserve liveness");
    }

    #[test]
    fn resync_prunes_fan_out_acks() {
        // Hub H on P0 sends to workers W1..W3 (P1..P3), all with UBS acks
        // back to H. Worker-to-worker resync edges can chain the acks so
        // fewer reverse messages are needed.
        let mut g = SdfGraph::new();
        let h = g.add_actor("H", 10);
        let ws: Vec<_> = (0..3).map(|i| g.add_actor(format!("W{i}"), 10)).collect();
        for &w in &ws {
            g.add_edge(h, w, 1, 1, 0, 4).unwrap();
            // Results return for the *next* iteration (delay 1), else the
            // zero-delay H->W->H cycle would deadlock.
            g.add_edge(w, h, 1, 1, 1, 4).unwrap();
        }
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 4, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        let mut sg = SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 1 }).unwrap();
        let report = sg.resynchronize(false);
        // At minimum the redundancy pass must notice that result edges
        // W→H make the ack edges W→H redundant (same endpoints, the data
        // sync subsumes the ack).
        assert!(report.net_reduction() >= 3, "report: {report:?}");
    }

    #[test]
    fn dot_export_marks_sync_edges_dashed() {
        let sg = two_proc_pipeline();
        let dot = sg.to_dot("fig");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_0") && dot.contains("cluster_1"));
        assert!(dot.contains("style=dashed"), "sync edges are dashed");
        assert!(dot.contains("style=solid"), "processor structure is solid");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn iteration_period_exists_for_scheduled_graph() {
        let sg = two_proc_pipeline();
        let period = sg.iteration_period();
        assert!(period.is_some());
        assert!(period.unwrap() >= 20.0, "P0 runs A and C: ≥ 20 cycles");
    }
}

//! The inter-processor communication (IPC) graph `G_ipc` (paper §4.1).
//!
//! Given an application graph `G` and its self-timed multiprocessor
//! schedule, `G_ipc` is built by instantiating a vertex for each task,
//! connecting an edge from each task to its successor on the same
//! processor, adding a unit-delay edge from the last task on each
//! processor back to the first, and instantiating an IPC edge for every
//! data edge of `G` that crosses processors. Each edge `v_j → v_i` with
//! delay `d` encodes the constraint
//! `start(v_i, k) ≥ end(v_j, k − d)` (paper eq. 3).
//!
//! The module also computes the paper's eq. (2) IPC buffer bound
//! `B(e) = (Γ + delay(e)) · c(e)`, where `Γ` is the delay on a
//! minimum-delay directed path that closes a cycle through `e` (the
//! number of iterations by which sender and receiver can drift apart is
//! limited by the least-delay feedback path).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use spi_dataflow::{EdgeId, Firing, PrecedenceGraph, SdfGraph};

use crate::assign::ProcId;
use crate::error::Result;
use crate::selftimed::SelfTimedSchedule;

/// Index of a task (node) in the IPC graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One task: a firing pinned to a processor with an execution estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// The firing this task executes.
    pub firing: Firing,
    /// Processor it runs on.
    pub proc: ProcId,
    /// Estimated execution cycles (from the actor's estimate).
    pub exec_cycles: u64,
}

/// Classification of IPC-graph edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpcEdgeKind {
    /// Processor-internal sequencing between consecutive tasks.
    Sequence,
    /// Unit-delay last→first edge modelling the processor's iteration
    /// loop.
    Loopback,
    /// Data + synchronization across processors, induced by a dataflow
    /// edge.
    Ipc {
        /// The application-graph edge this IPC edge transports.
        via: EdgeId,
    },
}

/// A directed edge of `G_ipc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcEdge {
    /// Source task (the `v_j` of eq. 3).
    pub from: TaskId,
    /// Destination task (the `v_i` of eq. 3).
    pub to: TaskId,
    /// Iteration delay `d` of the constraint.
    pub delay: u64,
    /// What this edge models.
    pub kind: IpcEdgeKind,
}

/// The IPC graph of a self-timed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcGraph {
    tasks: Vec<Task>,
    edges: Vec<IpcEdge>,
    by_firing: HashMap<Firing, TaskId>,
}

impl IpcGraph {
    /// Builds `G_ipc` from the application graph, its precedence
    /// expansion and a self-timed schedule (paper §4.1 construction).
    ///
    /// # Errors
    ///
    /// Assignment-coverage errors from the schedule's assignment.
    pub fn build(
        graph: &SdfGraph,
        pg: &PrecedenceGraph,
        schedule: &SelfTimedSchedule,
    ) -> Result<Self> {
        let mut tasks = Vec::new();
        let mut by_firing = HashMap::new();
        for (proc, order) in schedule.processors() {
            for &firing in order {
                let id = TaskId(tasks.len());
                tasks.push(Task {
                    firing,
                    proc,
                    exec_cycles: graph.actor(firing.actor).exec_cycles,
                });
                by_firing.insert(firing, id);
            }
        }

        let mut edges = Vec::new();
        // Same-processor sequencing + loopback.
        for (_, order) in schedule.processors() {
            if order.is_empty() {
                continue;
            }
            for w in order.windows(2) {
                edges.push(IpcEdge {
                    from: by_firing[&w[0]],
                    to: by_firing[&w[1]],
                    delay: 0,
                    kind: IpcEdgeKind::Sequence,
                });
            }
            edges.push(IpcEdge {
                from: by_firing[order.last().expect("nonempty")],
                to: by_firing[&order[0]],
                delay: 1,
                kind: IpcEdgeKind::Loopback,
            });
        }

        // Cross-processor data edges (including inter-iteration ones).
        for p in pg.edges() {
            let from = by_firing[&p.from];
            let to = by_firing[&p.to];
            if tasks[from.0].proc != tasks[to.0].proc {
                edges.push(IpcEdge {
                    from,
                    to,
                    delay: p.delay,
                    kind: IpcEdgeKind::Ipc { via: p.via },
                });
            }
        }

        Ok(IpcGraph {
            tasks,
            edges,
            by_firing,
        })
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges.
    pub fn edges(&self) -> &[IpcEdge] {
        &self.edges
    }

    /// Task executing `firing`, if any.
    pub fn task_of(&self, firing: Firing) -> Option<TaskId> {
        self.by_firing.get(&firing).copied()
    }

    /// Task lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// The IPC (cross-processor) edges only.
    pub fn ipc_edges(&self) -> impl Iterator<Item = &IpcEdge> {
        self.edges
            .iter()
            .filter(|e| matches!(e.kind, IpcEdgeKind::Ipc { .. }))
    }

    /// Minimum-delay directed path from `from` to `to` over all edges,
    /// or `None` when unreachable (min-plus Dijkstra; all delays ≥ 0).
    ///
    /// When `from == to` this is the minimum-delay *cycle* through the
    /// task (at least one edge is traversed).
    pub fn min_delay_path(&self, from: TaskId, to: TaskId) -> Option<u64> {
        if from == to {
            return self
                .edges
                .iter()
                .filter(|e| e.from == from)
                .filter_map(|e| {
                    if e.to == to {
                        Some(e.delay)
                    } else {
                        self.dijkstra(e.to, to).map(|d| d + e.delay)
                    }
                })
                .min();
        }
        self.dijkstra(from, to)
    }

    fn dijkstra(&self, from: TaskId, to: TaskId) -> Option<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.tasks.len();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from.0].push((e.to.0, e.delay));
        }
        let mut dist = vec![u64::MAX; n];
        dist[from.0] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, from.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == to.0 {
                return Some(d);
            }
            for &(v, w) in &adj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        None
    }

    /// Paper eq. (2): bound, in *packed tokens*, on the occupancy of the
    /// IPC buffer behind `edge`:
    /// `B(e)/c(e) = Γ + delay(e)`, with `Γ` the minimum delay on a
    /// directed feedback path from `snk(e)` to `src(e)` (the cycle it
    /// closes with `e` limits sender/receiver drift).
    ///
    /// Returns `None` when no feedback path exists — then the edge is
    /// genuinely unbounded and the UBS protocol is mandatory.
    pub fn ipc_buffer_bound_tokens(&self, edge: &IpcEdge) -> Option<u64> {
        let gamma = self.min_delay_path(edge.to, edge.from)?;
        Some(gamma + edge.delay)
    }

    /// Eq. (2) in bytes: token bound × max packed-token bytes.
    ///
    /// `bytes_per_packed_token` comes from
    /// [`spi_dataflow::VtsConversion::bytes_per_packed_token`] (it equals
    /// the raw token size for static edges).
    pub fn ipc_buffer_bound_bytes(
        &self,
        edge: &IpcEdge,
        bytes_per_packed_token: u64,
    ) -> Option<u64> {
        self.ipc_buffer_bound_tokens(edge)
            .map(|t| t * bytes_per_packed_token)
    }

    /// Eq. (2) bounds folded per application edge: a dataflow edge can
    /// induce several IPC-edge instances (one per precedence instance),
    /// and a runtime buffer must cover the *worst* of them, so bounds
    /// fold with MAX; any unbounded instance makes the whole edge
    /// unbounded (`None`). This is the canonical edge→bound map used by
    /// both the SPI lowering and the analyzer's protocol lints.
    pub fn buffer_bounds_by_edge(&self) -> HashMap<EdgeId, Option<u64>> {
        let mut bounds: HashMap<EdgeId, Option<u64>> = HashMap::new();
        for e in self.ipc_edges() {
            let IpcEdgeKind::Ipc { via } = e.kind else {
                continue;
            };
            match self.ipc_buffer_bound_tokens(e) {
                Some(b) => {
                    // `None` (an unbounded instance seen earlier) is
                    // absorbing; otherwise fold with MAX.
                    let slot = bounds.entry(via).or_insert(Some(0));
                    if let Some(cur) = slot {
                        *slot = Some((*cur).max(b));
                    }
                }
                None => {
                    bounds.insert(via, None);
                }
            }
        }
        bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Assignment;
    use spi_dataflow::SdfGraph;

    /// Two-actor producer/consumer split across two processors.
    fn two_proc() -> (SdfGraph, PrecedenceGraph, IpcGraph) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 20);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        (g, pg, ipc)
    }

    #[test]
    fn construction_has_loopbacks_and_ipc_edge() {
        let (_, _, ipc) = two_proc();
        assert_eq!(ipc.tasks().len(), 2);
        let loopbacks = ipc
            .edges()
            .iter()
            .filter(|e| e.kind == IpcEdgeKind::Loopback)
            .count();
        assert_eq!(loopbacks, 2, "one loopback per processor");
        assert_eq!(ipc.ipc_edges().count(), 1);
        let e = ipc.ipc_edges().next().unwrap();
        assert_eq!(e.delay, 0);
    }

    #[test]
    fn single_processor_has_no_ipc_edges() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 20);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 1, |_| ProcId(0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        assert_eq!(ipc.ipc_edges().count(), 0);
        let seq = ipc
            .edges()
            .iter()
            .filter(|e| e.kind == IpcEdgeKind::Sequence)
            .count();
        assert_eq!(seq, 1);
    }

    #[test]
    fn eq2_bound_on_simple_split() {
        let (_, _, ipc) = two_proc();
        let e = *ipc.ipc_edges().next().unwrap();
        // Feedback path B → (loopback, delay 1) → B? No: Γ is the min
        // delay from snk (B's task) back to src (A's task). Path:
        // B --loopback(1)--> B ... there is no B→A data edge, but the
        // loopback edges only cycle within a processor. With no feedback
        // path the bound is None? Here B and A live on different
        // processors with only the forward IPC edge — unbounded.
        assert_eq!(ipc.ipc_buffer_bound_tokens(&e), None);
    }

    #[test]
    fn eq2_bound_with_feedback_edge() {
        // A ⇄ B across two processors: feedback delay 2 bounds the buffer.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 20);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, a, 1, 1, 2, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        let forward = ipc
            .ipc_edges()
            .find(|e| e.delay == 0)
            .copied()
            .expect("forward edge");
        // Γ = 2 along the B→A feedback edge; bound = 2 + 0.
        assert_eq!(ipc.ipc_buffer_bound_tokens(&forward), Some(2));
        assert_eq!(ipc.ipc_buffer_bound_bytes(&forward, 4), Some(8));
    }

    #[test]
    fn sequence_edges_follow_schedule_order() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let c = g.add_actor("C", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 1, |_| ProcId(0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        let seqs: Vec<_> = ipc
            .edges()
            .iter()
            .filter(|e| e.kind == IpcEdgeKind::Sequence)
            .collect();
        assert_eq!(seqs.len(), 2);
        for e in seqs {
            assert!(ipc.task(e.from).firing < ipc.task(e.to).firing);
        }
    }

    #[test]
    fn min_delay_path_prefers_fewest_delays() {
        let (_, _, ipc) = two_proc();
        let t0 = TaskId(0);
        let t1 = TaskId(1);
        // A's task to B's task via the zero-delay IPC edge.
        let (src, dst) = if ipc.task(t0).firing.actor.0 == 0 {
            (t0, t1)
        } else {
            (t1, t0)
        };
        assert_eq!(ipc.min_delay_path(src, dst), Some(0));
    }

    #[test]
    fn multirate_cross_edges_expand_per_firing() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 2, 1, 0, 4).unwrap(); // q = [1, 2]
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let assign = Assignment::by_actor(&pg, 2, |x| ProcId(x.0)).unwrap();
        let st = SelfTimedSchedule::from_assignment(&pg, assign).unwrap();
        let ipc = IpcGraph::build(&g, &pg, &st).unwrap();
        // Both B firings depend on A's single firing → 2 IPC edges.
        assert_eq!(ipc.ipc_edges().count(), 2);
    }
}

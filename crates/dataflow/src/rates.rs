//! Repetition-vector computation (SDF balance equations).
//!
//! An SDF graph is *consistent* when the balance equations
//! `q[src(e)] · produce(e) = q[dst(e)] · consume(e)` (one per edge) admit a
//! positive integer solution `q`, the *repetition vector*. One graph
//! iteration fires every actor `v` exactly `q[v]` times and returns every
//! edge to its initial token count. The solver propagates rational
//! multipliers over each connected component and scales by the lcm of the
//! denominators, per Lee & Messerschmitt's classic formulation.

use std::collections::VecDeque;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};
use crate::graph::{ActorId, SdfGraph};

/// The repetition vector of a consistent SDF graph.
///
/// Indexable by [`ActorId`]; entry `q[v]` is the number of firings of `v`
/// in one minimal periodic iteration.
///
/// # Examples
///
/// ```
/// use spi_dataflow::SdfGraph;
///
/// let mut g = SdfGraph::new();
/// let a = g.add_actor("src", 1);
/// let b = g.add_actor("snk", 1);
/// g.add_edge(a, b, 3, 2, 0, 4)?;
/// let q = g.repetition_vector()?;
/// assert_eq!((q[a], q[b]), (2, 3));
/// # Ok::<(), spi_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionVector {
    counts: Vec<u64>,
}

impl RepetitionVector {
    /// Firing count of `actor` in one graph iteration.
    ///
    /// # Panics
    ///
    /// Panics if `actor` does not belong to the graph that produced this
    /// vector.
    pub fn count(&self, actor: ActorId) -> u64 {
        self.counts[actor.0]
    }

    /// Total firings per iteration, summed over all actors.
    pub fn total_firings(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of actors covered.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if the graph had no actors.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(ActorId, firings)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ActorId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (ActorId(i), c))
    }
}

impl Index<ActorId> for RepetitionVector {
    type Output = u64;

    fn index(&self, actor: ActorId) -> &u64 {
        &self.counts[actor.0]
    }
}

/// A rational number with i128 parts, sufficient for balance solving on
/// realistic graphs (rates fit in u32, graphs have bounded diameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    fn new(num: i128, den: i128) -> Result<Self> {
        if den == 0 {
            return Err(DataflowError::Overflow);
        }
        let g = gcd_i128(num.abs(), den.abs()).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Ok(Ratio {
            num: sign * num / g,
            den: sign * den / g,
        })
    }

    fn mul(self, num: i128, den: i128) -> Result<Self> {
        let n = self.num.checked_mul(num).ok_or(DataflowError::Overflow)?;
        let d = self.den.checked_mul(den).ok_or(DataflowError::Overflow)?;
        Ratio::new(n, d)
    }
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor of two u64 values.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two u64 values.
///
/// # Panics
///
/// Panics on overflow; repetition vectors that large are outside the
/// supported envelope and indicate a modeling error.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

impl SdfGraph {
    /// Computes the repetition vector of this graph.
    ///
    /// Disconnected graphs are handled component-wise (each component gets
    /// its own minimal solution).
    ///
    /// # Errors
    ///
    /// * [`DataflowError::EmptyGraph`] if the graph has no actors.
    /// * [`DataflowError::DynamicRate`] if any edge still has a dynamic
    ///   port — apply [`crate::vts::VtsConversion`] first.
    /// * [`DataflowError::Inconsistent`] if the balance equations have no
    ///   positive solution (sample-rate mismatch).
    /// * [`DataflowError::Overflow`] if intermediate rationals overflow.
    pub fn repetition_vector(&self) -> Result<RepetitionVector> {
        if self.actor_count() == 0 {
            return Err(DataflowError::EmptyGraph);
        }
        for (id, e) in self.edges() {
            if e.is_dynamic() {
                return Err(DataflowError::DynamicRate { edge: id });
            }
        }

        let n = self.actor_count();
        // Fractional firing ratios per actor, None until visited.
        let mut frac: Vec<Option<Ratio>> = vec![None; n];

        // Adjacency: (neighbor, my_rate, neighbor_rate, edge_id)
        // Balance: q[me] * my_rate = q[neighbor] * neighbor_rate
        let mut adj: Vec<Vec<(usize, i128, i128, usize)>> = vec![Vec::new(); n];
        for (id, e) in self.edges() {
            let p = i128::from(e.produce.bound());
            let c = i128::from(e.consume.bound());
            adj[e.src.0].push((e.dst.0, p, c, id.0));
            adj[e.dst.0].push((e.src.0, c, p, id.0));
        }

        for start in 0..n {
            if frac[start].is_some() {
                continue;
            }
            frac[start] = Some(Ratio::new(1, 1)?);
            let mut members = vec![start];
            let mut queue = VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                let fv = frac[v].expect("visited actors have a ratio");
                for &(u, my_rate, other_rate, eid) in &adj[v] {
                    // q[u] = q[v] * my_rate / other_rate
                    let fu = fv.mul(my_rate, other_rate)?;
                    match frac[u] {
                        None => {
                            frac[u] = Some(fu);
                            members.push(u);
                            queue.push_back(u);
                        }
                        Some(existing) => {
                            if existing != fu {
                                return Err(DataflowError::Inconsistent {
                                    edge: crate::graph::EdgeId(eid),
                                });
                            }
                        }
                    }
                }
            }

            // Scale this component to the minimal positive integer vector.
            let mut denom_lcm: i128 = 1;
            for &v in &members {
                let r = frac[v].expect("member has ratio");
                denom_lcm = lcm_i128(denom_lcm, r.den).ok_or(DataflowError::Overflow)?;
            }
            let mut num_gcd: i128 = 0;
            for &v in &members {
                let r = frac[v].expect("member has ratio");
                let scaled = r
                    .num
                    .checked_mul(denom_lcm / r.den)
                    .ok_or(DataflowError::Overflow)?;
                num_gcd = gcd_i128(num_gcd, scaled.abs());
            }
            let num_gcd = num_gcd.max(1);
            for &v in &members {
                let r = frac[v].expect("member has ratio");
                let scaled = r.num * (denom_lcm / r.den) / num_gcd;
                frac[v] = Some(Ratio {
                    num: scaled,
                    den: 1,
                });
            }
        }

        let mut counts = Vec::with_capacity(n);
        for (i, f) in frac.iter().enumerate() {
            let r = f.ok_or(DataflowError::UnknownActor(ActorId(i)))?;
            if r.num <= 0 || r.den != 1 {
                return Err(DataflowError::Overflow);
            }
            counts.push(u64::try_from(r.num).map_err(|_| DataflowError::Overflow)?);
        }
        Ok(RepetitionVector { counts })
    }

    /// Returns `true` if the graph is sample-rate consistent.
    ///
    /// Equivalent to `self.repetition_vector().is_ok()` but reads better at
    /// call sites that only need the boolean.
    pub fn is_consistent(&self) -> bool {
        self.repetition_vector().is_ok()
    }
}

fn lcm_i128(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd_i128(a.abs(), b.abs())).checked_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_rates() {
        // A --2/3--> B --4/1--> C ; q = [3,2,8] scaled minimal: q_A*2=q_B*3,
        // q_B*4=q_C*1 → q=[3,2,8].
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let c = g.add_actor("C", 1);
        g.add_edge(a, b, 2, 3, 0, 4).unwrap();
        g.add_edge(b, c, 4, 1, 0, 4).unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!((q[a], q[b], q[c]), (3, 2, 8));
        assert_eq!(q.total_firings(), 13);
    }

    #[test]
    fn homogeneous_graph_is_all_ones() {
        let mut g = SdfGraph::new();
        let ids: Vec<_> = (0..5).map(|i| g.add_actor(format!("v{i}"), 1)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1, 1, 0, 4).unwrap();
        }
        let q = g.repetition_vector().unwrap();
        assert!(q.iter().all(|(_, c)| c == 1));
    }

    #[test]
    fn inconsistent_triangle_detected() {
        // A -1/1-> B -1/1-> C, plus A -2/1-> C forces q_A = q_C and
        // 2 q_A = q_C simultaneously → inconsistent.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let c = g.add_actor("C", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        g.add_edge(a, c, 2, 1, 0, 4).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(DataflowError::Inconsistent { .. })
        ));
        assert!(!g.is_consistent());
    }

    #[test]
    fn consistent_multirate_cycle() {
        // A -2/3-> B -3/2-> A is consistent: q_A=3, q_B=2.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 2, 3, 0, 4).unwrap();
        g.add_edge(b, a, 3, 2, 6, 4).unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!((q[a], q[b]), (3, 2));
    }

    #[test]
    fn disconnected_components_solved_independently() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let x = g.add_actor("X", 1);
        let y = g.add_actor("Y", 1);
        g.add_edge(a, b, 2, 3, 0, 4).unwrap();
        g.add_edge(x, y, 5, 1, 0, 4).unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!((q[a], q[b]), (3, 2));
        assert_eq!((q[x], q[y]), (1, 5));
    }

    #[test]
    fn isolated_actor_fires_once() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("lonely", 1);
        let q = g.repetition_vector().unwrap();
        assert_eq!(q[a], 1);
    }

    #[test]
    fn empty_graph_errors() {
        let g = SdfGraph::new();
        assert!(matches!(
            g.repetition_vector(),
            Err(DataflowError::EmptyGraph)
        ));
    }

    #[test]
    fn dynamic_edge_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_dynamic_edge(a, b, 10, 8, 0, 4).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(DataflowError::DynamicRate { .. })
        ));
    }

    #[test]
    fn gcd_lcm_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn paper_figure1_vts_converted_rates() {
        // Figure 1 after VTS conversion: both ports at rate 1.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 1, 0, 40).unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!((q[a], q[b]), (1, 1));
    }

    #[test]
    fn multirate_parallel_edges_consistent() {
        // Two parallel edges with proportional rates stay consistent.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 2, 4, 0, 4).unwrap();
        g.add_edge(a, b, 1, 2, 0, 4).unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!((q[a], q[b]), (2, 1));
    }

    #[test]
    fn multirate_parallel_edges_inconsistent() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 2, 4, 0, 4).unwrap();
        g.add_edge(a, b, 1, 3, 0, 4).unwrap();
        assert!(!g.is_consistent());
    }
}

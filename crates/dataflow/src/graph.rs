//! Coarse-grain dataflow graphs with static (SDF) and dynamic (VTS-capable)
//! port rates.
//!
//! The [`SdfGraph`] type is the central modeling structure of the
//! reproduction: applications are described as graphs of actors connected
//! by edges that carry typed tokens. Static rates give classic synchronous
//! dataflow (Lee & Messerschmitt); dynamic rates with declared upper bounds
//! feed the paper's variable-token-size (VTS) conversion in [`crate::vts`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};

/// Identifier of an actor inside one [`SdfGraph`].
///
/// Ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of an edge inside one [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A token production or consumption rate on one side of an edge.
///
/// `Static(n)` is ordinary SDF: exactly `n` tokens per firing, known at
/// compile time. `Dynamic { bound }` is the paper's dynamic-port notion:
/// the number of raw tokens moved per firing varies at run time but never
/// exceeds `bound`. VTS conversion ([`crate::vts::VtsConversion`]) turns
/// dynamic rates into static rate-1 packed-token transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rate {
    /// Fixed number of tokens per firing.
    Static(u32),
    /// Run-time-varying number of tokens per firing, bounded above.
    Dynamic {
        /// Declared upper bound on tokens moved per firing (paper §3:
        /// "an upper bound on the token size be specified for each
        /// dynamic port").
        bound: u32,
    },
}

impl Rate {
    /// Returns `true` if this rate varies at run time.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Rate::Dynamic { .. })
    }

    /// The compile-time upper bound on tokens per firing.
    pub fn bound(&self) -> u32 {
        match *self {
            Rate::Static(n) => n,
            Rate::Dynamic { bound } => bound,
        }
    }

    /// The static rate, or `None` for dynamic ports.
    pub fn as_static(&self) -> Option<u32> {
        match *self {
            Rate::Static(n) => Some(n),
            Rate::Dynamic { .. } => None,
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::Static(n) => write!(f, "{n}"),
            Rate::Dynamic { bound } => write!(f, "dyn(≤{bound})"),
        }
    }
}

/// An actor (computational node) in a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Actor {
    /// Human-readable name used in reports and graph dumps.
    pub name: String,
    /// Estimated execution time of one firing, in platform cycles.
    ///
    /// Used by list scheduling and by throughput analysis; the simulator
    /// may override it with a data-dependent cost model.
    pub exec_cycles: u64,
}

impl Actor {
    /// Creates an actor with the given name and estimated firing cost.
    pub fn new(name: impl Into<String>, exec_cycles: u64) -> Self {
        Actor {
            name: name.into(),
            exec_cycles,
        }
    }
}

/// A directed edge (FIFO channel) between two actors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing actor.
    pub src: ActorId,
    /// Consuming actor.
    pub dst: ActorId,
    /// Tokens produced per `src` firing.
    pub produce: Rate,
    /// Tokens consumed per `dst` firing.
    pub consume: Rate,
    /// Initial tokens (delays) resident on the edge before execution.
    pub delay: u64,
    /// Size of one *raw* (unpacked) token in bytes.
    pub token_bytes: u32,
}

impl Edge {
    /// Returns `true` if either endpoint of the edge has a dynamic rate.
    pub fn is_dynamic(&self) -> bool {
        self.produce.is_dynamic() || self.consume.is_dynamic()
    }
}

/// A coarse-grain dataflow graph.
///
/// Construction is incremental: add actors with [`SdfGraph::add_actor`],
/// connect them with [`SdfGraph::add_edge`] (static rates) or
/// [`SdfGraph::add_dynamic_edge`]. Analyses live in sibling modules:
/// repetition vectors ([`SdfGraph::repetition_vector`]), admissible
/// schedules and buffer bounds ([`SdfGraph::class_s_schedule`]), VTS
/// conversion ([`crate::VtsConversion`]), single-rate expansion
/// ([`crate::PrecedenceGraph`]).
///
/// # Examples
///
/// ```
/// use spi_dataflow::{SdfGraph, Rate};
///
/// let mut g = SdfGraph::new();
/// let a = g.add_actor("A", 10);
/// let b = g.add_actor("B", 20);
/// // A produces 2 tokens per firing, B consumes 3 per firing.
/// g.add_edge(a, b, 2, 3, 0, 4)?;
/// let q = g.repetition_vector()?;
/// assert_eq!(q[a], 3);
/// assert_eq!(q[b], 2);
/// # Ok::<(), spi_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SdfGraph {
    actors: Vec<Actor>,
    edges: Vec<Edge>,
}

impl SdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SdfGraph::default()
    }

    /// Adds an actor and returns its id.
    pub fn add_actor(&mut self, name: impl Into<String>, exec_cycles: u64) -> ActorId {
        self.actors.push(Actor::new(name, exec_cycles));
        ActorId(self.actors.len() - 1)
    }

    /// Adds a static-rate (pure SDF) edge.
    ///
    /// `produce`/`consume` are tokens per firing, `delay` is the number of
    /// initial tokens, and `token_bytes` is the size of one token.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::ZeroRate`] if either rate is zero and
    /// [`DataflowError::UnknownActor`] if an endpoint does not exist.
    pub fn add_edge(
        &mut self,
        src: ActorId,
        dst: ActorId,
        produce: u32,
        consume: u32,
        delay: u64,
        token_bytes: u32,
    ) -> Result<EdgeId> {
        self.add_edge_with_rates(
            src,
            dst,
            Rate::Static(produce),
            Rate::Static(consume),
            delay,
            token_bytes,
        )
    }

    /// Adds an edge whose endpoints may have dynamic rates.
    ///
    /// This models the paper's dynamic ports (fig. 1): each rate carries an
    /// upper bound instead of an exact value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SdfGraph::add_edge`]; a dynamic rate with bound
    /// zero is also rejected as [`DataflowError::ZeroRate`].
    pub fn add_edge_with_rates(
        &mut self,
        src: ActorId,
        dst: ActorId,
        produce: Rate,
        consume: Rate,
        delay: u64,
        token_bytes: u32,
    ) -> Result<EdgeId> {
        self.check_actor(src)?;
        self.check_actor(dst)?;
        let id = EdgeId(self.edges.len());
        if produce.bound() == 0 || consume.bound() == 0 {
            return Err(DataflowError::ZeroRate { edge: id });
        }
        self.edges.push(Edge {
            src,
            dst,
            produce,
            consume,
            delay,
            token_bytes,
        });
        Ok(id)
    }

    /// Adds a dynamic edge with the given rate bounds on both ports.
    ///
    /// Shorthand for [`SdfGraph::add_edge_with_rates`] with two
    /// [`Rate::Dynamic`] endpoints.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SdfGraph::add_edge_with_rates`].
    pub fn add_dynamic_edge(
        &mut self,
        src: ActorId,
        dst: ActorId,
        produce_bound: u32,
        consume_bound: u32,
        delay: u64,
        token_bytes: u32,
    ) -> Result<EdgeId> {
        self.add_edge_with_rates(
            src,
            dst,
            Rate::Dynamic {
                bound: produce_bound,
            },
            Rate::Dynamic {
                bound: consume_bound,
            },
            delay,
            token_bytes,
        )
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the actor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`SdfGraph::try_actor`] for a
    /// fallible lookup.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0]
    }

    /// Fallible actor lookup.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::UnknownActor`] if `id` is out of range.
    pub fn try_actor(&self, id: ActorId) -> Result<&Actor> {
        self.actors.get(id.0).ok_or(DataflowError::UnknownActor(id))
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`SdfGraph::try_edge`] for a
    /// fallible lookup.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Fallible edge lookup.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::UnknownEdge`] if `id` is out of range.
    pub fn try_edge(&self, id: EdgeId) -> Result<&Edge> {
        self.edges.get(id.0).ok_or(DataflowError::UnknownEdge(id))
    }

    /// Mutable access to an actor (e.g. to refine its cost estimate).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut Actor {
        &mut self.actors[id.0]
    }

    /// Iterates over `(ActorId, &Actor)` pairs in id order.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &Actor)> {
        self.actors.iter().enumerate().map(|(i, a)| (ActorId(i), a))
    }

    /// Iterates over `(EdgeId, &Edge)` pairs in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Ids of edges leaving `actor`.
    pub fn out_edges(&self, actor: ActorId) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| e.src == actor)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of edges entering `actor`.
    pub fn in_edges(&self, actor: ActorId) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| e.dst == actor)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns `true` if every edge has static rates on both ports.
    pub fn is_pure_sdf(&self) -> bool {
        self.edges.iter().all(|e| !e.is_dynamic())
    }

    /// Ids of all edges with at least one dynamic port.
    pub fn dynamic_edges(&self) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| e.is_dynamic())
            .map(|(id, _)| id)
            .collect()
    }

    /// Looks up an actor by name (first match).
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors()
            .find(|(_, a)| a.name == name)
            .map(|(id, _)| id)
    }

    /// Crate-internal mutable edge access used by VTS conversion.
    pub(crate) fn edge_mut_slot(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.0]
    }

    fn check_actor(&self, id: ActorId) -> Result<()> {
        if id.0 < self.actors.len() {
            Ok(())
        } else {
            Err(DataflowError::UnknownActor(id))
        }
    }
}

/// Pretty-prints the graph in a compact edge-list format used by the
/// figure-regeneration binaries.
impl fmt::Display for SdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dataflow graph: {} actors, {} edges",
            self.actors.len(),
            self.edges.len()
        )?;
        for (id, e) in self.edges() {
            writeln!(
                f,
                "  {id}: {} --[{} -> {}, delay {}, {}B tokens]--> {}",
                self.actor(e.src).name,
                e.produce,
                e.consume,
                e.delay,
                e.token_bytes,
                self.actor(e.dst).name,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_actor_graph() -> (SdfGraph, ActorId, ActorId) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 5);
        let b = g.add_actor("B", 7);
        (g, a, b)
    }

    #[test]
    fn add_actor_assigns_dense_ids() {
        let (g, a, b) = two_actor_graph();
        assert_eq!(a, ActorId(0));
        assert_eq!(b, ActorId(1));
        assert_eq!(g.actor_count(), 2);
        assert_eq!(g.actor(a).name, "A");
        assert_eq!(g.actor(b).exec_cycles, 7);
    }

    #[test]
    fn add_edge_rejects_zero_rates() {
        let (mut g, a, b) = two_actor_graph();
        assert!(matches!(
            g.add_edge(a, b, 0, 1, 0, 4),
            Err(DataflowError::ZeroRate { .. })
        ));
        assert!(matches!(
            g.add_edge(a, b, 1, 0, 0, 4),
            Err(DataflowError::ZeroRate { .. })
        ));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_edge_rejects_unknown_actors() {
        let (mut g, a, _) = two_actor_graph();
        let ghost = ActorId(99);
        assert!(matches!(
            g.add_edge(a, ghost, 1, 1, 0, 4),
            Err(DataflowError::UnknownActor(_))
        ));
        assert!(matches!(
            g.add_edge(ghost, a, 1, 1, 0, 4),
            Err(DataflowError::UnknownActor(_))
        ));
    }

    #[test]
    fn dynamic_edge_detection() {
        let (mut g, a, b) = two_actor_graph();
        let e1 = g.add_edge(a, b, 2, 3, 0, 4).unwrap();
        let e2 = g.add_dynamic_edge(a, b, 10, 8, 0, 4).unwrap();
        assert!(!g.edge(e1).is_dynamic());
        assert!(g.edge(e2).is_dynamic());
        assert!(!g.is_pure_sdf());
        assert_eq!(g.dynamic_edges(), vec![e2]);
    }

    #[test]
    fn in_out_edges() {
        let (mut g, a, b) = two_actor_graph();
        let c = g.add_actor("C", 1);
        let e1 = g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        let e2 = g.add_edge(a, c, 1, 1, 0, 4).unwrap();
        let e3 = g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        assert_eq!(g.out_edges(a), vec![e1, e2]);
        assert_eq!(g.in_edges(c), vec![e2, e3]);
        assert_eq!(g.in_edges(a), Vec::<EdgeId>::new());
    }

    #[test]
    fn rate_accessors() {
        let s = Rate::Static(4);
        let d = Rate::Dynamic { bound: 9 };
        assert!(!s.is_dynamic());
        assert!(d.is_dynamic());
        assert_eq!(s.bound(), 4);
        assert_eq!(d.bound(), 9);
        assert_eq!(s.as_static(), Some(4));
        assert_eq!(d.as_static(), None);
    }

    #[test]
    fn actor_by_name_finds_first() {
        let (g, a, _) = two_actor_graph();
        assert_eq!(g.actor_by_name("A"), Some(a));
        assert_eq!(g.actor_by_name("Z"), None);
    }

    #[test]
    fn display_lists_every_edge() {
        let (mut g, a, b) = two_actor_graph();
        g.add_edge(a, b, 2, 3, 1, 8).unwrap();
        let s = g.to_string();
        assert!(s.contains("2 actors, 1 edges"));
        assert!(s.contains("A --[2 -> 3, delay 1, 8B tokens]--> B"));
    }

    #[test]
    fn graph_debug_shows_dynamic_rates() {
        let (mut g, a, b) = two_actor_graph();
        g.add_dynamic_edge(a, b, 10, 8, 2, 4).unwrap();
        assert!(format!("{g:?}").contains("Dynamic"));
    }
}

//! Parameterized synchronous dataflow (PSDF) and its VTS envelope.
//!
//! Bhattacharya & Bhattacharyya's *parameterized dataflow* lets port
//! rates depend on run-time parameters that are reconfigured between
//! iterations — exactly the situation of the paper's application 1,
//! where "the number of coefficients (that depend on the model order M)
//! and the size of the input frame are not known before run-time".
//!
//! This module provides the modeling side: integer parameters with
//! bounded domains, rate expressions over them, per-configuration
//! instantiation to plain SDF ([`PsdfGraph::instantiate`]), a
//! quasi-static consistency check over the whole domain
//! ([`PsdfGraph::check_consistency`]), and the bridge the paper implies:
//! [`PsdfGraph::vts_envelope`] collapses every parameterized rate into a
//! dynamic edge bounded by the rate's domain maximum, after which the
//! ordinary VTS/SPI flow applies.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};
use crate::graph::{ActorId, EdgeId, SdfGraph};

/// An integer run-time parameter with an inclusive domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Name used in diagnostics.
    pub name: String,
    /// Smallest admissible value (≥ 1 where used as a rate).
    pub min: u32,
    /// Largest admissible value.
    pub max: u32,
}

/// Identifier of a parameter within one [`PsdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// A port rate that may reference a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RateExpr {
    /// A compile-time constant.
    Const(u32),
    /// `mul × param` (use `mul = 1` for the bare parameter).
    Param {
        /// The referenced parameter.
        param: ParamId,
        /// Constant multiplier.
        mul: u32,
    },
}

impl RateExpr {
    /// Evaluates under a parameter valuation.
    fn eval(&self, values: &[u32]) -> u32 {
        match *self {
            RateExpr::Const(c) => c,
            RateExpr::Param { param, mul } => values[param.0] * mul,
        }
    }

    /// Maximum over the parameter domains.
    fn max_over(&self, params: &[Param]) -> u32 {
        match *self {
            RateExpr::Const(c) => c,
            RateExpr::Param { param, mul } => params[param.0].max * mul,
        }
    }

    fn references(&self) -> Option<ParamId> {
        match *self {
            RateExpr::Const(_) => None,
            RateExpr::Param { param, .. } => Some(param),
        }
    }
}

/// A parameterized edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PsdfEdge {
    src: ActorId,
    dst: ActorId,
    produce: RateExpr,
    consume: RateExpr,
    delay: u64,
    token_bytes: u32,
}

/// A parameterized dataflow graph.
///
/// # Examples
///
/// Application 1's frame/order parameterization in miniature:
///
/// ```
/// use spi_dataflow::psdf::{PsdfGraph, RateExpr};
///
/// let mut g = PsdfGraph::new();
/// let frame_len = g.add_param("N", 64, 256);
/// let reader = g.add_actor("reader", 10);
/// let worker = g.add_actor("worker", 10);
/// // The reader emits N samples per firing; the worker consumes N.
/// g.add_edge(reader, worker,
///     RateExpr::Param { param: frame_len, mul: 1 },
///     RateExpr::Param { param: frame_len, mul: 1 }, 0, 8)?;
///
/// // Every point of the domain instantiates to a consistent SDF graph…
/// g.check_consistency()?;
/// // …and the VTS envelope admits the whole family at once.
/// let envelope = g.vts_envelope()?;
/// assert!(spi_dataflow::VtsConversion::convert(&envelope)?.graph().is_pure_sdf());
/// # Ok::<(), spi_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PsdfGraph {
    params: Vec<Param>,
    names: Vec<String>,
    exec_cycles: Vec<u64>,
    edges: Vec<PsdfEdge>,
}

impl PsdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PsdfGraph::default()
    }

    /// Declares a parameter with the inclusive domain `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max` — rates must stay
    /// positive over the whole domain, so such a declaration is a
    /// construction bug.
    pub fn add_param(&mut self, name: impl Into<String>, min: u32, max: u32) -> ParamId {
        assert!(
            min >= 1 && min <= max,
            "parameter domain must be [min≥1, max≥min]"
        );
        self.params.push(Param {
            name: name.into(),
            min,
            max,
        });
        ParamId(self.params.len() - 1)
    }

    /// Adds an actor.
    pub fn add_actor(&mut self, name: impl Into<String>, exec_cycles: u64) -> ActorId {
        self.names.push(name.into());
        self.exec_cycles.push(exec_cycles);
        ActorId(self.names.len() - 1)
    }

    /// Adds a parameterized edge.
    ///
    /// # Errors
    ///
    /// [`DataflowError::UnknownActor`] for bad endpoints and
    /// [`DataflowError::ZeroRate`] for constant-zero rates.
    pub fn add_edge(
        &mut self,
        src: ActorId,
        dst: ActorId,
        produce: RateExpr,
        consume: RateExpr,
        delay: u64,
        token_bytes: u32,
    ) -> Result<EdgeId> {
        if src.0 >= self.names.len() {
            return Err(DataflowError::UnknownActor(src));
        }
        if dst.0 >= self.names.len() {
            return Err(DataflowError::UnknownActor(dst));
        }
        let id = EdgeId(self.edges.len());
        for r in [&produce, &consume] {
            if let RateExpr::Const(0) = r {
                return Err(DataflowError::ZeroRate { edge: id });
            }
            if let RateExpr::Param { mul: 0, .. } = r {
                return Err(DataflowError::ZeroRate { edge: id });
            }
            if let Some(p) = r.references() {
                if p.0 >= self.params.len() {
                    return Err(DataflowError::UnknownActor(ActorId(p.0)));
                }
            }
        }
        self.edges.push(PsdfEdge {
            src,
            dst,
            produce,
            consume,
            delay,
            token_bytes,
        });
        Ok(id)
    }

    /// Number of declared parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Instantiates the graph for one parameter valuation (`values[i]`
    /// is the value of `ParamId(i)`).
    ///
    /// # Errors
    ///
    /// [`DataflowError::Overflow`] if the valuation has the wrong arity
    /// or leaves its domain; construction errors from the resulting SDF
    /// graph otherwise.
    pub fn instantiate(&self, values: &[u32]) -> Result<SdfGraph> {
        if values.len() != self.params.len() {
            return Err(DataflowError::Overflow);
        }
        for (v, p) in values.iter().zip(&self.params) {
            if *v < p.min || *v > p.max {
                return Err(DataflowError::Overflow);
            }
        }
        let mut g = SdfGraph::new();
        for (name, &cycles) in self.names.iter().zip(&self.exec_cycles) {
            g.add_actor(name.clone(), cycles);
        }
        for e in &self.edges {
            g.add_edge(
                e.src,
                e.dst,
                e.produce.eval(values),
                e.consume.eval(values),
                e.delay,
                e.token_bytes,
            )?;
        }
        Ok(g)
    }

    /// Quasi-static consistency: every point of the (product) parameter
    /// domain must instantiate to a consistent, live SDF graph.
    ///
    /// The full product is enumerated when it has at most
    /// `MAX_ENUMERATION` points; larger domains are sampled at all
    /// corners plus the midpoint of each parameter, which catches every
    /// inconsistency expressible with the affine rates supported here.
    ///
    /// # Errors
    ///
    /// The first failing valuation's error.
    pub fn check_consistency(&self) -> Result<()> {
        const MAX_ENUMERATION: u64 = 4096;
        let sizes: Vec<u64> = self
            .params
            .iter()
            .map(|p| u64::from(p.max - p.min) + 1)
            .collect();
        let total: u64 = sizes.iter().product();
        let valuations: Vec<Vec<u32>> = if self.params.is_empty() {
            vec![Vec::new()]
        } else if total <= MAX_ENUMERATION {
            let mut out = Vec::new();
            let mut idx = vec![0u64; sizes.len()];
            loop {
                out.push(
                    idx.iter()
                        .zip(&self.params)
                        .map(|(&i, p)| p.min + i as u32)
                        .collect(),
                );
                let mut carry = 0;
                loop {
                    idx[carry] += 1;
                    if idx[carry] < sizes[carry] {
                        break;
                    }
                    idx[carry] = 0;
                    carry += 1;
                    if carry == sizes.len() {
                        return check_all(self, out);
                    }
                }
            }
        } else {
            // Corners + per-parameter midpoints.
            let mut out = Vec::new();
            let corners = 1u64 << self.params.len().min(12);
            for mask in 0..corners {
                out.push(
                    self.params
                        .iter()
                        .enumerate()
                        .map(|(i, p)| if mask >> i & 1 == 1 { p.max } else { p.min })
                        .collect(),
                );
            }
            let mids: Vec<u32> = self
                .params
                .iter()
                .map(|p| p.min + (p.max - p.min) / 2)
                .collect();
            out.push(mids);
            out
        };
        check_all(self, valuations)
    }

    /// Collapses every parameterized rate into a dynamic edge bounded by
    /// its domain maximum — the paper's VTS discipline applied to PSDF:
    /// "when the bound exists, it can be determined from any available
    /// bound on the maximum variable data rate for a port".
    ///
    /// # Errors
    ///
    /// Construction errors from the resulting graph.
    pub fn vts_envelope(&self) -> Result<SdfGraph> {
        let mut g = SdfGraph::new();
        for (name, &cycles) in self.names.iter().zip(&self.exec_cycles) {
            g.add_actor(name.clone(), cycles);
        }
        for e in &self.edges {
            let parameterized =
                e.produce.references().is_some() || e.consume.references().is_some();
            if parameterized {
                g.add_dynamic_edge(
                    e.src,
                    e.dst,
                    e.produce.max_over(&self.params),
                    e.consume.max_over(&self.params),
                    e.delay,
                    e.token_bytes,
                )?;
            } else {
                g.add_edge(
                    e.src,
                    e.dst,
                    e.produce.eval(&[]),
                    e.consume.eval(&[]),
                    e.delay,
                    e.token_bytes,
                )?;
            }
        }
        Ok(g)
    }
}

fn check_all(g: &PsdfGraph, valuations: Vec<Vec<u32>>) -> Result<()> {
    for v in valuations {
        let sdf = g.instantiate(&v)?;
        sdf.repetition_vector()?;
        sdf.class_s_schedule(crate::schedule::FirePolicy::FewestFirings)?;
    }
    Ok(())
}

/// Human-readable parameter table (for reports).
pub fn param_table(g: &PsdfGraph) -> Vec<(String, u32, u32)> {
    g.params
        .iter()
        .map(|p| (p.name.clone(), p.min, p.max))
        .collect()
}

/// Map from parameter name to id, convenient for tooling.
pub fn params_by_name(g: &PsdfGraph) -> HashMap<String, ParamId> {
    g.params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), ParamId(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_graph() -> (PsdfGraph, ParamId, ActorId, ActorId) {
        let mut g = PsdfGraph::new();
        let n = g.add_param("N", 2, 8);
        let a = g.add_actor("src", 5);
        let b = g.add_actor("snk", 5);
        g.add_edge(
            a,
            b,
            RateExpr::Param { param: n, mul: 1 },
            RateExpr::Param { param: n, mul: 1 },
            0,
            4,
        )
        .unwrap();
        (g, n, a, b)
    }

    #[test]
    fn instantiation_evaluates_rates() {
        let (g, _, a, b) = frame_graph();
        let sdf = g.instantiate(&[5]).unwrap();
        let e = sdf.edges().next().unwrap().1;
        assert_eq!(e.produce.bound(), 5);
        let q = sdf.repetition_vector().unwrap();
        assert_eq!((q[a], q[b]), (1, 1));
    }

    #[test]
    fn out_of_domain_valuations_rejected() {
        let (g, ..) = frame_graph();
        assert!(g.instantiate(&[1]).is_err());
        assert!(g.instantiate(&[9]).is_err());
        assert!(g.instantiate(&[]).is_err());
        assert!(g.instantiate(&[5, 5]).is_err());
    }

    #[test]
    fn consistency_over_whole_domain() {
        let (g, ..) = frame_graph();
        g.check_consistency().unwrap();
    }

    #[test]
    fn inconsistent_parameterization_detected() {
        // produce N, consume 3: only consistent when... always (q scales),
        // so build a real inconsistency: two paths demanding conflicting q.
        let mut g = PsdfGraph::new();
        let n = g.add_param("N", 2, 4);
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        // Parallel edges: one at rate N→1, one at 1→1. Consistent only
        // when N = 1 — never in the domain.
        g.add_edge(
            a,
            b,
            RateExpr::Param { param: n, mul: 1 },
            RateExpr::Const(1),
            0,
            4,
        )
        .unwrap();
        g.add_edge(a, b, RateExpr::Const(1), RateExpr::Const(1), 0, 4)
            .unwrap();
        assert!(g.check_consistency().is_err());
    }

    #[test]
    fn envelope_bounds_match_domain_maxima() {
        let (g, ..) = frame_graph();
        let env = g.vts_envelope().unwrap();
        let e = env.edges().next().unwrap().1;
        assert!(e.is_dynamic());
        assert_eq!(e.produce.bound(), 8);
        assert_eq!(e.consume.bound(), 8);
    }

    #[test]
    fn constant_edges_stay_static_in_envelope() {
        let mut g = PsdfGraph::new();
        let _m = g.add_param("M", 1, 4);
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(a, b, RateExpr::Const(2), RateExpr::Const(3), 1, 4)
            .unwrap();
        let env = g.vts_envelope().unwrap();
        let e = env.edges().next().unwrap().1;
        assert!(!e.is_dynamic());
        assert_eq!(e.delay, 1);
    }

    #[test]
    fn scaled_parameters_multiply() {
        let mut g = PsdfGraph::new();
        let m = g.add_param("M", 1, 3);
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(
            a,
            b,
            RateExpr::Param { param: m, mul: 4 },
            RateExpr::Const(2),
            0,
            4,
        )
        .unwrap();
        let sdf = g.instantiate(&[3]).unwrap();
        assert_eq!(sdf.edges().next().unwrap().1.produce.bound(), 12);
        let env = g.vts_envelope().unwrap();
        assert_eq!(env.edges().next().unwrap().1.produce.bound(), 12);
    }

    #[test]
    fn zero_rate_expressions_rejected() {
        let mut g = PsdfGraph::new();
        let m = g.add_param("M", 1, 3);
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        assert!(g
            .add_edge(a, b, RateExpr::Const(0), RateExpr::Const(1), 0, 4)
            .is_err());
        assert!(g
            .add_edge(
                a,
                b,
                RateExpr::Param { param: m, mul: 0 },
                RateExpr::Const(1),
                0,
                4
            )
            .is_err());
    }

    #[test]
    fn large_domain_sampling_path_runs() {
        let mut g = PsdfGraph::new();
        let n = g.add_param("N", 1, 10_000);
        let m = g.add_param("M", 1, 10_000);
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        let c = g.add_actor("c", 1);
        g.add_edge(
            a,
            b,
            RateExpr::Param { param: n, mul: 1 },
            RateExpr::Param { param: n, mul: 1 },
            0,
            4,
        )
        .unwrap();
        g.add_edge(
            b,
            c,
            RateExpr::Param { param: m, mul: 1 },
            RateExpr::Param { param: m, mul: 1 },
            0,
            4,
        )
        .unwrap();
        g.check_consistency().unwrap();
    }

    #[test]
    fn helper_tables() {
        let (g, n, ..) = frame_graph();
        assert_eq!(param_table(&g), vec![("N".to_string(), 2, 8)]);
        assert_eq!(params_by_name(&g)["N"], n);
    }

    #[test]
    #[should_panic(expected = "parameter domain")]
    fn bad_domain_panics() {
        let mut g = PsdfGraph::new();
        g.add_param("bad", 0, 5);
    }
}

//! Admissible single-processor schedules, deadlock detection and
//! simulation-based SDF buffer bounds.
//!
//! The paper's eq. (1) needs `c_sdf(e)` — "an upper bound on the buffer
//! size of e in terms of the maximum number of tokens that coexist on e at
//! any given time … computed using any of the existing techniques for
//! computing SDF buffer bounds". This module implements the classic
//! class-S simulation of Lee & Messerschmitt: fire fireable actors until
//! every actor has completed its repetition-vector quota, tracking the
//! running maximum token count per edge. If the simulation stalls before
//! the quota is met, the graph deadlocks.

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};
use crate::graph::{ActorId, EdgeId, SdfGraph};
use crate::rates::RepetitionVector;

/// A flat single-processor schedule: one entry per firing.
///
/// Produced by [`SdfGraph::class_s_schedule`]; also reusable as the firing
/// order inside each processor of a multiprocessor partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatSchedule {
    firings: Vec<ActorId>,
}

impl FlatSchedule {
    /// The firing sequence.
    pub fn firings(&self) -> &[ActorId] {
        &self.firings
    }

    /// Number of firings in one iteration.
    pub fn len(&self) -> usize {
        self.firings.len()
    }

    /// `true` for the empty schedule.
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }
}

/// Per-edge buffer bounds measured by schedule simulation.
///
/// `bound(e)` is the maximum number of simultaneously-live tokens observed
/// on `e` under the schedule that produced this report, which is a valid
/// buffer size for executing that schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferBounds {
    bounds: Vec<u64>,
}

impl BufferBounds {
    /// Maximum simultaneously-live tokens on `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to the graph that produced this
    /// report.
    pub fn bound(&self, edge: EdgeId) -> u64 {
        self.bounds[edge.0]
    }

    /// Iterates over `(EdgeId, bound)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, u64)> + '_ {
        self.bounds.iter().enumerate().map(|(i, &b)| (EdgeId(i), b))
    }

    /// Sum of all per-edge bounds in tokens (a total-memory proxy).
    pub fn total_tokens(&self) -> u64 {
        self.bounds.iter().sum()
    }
}

/// Outcome of one class-S scheduling run: the schedule plus the buffer
/// bounds it witnessed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// The admissible firing order found.
    pub schedule: FlatSchedule,
    /// Max tokens observed per edge while executing it.
    pub bounds: BufferBounds,
}

/// Policy for choosing among simultaneously fireable actors.
///
/// Different policies witness different (all valid) buffer bounds; the
/// default `FewestFirings` keeps actors in lock-step, which empirically
/// yields tight bounds on signal-processing graphs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FirePolicy {
    /// Fire the fireable actor with the fewest completed firings
    /// (ties broken by actor id). Keeps the graph in lock-step.
    #[default]
    FewestFirings,
    /// Fire the fireable actor with the smallest id. Tends to run
    /// producers ahead and witnesses looser (more conservative) bounds.
    LowestId,
}

impl SdfGraph {
    /// Builds an admissible single-processor schedule by class-S
    /// simulation, also measuring per-edge buffer bounds.
    ///
    /// # Errors
    ///
    /// * Everything [`SdfGraph::repetition_vector`] can return.
    /// * [`DataflowError::Deadlock`] if no admissible schedule exists
    ///   (some cycle has insufficient initial tokens).
    pub fn class_s_schedule(&self, policy: FirePolicy) -> Result<ScheduleReport> {
        let q = self.repetition_vector()?;
        self.simulate_schedule(&q, policy)
    }

    /// Convenience wrapper: schedule with the default policy and return
    /// only the buffer bounds (`c_sdf` of paper eq. 1).
    ///
    /// # Errors
    ///
    /// Same as [`SdfGraph::class_s_schedule`].
    pub fn sdf_buffer_bounds(&self) -> Result<BufferBounds> {
        Ok(self.class_s_schedule(FirePolicy::FewestFirings)?.bounds)
    }

    fn simulate_schedule(
        &self,
        q: &RepetitionVector,
        policy: FirePolicy,
    ) -> Result<ScheduleReport> {
        let n = self.actor_count();
        let mut tokens: Vec<u64> = self.edges().map(|(_, e)| e.delay).collect();
        let mut max_tokens = tokens.clone();
        let mut fired = vec![0u64; n];
        let mut firings = Vec::with_capacity(
            usize::try_from(q.total_firings()).map_err(|_| DataflowError::Overflow)?,
        );

        let in_edges: Vec<Vec<EdgeId>> = (0..n).map(|a| self.in_edges(ActorId(a))).collect();
        let out_edges: Vec<Vec<EdgeId>> = (0..n).map(|a| self.out_edges(ActorId(a))).collect();

        let fireable = |a: usize, fired: &[u64], tokens: &[u64]| -> bool {
            if fired[a] >= q.count(ActorId(a)) {
                return false;
            }
            in_edges[a]
                .iter()
                .all(|&e| tokens[e.0] >= u64::from(self.edge(e).consume.bound()))
        };

        loop {
            let candidate = match policy {
                FirePolicy::FewestFirings => (0..n)
                    .filter(|&a| fireable(a, &fired, &tokens))
                    .min_by_key(|&a| (fired[a], a)),
                FirePolicy::LowestId => (0..n).find(|&a| fireable(a, &fired, &tokens)),
            };
            let Some(a) = candidate else { break };

            for &e in &in_edges[a] {
                tokens[e.0] -= u64::from(self.edge(e).consume.bound());
            }
            for &e in &out_edges[a] {
                tokens[e.0] += u64::from(self.edge(e).produce.bound());
                max_tokens[e.0] = max_tokens[e.0].max(tokens[e.0]);
            }
            fired[a] += 1;
            firings.push(ActorId(a));
        }

        let starved: Vec<ActorId> = (0..n)
            .filter(|&a| fired[a] < q.count(ActorId(a)))
            .map(ActorId)
            .collect();
        if !starved.is_empty() {
            return Err(DataflowError::Deadlock { starved });
        }

        Ok(ScheduleReport {
            schedule: FlatSchedule { firings },
            bounds: BufferBounds { bounds: max_tokens },
        })
    }
}

/// Aggregate validation of a graph: consistency, liveness, and buffer
/// bounds in one pass (the checks a tool runs before committing to a
/// design).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Firings per minimal iteration.
    pub total_firings: u64,
    /// Sum of per-edge buffer bounds, in tokens.
    pub total_buffer_tokens: u64,
    /// Sum of per-edge buffer bounds, in bytes.
    pub total_buffer_bytes: u64,
}

impl SdfGraph {
    /// Validates the graph end to end: solvable balance equations, an
    /// admissible schedule exists, and reports the aggregate buffer
    /// footprint.
    ///
    /// Dynamic edges are admitted by validating the VTS conversion
    /// (bytes use `b_max` for converted edges).
    ///
    /// # Errors
    ///
    /// The first failing analysis' error ([`crate::DataflowError`]).
    pub fn validate(&self) -> Result<ValidationReport> {
        let vts = crate::vts::VtsConversion::convert(self)?;
        let graph = vts.graph();
        let q = graph.repetition_vector()?;
        let report = graph.class_s_schedule(FirePolicy::FewestFirings)?;
        let mut total_buffer_bytes = 0u64;
        for (eid, bound) in report.bounds.iter() {
            total_buffer_bytes += bound * vts.bytes_per_packed_token(eid)?;
        }
        Ok(ValidationReport {
            total_firings: q.total_firings(),
            total_buffer_tokens: report.bounds.total_tokens(),
            total_buffer_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (SdfGraph, ActorId, ActorId, ActorId, EdgeId, EdgeId) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let c = g.add_actor("C", 1);
        let e1 = g.add_edge(a, b, 2, 3, 0, 4).unwrap();
        let e2 = g.add_edge(b, c, 1, 1, 0, 4).unwrap();
        (g, a, b, c, e1, e2)
    }

    #[test]
    fn schedule_respects_repetition_vector() {
        let (g, a, b, c, ..) = chain();
        let report = g.class_s_schedule(FirePolicy::FewestFirings).unwrap();
        let q = g.repetition_vector().unwrap();
        let count = |x: ActorId| {
            report
                .schedule
                .firings()
                .iter()
                .filter(|&&f| f == x)
                .count() as u64
        };
        assert_eq!(count(a), q[a]);
        assert_eq!(count(b), q[b]);
        assert_eq!(count(c), q[c]);
        assert_eq!(report.schedule.len() as u64, q.total_firings());
    }

    #[test]
    fn schedule_is_admissible_prefixwise() {
        // Replaying the schedule must never drive an edge negative.
        let (g, ..) = chain();
        let report = g.class_s_schedule(FirePolicy::LowestId).unwrap();
        let mut tokens: Vec<i64> = g.edges().map(|(_, e)| e.delay as i64).collect();
        for &f in report.schedule.firings() {
            for e in g.in_edges(f) {
                tokens[e.0] -= i64::from(g.edge(e).consume.bound());
                assert!(tokens[e.0] >= 0, "negative tokens on {e}");
            }
            for e in g.out_edges(f) {
                tokens[e.0] += i64::from(g.edge(e).produce.bound());
            }
        }
        // After one iteration every edge returns to its delay count.
        for ((_, e), t) in g.edges().zip(tokens) {
            assert_eq!(t, e.delay as i64);
        }
    }

    #[test]
    fn buffer_bounds_cover_observed_maxima() {
        let (g, _, _, _, e1, e2) = chain();
        let bounds = g.sdf_buffer_bounds().unwrap();
        // On e1 the lock-step policy reaches at most 4 tokens
        // (A A fire -> 4, B consumes 3 -> 1, ...).
        assert!(
            bounds.bound(e1) >= 3,
            "must hold at least one consumption batch"
        );
        assert!(bounds.bound(e1) <= 4);
        assert!(bounds.bound(e2) >= 1);
        assert!(bounds.total_tokens() >= bounds.bound(e1));
    }

    #[test]
    fn deadlocked_cycle_detected() {
        // A -> B -> A with no initial tokens can never start.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, a, 1, 1, 0, 4).unwrap();
        match g.class_s_schedule(FirePolicy::FewestFirings) {
            Err(DataflowError::Deadlock { starved }) => {
                assert_eq!(starved.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_with_enough_delay_schedules() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, a, 1, 1, 1, 4).unwrap();
        let report = g.class_s_schedule(FirePolicy::FewestFirings).unwrap();
        assert_eq!(report.schedule.len(), 2);
        assert_eq!(report.schedule.firings()[0], a);
    }

    #[test]
    fn cycle_with_insufficient_delay_for_rates_deadlocks() {
        // B needs 3 tokens but the feedback delay only ever provides 2
        // before A must fire, and A needs B's output.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 3, 0, 4).unwrap();
        g.add_edge(b, a, 3, 1, 2, 4).unwrap();
        assert!(matches!(
            g.class_s_schedule(FirePolicy::FewestFirings),
            Err(DataflowError::Deadlock { .. })
        ));
    }

    #[test]
    fn policies_witness_valid_but_possibly_different_bounds() {
        let (g, ..) = chain();
        let lock = g.class_s_schedule(FirePolicy::FewestFirings).unwrap();
        let eager = g.class_s_schedule(FirePolicy::LowestId).unwrap();
        // Both valid; eager producer-first can only need as much or more.
        for (e, b) in lock.bounds.iter() {
            assert!(eager.bounds.bound(e) >= 1 || b == 0 || b > 0);
        }
        assert_eq!(lock.schedule.len(), eager.schedule.len());
    }

    #[test]
    fn validate_reports_aggregates() {
        let (g, ..) = chain();
        let v = g.validate().unwrap();
        assert_eq!(
            v.total_firings,
            g.repetition_vector().unwrap().total_firings()
        );
        assert!(v.total_buffer_tokens >= 3);
        assert_eq!(v.total_buffer_bytes, v.total_buffer_tokens * 4);
    }

    #[test]
    fn validate_admits_dynamic_graphs() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_dynamic_edge(a, b, 16, 16, 0, 4).unwrap();
        let v = g.validate().unwrap();
        assert_eq!(v.total_firings, 2);
        assert_eq!(v.total_buffer_bytes, 64, "one packed token of b_max bytes");
    }

    #[test]
    fn validate_rejects_deadlock() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, a, 1, 1, 0, 4).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn delays_count_toward_bounds() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let e = g.add_edge(a, b, 1, 1, 5, 4).unwrap();
        let bounds = g.sdf_buffer_bounds().unwrap();
        assert!(bounds.bound(e) >= 5, "initial tokens live on the edge");
    }
}

//! Looped schedules and buffer-memory-minimizing chain scheduling.
//!
//! Single-processor SPI subsystems are synthesized from *looped
//! schedules* — nested loop notation like `(2 (3 A) B)` — following the
//! software-synthesis line of work behind the paper (Bhattacharyya et
//! al.). A *single-appearance* schedule names each actor once, giving
//! minimal code size; among those, different loop hierarchies trade
//! buffer memory. For chain-structured graphs the classic dynamic
//! program over binary splits finds the buffer-optimal hierarchy; it is
//! implemented here ([`optimal_chain_schedule`]) along with schedule
//! flattening, validation and buffer measurement.

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};
use crate::graph::{ActorId, SdfGraph};
use crate::rates::gcd;

/// A looped schedule term.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopedSchedule {
    /// Fire one actor once.
    Fire(ActorId),
    /// Execute the body `count` times.
    Loop {
        /// Iteration count.
        count: u64,
        /// Loop body, executed in order.
        body: Vec<LoopedSchedule>,
    },
}

impl LoopedSchedule {
    /// A `(count body…)` loop.
    pub fn repeat(count: u64, body: Vec<LoopedSchedule>) -> Self {
        LoopedSchedule::Loop { count, body }
    }

    /// Expands to the flat firing sequence.
    pub fn flatten(&self) -> Vec<ActorId> {
        let mut out = Vec::new();
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut Vec<ActorId>) {
        match self {
            LoopedSchedule::Fire(a) => out.push(*a),
            LoopedSchedule::Loop { count, body } => {
                for _ in 0..*count {
                    for term in body {
                        term.flatten_into(out);
                    }
                }
            }
        }
    }

    /// Number of *appearances* (schedule code size, in actor mentions).
    pub fn appearances(&self) -> usize {
        match self {
            LoopedSchedule::Fire(_) => 1,
            LoopedSchedule::Loop { body, .. } => body.iter().map(Self::appearances).sum(),
        }
    }

    /// `true` if every actor appears at most once.
    pub fn is_single_appearance(&self) -> bool {
        let flat_actors: Vec<ActorId> = {
            let mut v = Vec::new();
            self.collect_appearances(&mut v);
            v
        };
        let mut dedup = flat_actors.clone();
        dedup.sort();
        dedup.dedup();
        dedup.len() == flat_actors.len()
    }

    fn collect_appearances(&self, out: &mut Vec<ActorId>) {
        match self {
            LoopedSchedule::Fire(a) => out.push(*a),
            LoopedSchedule::Loop { body, .. } => {
                for term in body {
                    term.collect_appearances(out);
                }
            }
        }
    }
}

impl std::fmt::Display for LoopedSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopedSchedule::Fire(a) => write!(f, "{a}"),
            LoopedSchedule::Loop { count, body } => {
                write!(f, "({count}")?;
                for term in body {
                    write!(f, " {term}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Validates a looped schedule against `graph`: flattening it must be an
/// admissible firing sequence covering exactly one iteration.
///
/// Returns the per-edge maximum token counts (the schedule's buffer
/// memory) on success.
///
/// # Errors
///
/// * [`DataflowError::Deadlock`] if some firing would underflow an edge
///   (the flattened order is inadmissible) — the starved actors name the
///   point of failure;
/// * [`DataflowError::Inconsistent`] if the firing counts do not match
///   the repetition vector.
pub fn validate(graph: &SdfGraph, schedule: &LoopedSchedule) -> Result<Vec<u64>> {
    let q = graph.repetition_vector()?;
    let flat = schedule.flatten();
    let mut fired = vec![0u64; graph.actor_count()];
    let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.delay).collect();
    let mut max_tokens = tokens.clone();
    for a in flat {
        for e in graph.in_edges(a) {
            let need = u64::from(graph.edge(e).consume.bound());
            if tokens[e.0] < need {
                return Err(DataflowError::Deadlock { starved: vec![a] });
            }
            tokens[e.0] -= need;
        }
        for e in graph.out_edges(a) {
            tokens[e.0] += u64::from(graph.edge(e).produce.bound());
            max_tokens[e.0] = max_tokens[e.0].max(tokens[e.0]);
        }
        fired[a.0] += 1;
    }
    for (i, &count) in fired.iter().enumerate() {
        if count != q[ActorId(i)] {
            return Err(DataflowError::Inconsistent {
                edge: crate::graph::EdgeId(0),
            });
        }
    }
    Ok(max_tokens)
}

/// Total buffer memory (in tokens) of a schedule: the sum of per-edge
/// maxima from [`validate`].
///
/// # Errors
///
/// Same conditions as [`validate`].
pub fn buffer_memory(graph: &SdfGraph, schedule: &LoopedSchedule) -> Result<u64> {
    Ok(validate(graph, schedule)?.iter().sum())
}

/// The naive flat single-appearance schedule of an acyclic graph:
/// `(q₀ A₀)(q₁ A₁)…` in topological order.
///
/// # Errors
///
/// Repetition-vector errors, plus [`DataflowError::Deadlock`] if the
/// graph has a (non-trivially-delayed) cycle, which flat SAS cannot
/// schedule.
pub fn flat_single_appearance(graph: &SdfGraph) -> Result<LoopedSchedule> {
    let q = graph.repetition_vector()?;
    let order = topological_actors(graph)?;
    let body = order
        .into_iter()
        .map(|a| LoopedSchedule::repeat(q[a], vec![LoopedSchedule::Fire(a)]))
        .collect();
    let schedule = LoopedSchedule::repeat(1, body);
    validate(graph, &schedule)?;
    Ok(schedule)
}

/// Buffer-optimal single-appearance schedule for a *chain* graph
/// `A₀ → A₁ → … → Aₙ₋₁` via the classic O(n³) dynamic program over
/// binary splits (GDPPO restricted to chains).
///
/// # Errors
///
/// [`DataflowError::Inconsistent`] if `graph` is not a simple chain in
/// actor-id order; repetition-vector errors otherwise.
pub fn optimal_chain_schedule(graph: &SdfGraph) -> Result<LoopedSchedule> {
    let n = graph.actor_count();
    if n == 0 {
        return Err(DataflowError::EmptyGraph);
    }
    // Verify chain shape: edge i connects actor i → i+1.
    if graph.edge_count() != n - 1 {
        return Err(DataflowError::Inconsistent {
            edge: crate::graph::EdgeId(0),
        });
    }
    for (id, e) in graph.edges() {
        if e.src != ActorId(id.0) || e.dst != ActorId(id.0 + 1) {
            return Err(DataflowError::Inconsistent { edge: id });
        }
    }
    let q = graph.repetition_vector()?;

    // g[i][j] = gcd of q over actors i..=j (loop factor of the subchain).
    let mut g = vec![vec![0u64; n]; n];
    for i in 0..n {
        g[i][i] = q[ActorId(i)];
        for j in (i + 1)..n {
            g[i][j] = gcd(g[i][j - 1], q[ActorId(j)]);
        }
    }

    // Edge k (between actor k and k+1) inside subchain i..=j contributes
    // buffer q[k]·p[k] / g[i][j] when split at k: the left and right
    // subloops exchange one batch per outer-loop iteration.
    let produced_per_iter =
        |k: usize| q[ActorId(k)] * u64::from(graph.edge(crate::graph::EdgeId(k)).produce.bound());

    // DP over subchains: cost[i][j] = min over split k of
    //   cost[i][k] + cost[k+1][j] + produced(k)/g[i][j].
    let mut cost = vec![vec![0u64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let mut best = u64::MAX;
            let mut best_k = i;
            for k in i..j {
                let c = cost[i][k] + cost[k + 1][j] + produced_per_iter(k) / g[i][j];
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }

    fn build(
        i: usize,
        j: usize,
        outer: u64,
        g: &[Vec<u64>],
        split: &[Vec<usize>],
    ) -> LoopedSchedule {
        let factor = g[i][j] / outer;
        if i == j {
            return LoopedSchedule::repeat(factor, vec![LoopedSchedule::Fire(ActorId(i))]);
        }
        let k = split[i][j];
        let body = vec![
            build(i, k, g[i][j], g, split),
            build(k + 1, j, g[i][j], g, split),
        ];
        LoopedSchedule::repeat(factor, body)
    }

    let schedule = build(0, n - 1, 1, &g, &split);
    validate(graph, &schedule)?;
    Ok(schedule)
}

/// Topological order of the actors over delay-less edges.
fn topological_actors(graph: &SdfGraph) -> Result<Vec<ActorId>> {
    let n = graph.actor_count();
    let mut indeg = vec![0usize; n];
    for (_, e) in graph.edges() {
        if e.delay == 0 {
            indeg[e.dst.0] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    stack.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(n);
    while let Some(u) = stack.pop() {
        order.push(ActorId(u));
        for (_, e) in graph.edges() {
            if e.delay == 0 && e.src.0 == u {
                indeg[e.dst.0] -= 1;
                if indeg[e.dst.0] == 0 {
                    stack.push(e.dst.0);
                    stack.sort_unstable_by(|a, b| b.cmp(a));
                }
            }
        }
    }
    if order.len() != n {
        return Err(DataflowError::Deadlock {
            starved: (0..n).map(ActorId).filter(|a| !order.contains(a)).collect(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical CD-to-DAT-style rate chain used in the SAS papers.
    fn rate_chain(rates: &[(u32, u32)]) -> SdfGraph {
        let mut g = SdfGraph::new();
        let mut prev = g.add_actor("a0", 1);
        for (i, &(p, c)) in rates.iter().enumerate() {
            let next = g.add_actor(format!("a{}", i + 1), 1);
            g.add_edge(prev, next, p, c, 0, 4).unwrap();
            prev = next;
        }
        g
    }

    #[test]
    fn flatten_expands_nested_loops() {
        let a = ActorId(0);
        let b = ActorId(1);
        let s = LoopedSchedule::repeat(
            2,
            vec![
                LoopedSchedule::repeat(3, vec![LoopedSchedule::Fire(a)]),
                LoopedSchedule::Fire(b),
            ],
        );
        let flat = s.flatten();
        assert_eq!(flat.len(), 8);
        assert_eq!(flat.iter().filter(|&&x| x == a).count(), 6);
        assert_eq!(s.to_string(), "(2 (3 a0) a1)");
        assert!(s.is_single_appearance());
        assert_eq!(s.appearances(), 2);
    }

    #[test]
    fn non_single_appearance_detected() {
        let a = ActorId(0);
        let s = LoopedSchedule::repeat(1, vec![LoopedSchedule::Fire(a), LoopedSchedule::Fire(a)]);
        assert!(!s.is_single_appearance());
    }

    #[test]
    fn validate_accepts_admissible_and_measures_buffers() {
        let g = rate_chain(&[(2, 3)]); // q = [3, 2]
        let s = LoopedSchedule::repeat(
            1,
            vec![
                LoopedSchedule::repeat(3, vec![LoopedSchedule::Fire(ActorId(0))]),
                LoopedSchedule::repeat(2, vec![LoopedSchedule::Fire(ActorId(1))]),
            ],
        );
        let bufs = validate(&g, &s).unwrap();
        assert_eq!(bufs, vec![6], "flat SAS peaks at full production");
    }

    #[test]
    fn validate_rejects_underflow_and_wrong_counts() {
        let g = rate_chain(&[(2, 3)]);
        // Consumer first: underflow.
        let bad = LoopedSchedule::repeat(1, vec![LoopedSchedule::Fire(ActorId(1))]);
        assert!(matches!(
            validate(&g, &bad),
            Err(DataflowError::Deadlock { .. })
        ));
        // Wrong totals.
        let short = LoopedSchedule::repeat(1, vec![LoopedSchedule::Fire(ActorId(0))]);
        assert!(matches!(
            validate(&g, &short),
            Err(DataflowError::Inconsistent { .. })
        ));
    }

    #[test]
    fn flat_sas_matches_topological_order() {
        let g = rate_chain(&[(3, 1), (1, 2)]); // q = [1, 3, ...]: a0→a1→a2
        let s = flat_single_appearance(&g).unwrap();
        assert!(s.is_single_appearance());
        let flat = s.flatten();
        let first_a2 = flat.iter().position(|&a| a == ActorId(2)).unwrap();
        let last_a0 = flat.iter().rposition(|&a| a == ActorId(0)).unwrap();
        assert!(last_a0 < first_a2);
    }

    #[test]
    fn chain_dp_beats_flat_sas_on_classic_example() {
        // Rates 2→3, 1→4: q = [3, 2, ...]; nested loops share gcd
        // factors and shrink buffers versus the flat schedule.
        let g = rate_chain(&[(4, 6), (2, 1)]); // q = [3, 2, 4]
        let flat = flat_single_appearance(&g).unwrap();
        let opt = optimal_chain_schedule(&g).unwrap();
        assert!(opt.is_single_appearance());
        let m_flat = buffer_memory(&g, &flat).unwrap();
        let m_opt = buffer_memory(&g, &opt).unwrap();
        assert!(
            m_opt <= m_flat,
            "DP schedule must not need more memory: {m_opt} vs {m_flat} ({opt})"
        );
    }

    #[test]
    fn chain_dp_exploits_common_factors() {
        // q = [2, 4]: the optimal schedule is (2 a0 (2 a1)).
        let g = rate_chain(&[(2, 1)]);
        let opt = optimal_chain_schedule(&g).unwrap();
        let m = buffer_memory(&g, &opt).unwrap();
        assert_eq!(m, 2, "schedule {opt} should hold at most one batch");
    }

    #[test]
    fn chain_dp_rejects_non_chains() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        let c = g.add_actor("c", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(a, c, 1, 1, 0, 4).unwrap(); // fan-out, not a chain
        assert!(optimal_chain_schedule(&g).is_err());
    }

    #[test]
    fn single_actor_chain() {
        let mut g = SdfGraph::new();
        g.add_actor("solo", 1);
        let s = optimal_chain_schedule(&g).unwrap();
        assert_eq!(s.flatten().len(), 1);
    }

    #[test]
    fn topological_order_errors_on_undelayed_cycle() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, a, 1, 1, 0, 4).unwrap();
        assert!(flat_single_appearance(&g).is_err());
    }
}

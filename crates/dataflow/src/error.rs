//! Error types for dataflow graph construction and analysis.

use std::fmt;

use crate::graph::{ActorId, EdgeId};

/// Errors produced while building or analyzing dataflow graphs.
///
/// Every fallible public function in this crate returns this type so that
/// downstream crates can route all modeling failures through one `?` chain.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataflowError {
    /// An actor id referenced an actor that does not exist in the graph.
    UnknownActor(ActorId),
    /// An edge id referenced an edge that does not exist in the graph.
    UnknownEdge(EdgeId),
    /// A port rate of zero was supplied; SDF rates must be positive.
    ZeroRate {
        /// Edge on which the zero rate was declared.
        edge: EdgeId,
    },
    /// The balance equations have no positive integer solution.
    Inconsistent {
        /// The edge whose balance equation first contradicted the others.
        edge: EdgeId,
    },
    /// The graph contains a dynamic-rate port where a pure-SDF graph is
    /// required (run VTS conversion first).
    DynamicRate {
        /// The offending edge.
        edge: EdgeId,
    },
    /// No admissible schedule exists: the graph deadlocks because some
    /// directed cycle has too few initial tokens.
    Deadlock {
        /// Actors that never became fireable before the simulation stalled.
        starved: Vec<ActorId>,
    },
    /// A dynamic port was declared without the upper bound VTS requires.
    MissingRateBound {
        /// The offending edge.
        edge: EdgeId,
    },
    /// The graph has no actors, which makes the requested analysis vacuous.
    EmptyGraph,
    /// Arithmetic overflow while solving balance equations (rates or the
    /// repetition vector exceeded the supported magnitude).
    Overflow,
    /// A DIF-format document failed to parse.
    Parse {
        /// 1-based line number of the problem.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::UnknownActor(a) => write!(f, "unknown actor id {a}"),
            DataflowError::UnknownEdge(e) => write!(f, "unknown edge id {e}"),
            DataflowError::ZeroRate { edge } => {
                write!(
                    f,
                    "zero token rate declared on edge {edge}; SDF rates must be positive"
                )
            }
            DataflowError::Inconsistent { edge } => {
                write!(f, "balance equations are inconsistent at edge {edge}")
            }
            DataflowError::DynamicRate { edge } => write!(
                f,
                "edge {edge} has a dynamic rate; apply VTS conversion before SDF analysis"
            ),
            DataflowError::Deadlock { starved } => {
                write!(f, "graph deadlocks; {} actor(s) starved", starved.len())
            }
            DataflowError::MissingRateBound { edge } => {
                write!(
                    f,
                    "dynamic port on edge {edge} lacks the upper bound required by VTS"
                )
            }
            DataflowError::EmptyGraph => write!(f, "graph contains no actors"),
            DataflowError::Overflow => {
                write!(f, "arithmetic overflow while solving balance equations")
            }
            DataflowError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataflowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<DataflowError> = vec![
            DataflowError::UnknownActor(ActorId(3)),
            DataflowError::UnknownEdge(EdgeId(7)),
            DataflowError::ZeroRate { edge: EdgeId(0) },
            DataflowError::Inconsistent { edge: EdgeId(1) },
            DataflowError::DynamicRate { edge: EdgeId(2) },
            DataflowError::Deadlock {
                starved: vec![ActorId(0)],
            },
            DataflowError::MissingRateBound { edge: EdgeId(4) },
            DataflowError::EmptyGraph,
            DataflowError::Overflow,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "message: {msg}");
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataflowError>();
    }
}

//! Boolean dataflow (BDF) switch/select — and the bridge to VTS.
//!
//! The paper's §3.1 situates VTS against Boolean dataflow (Buck): in BDF
//! "the number of tokens produced or consumed by an actor is either
//! fixed, or is a two-valued function of a control token present on a
//! control terminal". This module implements the two canonical BDF
//! actors — `switch` (route one input token to one of two outputs) and
//! `select` (take one token from one of two inputs) — with a functional
//! evaluator, plus [`vts_envelope`], the conversion the paper implies:
//! a bounded run of conditional tokens can be re-modelled as a single
//! VTS dynamic edge (the *taken* branch's tokens travel, the other
//! branch sends an empty packed token), restoring static analyzability
//! at the cost of the declared bound.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::graph::{ActorId, EdgeId, SdfGraph};

/// Which branch a control token selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Branch {
    /// The `true` output/input.
    True,
    /// The `false` output/input.
    False,
}

impl Branch {
    /// Decodes a control byte (nonzero → `True`).
    pub fn from_byte(b: u8) -> Branch {
        if b != 0 {
            Branch::True
        } else {
            Branch::False
        }
    }
}

/// A functional BDF `switch`: routes each data token to the branch named
/// by the paired control token.
///
/// # Examples
///
/// ```
/// use spi_dataflow::bdf::{Branch, Switch};
///
/// let mut sw = Switch::new();
/// sw.push_control(Branch::True);
/// sw.push_control(Branch::False);
/// sw.push_data(vec![1]);
/// sw.push_data(vec![2]);
/// let (t, f) = sw.drain();
/// assert_eq!(t, vec![vec![1]]);
/// assert_eq!(f, vec![vec![2]]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Switch {
    controls: std::collections::VecDeque<Branch>,
    data: std::collections::VecDeque<Vec<u8>>,
    out_true: Vec<Vec<u8>>,
    out_false: Vec<Vec<u8>>,
}

impl Switch {
    /// Creates an empty switch.
    pub fn new() -> Self {
        Switch::default()
    }

    /// Queues a control token.
    pub fn push_control(&mut self, b: Branch) {
        self.controls.push_back(b);
        self.step();
    }

    /// Queues a data token.
    pub fn push_data(&mut self, token: Vec<u8>) {
        self.data.push_back(token);
        self.step();
    }

    fn step(&mut self) {
        while !self.controls.is_empty() && !self.data.is_empty() {
            let b = self.controls.pop_front().expect("checked");
            let d = self.data.pop_front().expect("checked");
            match b {
                Branch::True => self.out_true.push(d),
                Branch::False => self.out_false.push(d),
            }
        }
    }

    /// Takes everything routed so far: `(true-branch, false-branch)`.
    pub fn drain(&mut self) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        (
            std::mem::take(&mut self.out_true),
            std::mem::take(&mut self.out_false),
        )
    }

    /// Tokens waiting for a matching control/data partner.
    pub fn pending(&self) -> usize {
        self.controls.len() + self.data.len()
    }
}

/// A functional BDF `select`: emits tokens drawn from the branch named by
/// each control token, in control order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Select {
    controls: std::collections::VecDeque<Branch>,
    in_true: std::collections::VecDeque<Vec<u8>>,
    in_false: std::collections::VecDeque<Vec<u8>>,
    out: Vec<Vec<u8>>,
}

impl Select {
    /// Creates an empty select.
    pub fn new() -> Self {
        Select::default()
    }

    /// Queues a control token.
    pub fn push_control(&mut self, b: Branch) {
        self.controls.push_back(b);
        self.step();
    }

    /// Queues a token on the `true` input.
    pub fn push_true(&mut self, token: Vec<u8>) {
        self.in_true.push_back(token);
        self.step();
    }

    /// Queues a token on the `false` input.
    pub fn push_false(&mut self, token: Vec<u8>) {
        self.in_false.push_back(token);
        self.step();
    }

    fn step(&mut self) {
        loop {
            match self.controls.front() {
                Some(Branch::True) if !self.in_true.is_empty() => {
                    self.controls.pop_front();
                    self.out.push(self.in_true.pop_front().expect("checked"));
                }
                Some(Branch::False) if !self.in_false.is_empty() => {
                    self.controls.pop_front();
                    self.out.push(self.in_false.pop_front().expect("checked"));
                }
                _ => break,
            }
        }
    }

    /// Takes the merged output stream.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.out)
    }
}

/// Re-models a conditional (switch/select) region as a VTS dynamic edge
/// pair — the paper's §3.1 contrast made concrete.
///
/// Where BDF would route up to `max_burst` raw tokens of `token_bytes`
/// each to one of two consumers per decision, the VTS envelope creates
/// one dynamic edge per branch: per graph iteration the taken branch
/// carries the burst, the other an empty packed token. The result is a
/// pure-SDF-analyzable graph (after [`crate::VtsConversion`]) whose
/// buffer bounds are `max_burst` tokens per branch (eq. 1) instead of
/// BDF's unbounded control-dependent schedules.
///
/// Returns the two branch edges `(true_edge, false_edge)`.
///
/// # Errors
///
/// Anything [`SdfGraph::add_dynamic_edge`] can return.
pub fn vts_envelope(
    graph: &mut SdfGraph,
    producer: ActorId,
    consumer_true: ActorId,
    consumer_false: ActorId,
    max_burst: u32,
    token_bytes: u32,
) -> Result<(EdgeId, EdgeId)> {
    let t = graph.add_dynamic_edge(
        producer,
        consumer_true,
        max_burst,
        max_burst,
        0,
        token_bytes,
    )?;
    let f = graph.add_dynamic_edge(
        producer,
        consumer_false,
        max_burst,
        max_burst,
        0,
        token_bytes,
    )?;
    Ok((t, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VtsConversion;

    #[test]
    fn switch_routes_in_control_order() {
        let mut sw = Switch::new();
        for (i, b) in [Branch::True, Branch::True, Branch::False, Branch::True]
            .into_iter()
            .enumerate()
        {
            sw.push_control(b);
            sw.push_data(vec![i as u8]);
        }
        let (t, f) = sw.drain();
        assert_eq!(t, vec![vec![0], vec![1], vec![3]]);
        assert_eq!(f, vec![vec![2]]);
        assert_eq!(sw.pending(), 0);
    }

    #[test]
    fn switch_waits_for_partners() {
        let mut sw = Switch::new();
        sw.push_data(vec![9]);
        assert_eq!(sw.pending(), 1);
        let (t, f) = sw.drain();
        assert!(t.is_empty() && f.is_empty());
        sw.push_control(Branch::False);
        let (_, f) = sw.drain();
        assert_eq!(f, vec![vec![9]]);
    }

    #[test]
    fn select_merges_in_control_order() {
        let mut sel = Select::new();
        sel.push_true(vec![1]);
        sel.push_true(vec![2]);
        sel.push_false(vec![100]);
        for b in [Branch::False, Branch::True, Branch::True] {
            sel.push_control(b);
        }
        assert_eq!(sel.drain(), vec![vec![100], vec![1], vec![2]]);
    }

    #[test]
    fn select_blocks_on_missing_branch_token() {
        let mut sel = Select::new();
        sel.push_control(Branch::True);
        sel.push_false(vec![5]); // wrong branch: must NOT pass
        assert!(sel.drain().is_empty());
        sel.push_true(vec![6]);
        assert_eq!(sel.drain(), vec![vec![6]]);
    }

    #[test]
    fn switch_select_identity() {
        // switch then select with the same control stream is an identity.
        let controls = [Branch::True, Branch::False, Branch::False, Branch::True];
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i * 3]).collect();
        let mut sw = Switch::new();
        for (b, d) in controls.iter().zip(&data) {
            sw.push_control(*b);
            sw.push_data(d.clone());
        }
        let (t, f) = sw.drain();
        let mut sel = Select::new();
        for token in t {
            sel.push_true(token);
        }
        for token in f {
            sel.push_false(token);
        }
        for b in controls {
            sel.push_control(b);
        }
        assert_eq!(sel.drain(), data);
    }

    #[test]
    fn branch_from_byte() {
        assert_eq!(Branch::from_byte(0), Branch::False);
        assert_eq!(Branch::from_byte(1), Branch::True);
        assert_eq!(Branch::from_byte(255), Branch::True);
    }

    #[test]
    fn vts_envelope_restores_static_analyzability() {
        let mut g = SdfGraph::new();
        let p = g.add_actor("producer", 1);
        let ct = g.add_actor("true-path", 1);
        let cf = g.add_actor("false-path", 1);
        let (et, ef) = vts_envelope(&mut g, p, ct, cf, 16, 4).unwrap();
        // Raw graph is dynamic; after VTS it is analyzable.
        assert!(!g.is_pure_sdf());
        let vts = VtsConversion::convert(&g).unwrap();
        let q = vts.graph().repetition_vector().unwrap();
        assert_eq!(q.total_firings(), 3);
        assert_eq!(vts.packed_capacity_bytes(et).unwrap(), 64);
        assert_eq!(vts.packed_capacity_bytes(ef).unwrap(), 64);
    }
}

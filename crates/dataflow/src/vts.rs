//! Variable Token Size (VTS) conversion — the paper's §3.
//!
//! SDF cannot express run-time-varying data rates. VTS re-models a
//! dynamic-rate edge as a *static rate-1* edge whose tokens are *packed*
//! containers of raw tokens: the number of raw tokens inside a packed
//! token varies at run time, bounded above by the declared port bound.
//! Because the packed-token *rate* is static, every SDF analysis
//! (repetition vectors, class-S scheduling, buffer bounds) applies to the
//! converted graph, while the byte volume on the edge stays bounded:
//!
//! * eq. (1): `c(e) = c_sdf(e) · b_max(e)` — total packed-token bytes,
//!   where `c_sdf(e)` is an SDF buffer bound of the converted edge and
//!   `b_max(e)` the max bytes in one packed token;
//! * eq. (2): `B(e) = (Γ + delay(e)) · c(e)` — the IPC buffer bound,
//!   computed in `spi-sched` where the IPC graph (and hence `Γ`) lives.
//!
//! At run time, packed tokens carry their size in the message header
//! (the paper argues headers beat delimiters on FPGA targets — see the
//! `header_vs_delimiter` ablation bench); [`TokenPacker`] implements the
//! packing/unpacking discipline.

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};
use crate::graph::{EdgeId, Rate, SdfGraph};

/// How a converted edge signals each packed token's length to the
/// receiver (paper §3 implementation discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LengthSignal {
    /// Length travels in a fixed header field — constant-time parse;
    /// the paper's choice for FPGA targets.
    #[default]
    Header,
    /// A sentinel delimiter terminates the payload — the receiver must
    /// scan every word; modeled for the ablation study.
    Delimiter,
}

/// Record of one edge's VTS conversion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VtsEdge {
    /// Edge id in the *converted* graph (ids are preserved 1:1).
    pub edge: EdgeId,
    /// Producer-side raw-token bound per firing (`x ≤ …` in fig. 1).
    pub produce_bound: u32,
    /// Consumer-side raw-token bound per firing (`y ≤ …` in fig. 1).
    pub consume_bound: u32,
    /// Bytes of one raw (unpacked) token.
    pub raw_token_bytes: u32,
    /// Max bytes in one packed token: `max(bounds) · raw_token_bytes`.
    pub b_max: u64,
}

/// Result of VTS conversion: a pure-SDF graph plus per-edge packing
/// metadata.
///
/// # Examples
///
/// Reproducing the paper's figure 1 (production rate ≤ 10, consumption
/// rate ≤ 8, both become rate 1):
///
/// ```
/// use spi_dataflow::{SdfGraph, VtsConversion};
///
/// let mut g = SdfGraph::new();
/// let a = g.add_actor("A", 10);
/// let b = g.add_actor("B", 10);
/// let e = g.add_dynamic_edge(a, b, 10, 8, 0, 4)?;
/// let vts = VtsConversion::convert(&g)?;
/// assert!(vts.graph().is_pure_sdf());
/// let info = vts.edge_info(e).expect("converted edge");
/// assert_eq!(info.b_max, 10 * 4);
/// # Ok::<(), spi_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VtsConversion {
    graph: SdfGraph,
    converted: Vec<VtsEdge>,
}

impl VtsConversion {
    /// Converts every dynamic edge of `graph` into a static rate-1
    /// packed-token edge.
    ///
    /// Static edges pass through untouched; edge and actor ids are
    /// preserved, so analyses on the converted graph can be mapped back.
    ///
    /// # Errors
    ///
    /// [`DataflowError::MissingRateBound`] if a dynamic port declares a
    /// zero bound (cannot size packed tokens). Construction in
    /// [`SdfGraph`] already rejects zero bounds, so this only fires for
    /// graphs built through other means.
    pub fn convert(graph: &SdfGraph) -> Result<Self> {
        let mut out = graph.clone();
        let mut converted = Vec::new();
        for (id, e) in graph.edges() {
            if !e.is_dynamic() {
                continue;
            }
            let pb = e.produce.bound();
            let cb = e.consume.bound();
            if pb == 0 || cb == 0 {
                return Err(DataflowError::MissingRateBound { edge: id });
            }
            let b_max = u64::from(pb.max(cb)) * u64::from(e.token_bytes);
            converted.push(VtsEdge {
                edge: id,
                produce_bound: pb,
                consume_bound: cb,
                raw_token_bytes: e.token_bytes,
                b_max,
            });
            // Rewrite: rate 1 on both sides; the packed token *is* the
            // firing's worth of raw tokens.
            let edge_mut = out.edge_mut_slot(id);
            edge_mut.produce = Rate::Static(1);
            edge_mut.consume = Rate::Static(1);
        }
        Ok(VtsConversion {
            graph: out,
            converted,
        })
    }

    /// The converted, pure-SDF graph.
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// Conversion metadata for `edge`, if it was dynamic.
    pub fn edge_info(&self, edge: EdgeId) -> Option<&VtsEdge> {
        self.converted.iter().find(|v| v.edge == edge)
    }

    /// All converted edges.
    pub fn converted_edges(&self) -> &[VtsEdge] {
        &self.converted
    }

    /// Paper eq. (1): total packed-token byte capacity of `edge`,
    /// `c(e) = c_sdf(e) · b_max(e)`.
    ///
    /// `c_sdf` is measured on the converted (pure SDF) graph via class-S
    /// simulation, exactly as the paper prescribes ("c_sdf(e) is computed
    /// on the graph after VTS conversion").
    ///
    /// For static (unconverted) edges the packed-token size is the raw
    /// token size times the consumption batch, so the formula degrades
    /// gracefully.
    ///
    /// # Errors
    ///
    /// Anything [`SdfGraph::sdf_buffer_bounds`] can return (the converted
    /// graph could still be inconsistent or deadlocked through its static
    /// part).
    pub fn packed_capacity_bytes(&self, edge: EdgeId) -> Result<u64> {
        let bounds = self.graph.sdf_buffer_bounds()?;
        let c_sdf = bounds.bound(edge);
        Ok(c_sdf * self.bytes_per_packed_token(edge)?)
    }

    /// Max bytes of one packed token on `edge` (`b_max(e)` for converted
    /// edges, `token_bytes` for static ones).
    ///
    /// # Errors
    ///
    /// [`DataflowError::UnknownEdge`] if the edge does not exist.
    pub fn bytes_per_packed_token(&self, edge: EdgeId) -> Result<u64> {
        if let Some(v) = self.edge_info(edge) {
            return Ok(v.b_max);
        }
        let e = self.graph.try_edge(edge)?;
        Ok(u64::from(e.token_bytes))
    }
}

/// Runtime packing/unpacking of raw tokens into variable-size packed
/// tokens, with both length-signalling disciplines.
///
/// The packer is deliberately simple: a packed token is a length-prefixed
/// (or delimiter-terminated) run of raw-token bytes. SPI's send actors
/// call [`TokenPacker::pack`]; receive actors call [`TokenPacker::unpack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenPacker {
    raw_token_bytes: u32,
    max_raw_tokens: u32,
    signal: LengthSignal,
}

/// Sentinel byte used by the delimiter discipline. Raw payloads are
/// escaped so the sentinel never appears in data.
const DELIMITER: u8 = 0x7E;
/// Escape byte for the delimiter discipline.
const ESCAPE: u8 = 0x7D;

impl TokenPacker {
    /// Creates a packer for tokens of `raw_token_bytes` bytes with at most
    /// `max_raw_tokens` tokens per packed token.
    pub fn new(raw_token_bytes: u32, max_raw_tokens: u32, signal: LengthSignal) -> Self {
        TokenPacker {
            raw_token_bytes,
            max_raw_tokens,
            signal,
        }
    }

    /// Builds a packer matching a converted edge's producer side.
    pub fn for_edge(info: &VtsEdge, signal: LengthSignal) -> Self {
        TokenPacker::new(
            info.raw_token_bytes,
            info.produce_bound.max(info.consume_bound),
            signal,
        )
    }

    /// Upper bound in bytes of any packed token this packer can emit,
    /// including framing overhead.
    pub fn max_packed_bytes(&self) -> usize {
        let payload = self.raw_token_bytes as usize * self.max_raw_tokens as usize;
        match self.signal {
            LengthSignal::Header => 4 + payload,
            // Worst case every byte is escaped, plus the final delimiter.
            LengthSignal::Delimiter => 2 * payload + 1,
        }
    }

    /// Packs `raw` (a whole number of raw tokens) into one framed packed
    /// token.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::NotTokenAligned`] when `raw.len()` is not a
    /// multiple of the raw token size and [`PackError::TooManyTokens`]
    /// when the token count exceeds the declared bound — the invariant VTS
    /// analysis depends on.
    pub fn pack(&self, raw: &[u8]) -> std::result::Result<Vec<u8>, PackError> {
        if self.raw_token_bytes == 0 || !raw.len().is_multiple_of(self.raw_token_bytes as usize) {
            return Err(PackError::NotTokenAligned {
                len: raw.len(),
                token_bytes: self.raw_token_bytes,
            });
        }
        let n_tokens = (raw.len() / self.raw_token_bytes as usize) as u32;
        if n_tokens > self.max_raw_tokens {
            return Err(PackError::TooManyTokens {
                got: n_tokens,
                bound: self.max_raw_tokens,
            });
        }
        let mut out = Vec::with_capacity(raw.len() + 5);
        match self.signal {
            LengthSignal::Header => {
                out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
                out.extend_from_slice(raw);
            }
            LengthSignal::Delimiter => {
                for &b in raw {
                    if b == DELIMITER || b == ESCAPE {
                        out.push(ESCAPE);
                        out.push(b ^ 0x20);
                    } else {
                        out.push(b);
                    }
                }
                out.push(DELIMITER);
            }
        }
        Ok(out)
    }

    /// Unpacks one framed packed token back into raw bytes, returning the
    /// payload and the number of framed bytes consumed.
    ///
    /// # Errors
    ///
    /// [`PackError::Truncated`] if the frame is incomplete and
    /// [`PackError::TooManyTokens`] if the decoded payload violates the
    /// bound (corrupted frame or mismatched packer).
    pub fn unpack(&self, framed: &[u8]) -> std::result::Result<(Vec<u8>, usize), PackError> {
        match self.signal {
            LengthSignal::Header => {
                if framed.len() < 4 {
                    return Err(PackError::Truncated);
                }
                let len = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
                if framed.len() < 4 + len {
                    return Err(PackError::Truncated);
                }
                let payload = framed[4..4 + len].to_vec();
                self.check_payload(&payload)?;
                Ok((payload, 4 + len))
            }
            LengthSignal::Delimiter => {
                let mut payload = Vec::new();
                let mut i = 0;
                loop {
                    let Some(&b) = framed.get(i) else {
                        return Err(PackError::Truncated);
                    };
                    i += 1;
                    match b {
                        DELIMITER => break,
                        ESCAPE => {
                            let Some(&esc) = framed.get(i) else {
                                return Err(PackError::Truncated);
                            };
                            i += 1;
                            payload.push(esc ^ 0x20);
                        }
                        _ => payload.push(b),
                    }
                }
                self.check_payload(&payload)?;
                Ok((payload, i))
            }
        }
    }

    fn check_payload(&self, payload: &[u8]) -> std::result::Result<(), PackError> {
        if self.raw_token_bytes == 0 || !payload.len().is_multiple_of(self.raw_token_bytes as usize)
        {
            return Err(PackError::NotTokenAligned {
                len: payload.len(),
                token_bytes: self.raw_token_bytes,
            });
        }
        let n = (payload.len() / self.raw_token_bytes as usize) as u32;
        if n > self.max_raw_tokens {
            return Err(PackError::TooManyTokens {
                got: n,
                bound: self.max_raw_tokens,
            });
        }
        Ok(())
    }
}

/// Errors from [`TokenPacker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PackError {
    /// Payload length is not a whole number of raw tokens.
    NotTokenAligned {
        /// Offending payload length.
        len: usize,
        /// Raw token size the packer expects.
        token_bytes: u32,
    },
    /// More raw tokens than the declared VTS bound.
    TooManyTokens {
        /// Tokens present.
        got: u32,
        /// Declared bound.
        bound: u32,
    },
    /// Frame ended before the payload was complete.
    Truncated,
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::NotTokenAligned { len, token_bytes } => {
                write!(
                    f,
                    "payload of {len} bytes is not a multiple of {token_bytes}-byte tokens"
                )
            }
            PackError::TooManyTokens { got, bound } => {
                write!(
                    f,
                    "packed token holds {got} raw tokens, exceeding the VTS bound {bound}"
                )
            }
            PackError::Truncated => write!(f, "framed packed token is truncated"),
        }
    }
}

impl std::error::Error for PackError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_graph() -> (SdfGraph, EdgeId) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 10);
        let b = g.add_actor("B", 10);
        let e = g.add_dynamic_edge(a, b, 10, 8, 0, 4).unwrap();
        (g, e)
    }

    #[test]
    fn figure1_conversion_matches_paper() {
        let (g, e) = figure1_graph();
        let vts = VtsConversion::convert(&g).unwrap();
        assert!(vts.graph().is_pure_sdf());
        let edge = vts.graph().edge(e);
        assert_eq!(edge.produce.as_static(), Some(1));
        assert_eq!(edge.consume.as_static(), Some(1));
        let info = vts.edge_info(e).unwrap();
        assert_eq!(info.produce_bound, 10);
        assert_eq!(info.consume_bound, 8);
        assert_eq!(info.b_max, 40);
    }

    #[test]
    fn static_edges_untouched() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let e = g.add_edge(a, b, 2, 3, 1, 8).unwrap();
        let vts = VtsConversion::convert(&g).unwrap();
        assert_eq!(vts.graph().edge(e), g.edge(e));
        assert!(vts.edge_info(e).is_none());
        assert_eq!(vts.converted_edges().len(), 0);
    }

    #[test]
    fn converted_graph_gets_repetition_vector() {
        let (g, _) = figure1_graph();
        assert!(
            g.repetition_vector().is_err(),
            "dynamic graph must be rejected"
        );
        let vts = VtsConversion::convert(&g).unwrap();
        let q = vts.graph().repetition_vector().unwrap();
        assert_eq!(q.total_firings(), 2);
    }

    #[test]
    fn eq1_capacity_bytes() {
        let (g, e) = figure1_graph();
        let vts = VtsConversion::convert(&g).unwrap();
        // Converted edge is 1->1 with no delay: c_sdf = 1 packed token.
        assert_eq!(vts.packed_capacity_bytes(e).unwrap(), 40);
    }

    #[test]
    fn eq1_static_edge_uses_raw_token_size() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let e = g.add_edge(a, b, 2, 3, 0, 8).unwrap();
        let vts = VtsConversion::convert(&g).unwrap();
        let cap = vts.packed_capacity_bytes(e).unwrap();
        let c_sdf = g.sdf_buffer_bounds().unwrap().bound(e);
        assert_eq!(cap, c_sdf * 8);
    }

    #[test]
    fn pack_unpack_header_roundtrip() {
        let p = TokenPacker::new(4, 10, LengthSignal::Header);
        let raw: Vec<u8> = (0..28).collect(); // 7 tokens of 4 bytes
        let framed = p.pack(&raw).unwrap();
        assert_eq!(framed.len(), 4 + 28);
        let (out, used) = p.unpack(&framed).unwrap();
        assert_eq!(out, raw);
        assert_eq!(used, framed.len());
    }

    #[test]
    fn pack_unpack_delimiter_roundtrip_with_sentinels_in_payload() {
        let p = TokenPacker::new(1, 64, LengthSignal::Delimiter);
        let raw = vec![0x7E, 0x7D, 0x00, 0x7E, 0x41];
        let framed = p.pack(&raw).unwrap();
        let (out, used) = p.unpack(&framed).unwrap();
        assert_eq!(out, raw);
        assert_eq!(used, framed.len());
        assert!(framed.len() > raw.len() + 1, "escaping grew the frame");
    }

    #[test]
    fn pack_enforces_vts_bound() {
        let p = TokenPacker::new(4, 2, LengthSignal::Header);
        let raw = vec![0u8; 12]; // 3 tokens > bound 2
        assert_eq!(
            p.pack(&raw),
            Err(PackError::TooManyTokens { got: 3, bound: 2 })
        );
    }

    #[test]
    fn pack_rejects_misaligned_payload() {
        let p = TokenPacker::new(4, 8, LengthSignal::Header);
        assert!(matches!(
            p.pack(&[0u8; 7]),
            Err(PackError::NotTokenAligned { .. })
        ));
    }

    #[test]
    fn unpack_detects_truncation() {
        let p = TokenPacker::new(4, 8, LengthSignal::Header);
        let framed = p.pack(&[0u8; 8]).unwrap();
        assert_eq!(p.unpack(&framed[..5]), Err(PackError::Truncated));
        assert_eq!(p.unpack(&[]), Err(PackError::Truncated));
        let pd = TokenPacker::new(1, 8, LengthSignal::Delimiter);
        assert_eq!(pd.unpack(&[0x41, 0x42]), Err(PackError::Truncated));
    }

    #[test]
    fn max_packed_bytes_is_a_true_bound() {
        for signal in [LengthSignal::Header, LengthSignal::Delimiter] {
            let p = TokenPacker::new(2, 5, signal);
            // Worst case payload: all delimiter bytes.
            let raw = vec![DELIMITER; 10];
            let framed = p.pack(&raw).unwrap();
            assert!(framed.len() <= p.max_packed_bytes(), "{signal:?}");
        }
    }

    #[test]
    fn empty_packed_token_roundtrips() {
        // Zero raw tokens this firing is legal under VTS (rate varies
        // from 0... the bound is an upper bound).
        let p = TokenPacker::new(4, 8, LengthSignal::Header);
        let framed = p.pack(&[]).unwrap();
        let (out, used) = p.unpack(&framed).unwrap();
        assert!(out.is_empty());
        assert_eq!(used, 4);
    }

    #[test]
    fn back_to_back_frames_parse_sequentially() {
        let p = TokenPacker::new(2, 8, LengthSignal::Header);
        let mut stream = Vec::new();
        let msgs: [&[u8]; 3] = [&[1, 2], &[3, 4, 5, 6], &[]];
        for m in msgs {
            stream.extend(p.pack(m).unwrap());
        }
        let mut off = 0;
        for m in msgs {
            let (out, used) = p.unpack(&stream[off..]).unwrap();
            assert_eq!(out, m);
            off += used;
        }
        assert_eq!(off, stream.len());
    }
}

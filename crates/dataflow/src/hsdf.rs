//! Homogeneous SDF (single-rate) expansion and the acyclic precedence
//! graph (APG) of one graph iteration.
//!
//! Multiprocessor scheduling operates on *firings*, not actors: actor `v`
//! contributes `q[v]` task vertices per iteration. This module expands a
//! consistent SDF graph into its precedence structure using the classic
//! token-counting rule: consumer firing `j` of edge `e` (1-based) consumes
//! raw tokens `(j−1)·c+1 … j·c`; token `t` (counted past the `d` initial
//! delays) is produced by producer firing `⌈(t−d)/p⌉`. Dependencies whose
//! producer firing index falls beyond `q[src]` belong to a later iteration
//! and are recorded as *inter-iteration* edges with delay 1.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::graph::{ActorId, EdgeId, SdfGraph};
use crate::rates::RepetitionVector;

/// One firing of one actor within an iteration: `(actor, k)` with
/// `0 ≤ k < q[actor]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Firing {
    /// The actor being fired.
    pub actor: ActorId,
    /// Zero-based firing index within the iteration.
    pub k: u64,
}

impl std::fmt::Display for Firing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.actor, self.k)
    }
}

/// A precedence edge between two firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precedence {
    /// Producing firing.
    pub from: Firing,
    /// Consuming firing.
    pub to: Firing,
    /// The SDF edge inducing this dependence.
    pub via: EdgeId,
    /// 0 for intra-iteration dependences, ≥1 when the consumer reads
    /// tokens produced `delay` iterations earlier.
    pub delay: u64,
}

/// Ceiling division for signed numerators with positive denominators.
fn signed_div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    (a + b - 1).div_euclid(b)
}

/// The expanded single-rate precedence graph of one SDF iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecedenceGraph {
    firings: Vec<Firing>,
    edges: Vec<Precedence>,
    q: RepetitionVector,
}

impl PrecedenceGraph {
    /// Expands `graph` into its precedence graph.
    ///
    /// # Errors
    ///
    /// Anything [`SdfGraph::repetition_vector`] can return; the graph must
    /// be pure SDF (run VTS conversion first) and consistent.
    pub fn expand(graph: &SdfGraph) -> Result<Self> {
        let q = graph.repetition_vector()?;
        let mut firings = Vec::new();
        for (a, _) in graph.actors() {
            for k in 0..q[a] {
                firings.push(Firing { actor: a, k });
            }
        }

        let mut edges = Vec::new();
        for (eid, e) in graph.edges() {
            let p = i128::from(e.produce.bound());
            let c = i128::from(e.consume.bound());
            let d = i128::from(e.delay);
            let q_src = i128::from(q[e.src]);
            for j in 1..=q[e.dst] {
                // Tokens consumed by consumer firing j (1-based token idx,
                // counted from the start of the current iteration).
                let first = i128::from(j - 1) * c + 1;
                let last = i128::from(j) * c;
                // Global producer firing index supplying token t is
                // ⌈(t−d)/p⌉; indices ≤ 0 belong to earlier iterations (in
                // steady state the initial tokens are the previous
                // iterations' products).
                let prod_first = signed_div_ceil(first - d, p);
                let prod_last = signed_div_ceil(last - d, p);
                for i_g in prod_first..=prod_last {
                    // Fold the global index into (iteration delay, k):
                    // k = (i_g−1) mod q_src, delay = −⌊(i_g−1)/q_src⌋.
                    let k_src = (i_g - 1).rem_euclid(q_src);
                    let delay = -((i_g - 1).div_euclid(q_src));
                    debug_assert!(delay >= 0, "future-iteration producer is impossible");
                    edges.push(Precedence {
                        from: Firing {
                            actor: e.src,
                            k: k_src as u64,
                        },
                        to: Firing {
                            actor: e.dst,
                            k: j - 1,
                        },
                        via: eid,
                        delay: delay as u64,
                    });
                }
            }
        }
        edges.sort_by_key(|p| (p.from, p.to, p.via.0, p.delay));
        edges.dedup();
        Ok(PrecedenceGraph { firings, edges, q })
    }

    /// All firings, grouped by actor in id order.
    pub fn firings(&self) -> &[Firing] {
        &self.firings
    }

    /// All precedence edges (including inter-iteration ones).
    pub fn edges(&self) -> &[Precedence] {
        &self.edges
    }

    /// Intra-iteration edges only: the acyclic precedence graph used for
    /// list scheduling.
    pub fn apg_edges(&self) -> impl Iterator<Item = &Precedence> {
        self.edges.iter().filter(|p| p.delay == 0)
    }

    /// The repetition vector of the source graph.
    pub fn repetitions(&self) -> &RepetitionVector {
        &self.q
    }

    /// Topological order of the intra-iteration APG.
    ///
    /// Returns `None` if the delay-0 subgraph has a cycle, which cannot
    /// happen for graphs that admit a class-S schedule (such a cycle is a
    /// deadlock); callers that have already scheduled may unwrap.
    pub fn topological_order(&self) -> Option<Vec<Firing>> {
        use std::collections::HashMap;
        let idx: HashMap<Firing, usize> = self
            .firings
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        let n = self.firings.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for p in self.apg_edges() {
            let (u, v) = (idx[&p.from], idx[&p.to]);
            out[u].push(v);
            indeg[v] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        // Deterministic order: smallest index first.
        stack.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(self.firings[u]);
            for &v in &out[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                    stack.sort_unstable_by(|a, b| b.cmp(a));
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_chain_expands_one_to_one() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        assert_eq!(pg.firings().len(), 2);
        assert_eq!(pg.edges().len(), 1);
        let e = pg.edges()[0];
        assert_eq!(e.from, Firing { actor: a, k: 0 });
        assert_eq!(e.to, Firing { actor: b, k: 0 });
        assert_eq!(e.delay, 0);
    }

    #[test]
    fn multirate_expansion_counts_tokens() {
        // A (p=2) -> B (c=3): q = [3, 2].
        // B#0 consumes tokens 1..3 from A firings 1,2 (k=0,1).
        // B#1 consumes tokens 4..6 from A firings 2,3 (k=1,2).
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 2, 3, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        assert_eq!(pg.firings().len(), 5);
        let deps: Vec<(u64, u64)> = pg.edges().iter().map(|p| (p.from.k, p.to.k)).collect();
        assert_eq!(deps, vec![(0, 0), (1, 0), (1, 1), (2, 1)]);
        assert!(pg.edges().iter().all(|p| p.delay == 0));
    }

    #[test]
    fn delays_absorb_dependencies() {
        // With 3 initial tokens and c=3, B#0 reads only delays → no edge.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 3, 3, 3, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        // q = [1,1]; B#0's tokens 1..3 are all initial tokens, so in steady
        // state they come from the previous iteration's A: one delay-1
        // edge, nothing intra-iteration.
        assert_eq!(pg.apg_edges().count(), 0);
        let inter: Vec<_> = pg.edges().iter().filter(|p| p.delay > 0).collect();
        assert_eq!(inter.len(), 1);
        assert_eq!(inter[0].delay, 1);
    }

    #[test]
    fn feedback_cycle_becomes_inter_iteration_edge() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 1, 0, 4).unwrap();
        g.add_edge(b, a, 1, 1, 1, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let intra: Vec<_> = pg.apg_edges().collect();
        assert_eq!(intra.len(), 1, "A→B stays intra-iteration");
        let inter: Vec<_> = pg.edges().iter().filter(|p| p.delay > 0).collect();
        assert_eq!(inter.len(), 1, "B→A crosses the iteration boundary");
        assert_eq!(inter[0].delay, 1);
    }

    #[test]
    fn topological_order_respects_precedence() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let c = g.add_actor("C", 1);
        g.add_edge(a, b, 2, 1, 0, 4).unwrap();
        g.add_edge(b, c, 1, 2, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let order = pg.topological_order().unwrap();
        assert_eq!(order.len(), pg.firings().len());
        let pos = |f: Firing| order.iter().position(|&x| x == f).unwrap();
        for p in pg.apg_edges() {
            assert!(pos(p.from) < pos(p.to), "{} before {}", p.from, p.to);
        }
    }

    #[test]
    fn expansion_size_matches_repetition_vector() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        let c = g.add_actor("C", 1);
        g.add_edge(a, b, 3, 2, 0, 4).unwrap();
        g.add_edge(b, c, 4, 6, 0, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let q = pg.repetitions();
        assert_eq!(pg.firings().len() as u64, q.total_firings());
    }

    #[test]
    fn partial_delay_splits_dependencies() {
        // d=1, p=1, c=2, q=[2,1]: B#0 consumes tokens 1,2; token 1 is the
        // delay, token 2 comes from A#0.
        let mut g = SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b = g.add_actor("B", 1);
        g.add_edge(a, b, 1, 2, 1, 4).unwrap();
        let pg = PrecedenceGraph::expand(&g).unwrap();
        let intra: Vec<_> = pg.apg_edges().collect();
        assert_eq!(intra.len(), 1);
        assert_eq!(intra[0].from, Firing { actor: a, k: 0 });
    }
}

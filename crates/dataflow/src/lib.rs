//! # spi-dataflow — SDF + VTS modeling substrate
//!
//! Dataflow modeling layer for the reproduction of *"An Optimized Message
//! Passing Framework for Parallel Implementation of Signal Processing
//! Applications"* (DATE 2008). It provides:
//!
//! * [`SdfGraph`] — coarse-grain dataflow graphs with static (SDF) and
//!   bounded-dynamic port rates;
//! * [`RepetitionVector`] — balance-equation solving and consistency
//!   checking;
//! * class-S scheduling, deadlock detection and per-edge buffer bounds
//!   ([`SdfGraph::class_s_schedule`], [`BufferBounds`]);
//! * [`VtsConversion`] — the paper's §3 *variable token size* transform
//!   that re-models dynamic-rate edges as static rate-1 packed-token
//!   edges (with [`TokenPacker`] handling the run-time framing);
//! * [`PrecedenceGraph`] — single-rate expansion feeding multiprocessor
//!   scheduling in `spi-sched`;
//! * [`CsdfGraph`] — cyclo-static dataflow with reduction to SDF;
//! * [`bdf`] — Boolean-dataflow switch/select and the VTS envelope that
//!   re-models bounded conditional streams (paper §3.1);
//! * [`loops`] — looped single-appearance schedules and the
//!   buffer-optimal chain DP for single-processor synthesis;
//! * [`psdf`] — parameterized dataflow with per-configuration
//!   instantiation and the VTS envelope bridging it to the paper's
//!   dynamic-rate discipline.
//!
//! # Examples
//!
//! Model a dynamic-rate edge, convert it with VTS, and analyze the result
//! with ordinary SDF machinery:
//!
//! ```
//! use spi_dataflow::{SdfGraph, VtsConversion};
//!
//! let mut g = SdfGraph::new();
//! let a = g.add_actor("A", 10);
//! let b = g.add_actor("B", 12);
//! let e = g.add_dynamic_edge(a, b, 10, 8, 0, 4)?; // paper figure 1
//!
//! let vts = VtsConversion::convert(&g)?;
//! let q = vts.graph().repetition_vector()?;       // now solvable
//! assert_eq!(q.total_firings(), 2);
//! assert_eq!(vts.packed_capacity_bytes(e)?, 40);  // paper eq. (1)
//! # Ok::<(), spi_dataflow::DataflowError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bdf;
pub mod csdf;
pub mod dif;
mod error;
mod graph;
mod hsdf;
pub mod loops;
pub mod psdf;
mod rates;
mod schedule;
mod vts;

pub use csdf::{CsdfGraph, CsdfReduction, PhaseRates};
pub use error::{DataflowError, Result};
pub use graph::{Actor, ActorId, Edge, EdgeId, Rate, SdfGraph};
pub use hsdf::{Firing, Precedence, PrecedenceGraph};
pub use loops::LoopedSchedule;
pub use rates::{gcd, lcm, RepetitionVector};
pub use schedule::{BufferBounds, FirePolicy, FlatSchedule, ScheduleReport, ValidationReport};
pub use vts::{LengthSignal, PackError, TokenPacker, VtsConversion, VtsEdge};

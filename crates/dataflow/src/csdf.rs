//! Cyclo-static dataflow (CSDF) on top of the SDF core.
//!
//! CSDF (Bilsen et al.) generalizes SDF by letting a port's rate cycle
//! through a fixed *phase vector*: firing `k` produces
//! `rates[k mod rates.len()]` tokens. It is one of the "extensions to
//! the SDF model … proposed to broaden the range of applications"
//! surveyed in the paper's §3.1, and many SPI-style pipelines (e.g.
//! interleavers, decimators with phase structure) are naturally
//! cyclo-static.
//!
//! The classic reduction applies: replacing each phase vector by its sum
//! and multiplying firing counts by the phase count yields an SDF graph
//! whose analyses (consistency, scheduling, buffer bounds — and hence
//! the whole SPI flow) transfer. [`CsdfGraph::to_sdf`] implements it,
//! and [`CsdfGraph::phase_schedule`] produces a phase-accurate
//! admissible schedule used to validate the reduction.

use serde::{Deserialize, Serialize};

use crate::error::{DataflowError, Result};
use crate::graph::{ActorId, EdgeId, SdfGraph};

/// A cyclo-static port rate: one entry per phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseRates(Vec<u32>);

impl PhaseRates {
    /// Creates a phase vector.
    ///
    /// # Errors
    ///
    /// Rejects empty vectors and vectors summing to zero (the port would
    /// never move data), reported as [`DataflowError::Overflow`]-free
    /// [`DataflowError::ZeroRate`] at edge-insertion time; here a plain
    /// `None` signals invalidity.
    pub fn new(rates: Vec<u32>) -> Option<Self> {
        if rates.is_empty() || rates.iter().all(|&r| r == 0) {
            return None;
        }
        Some(PhaseRates(rates))
    }

    /// A constant (SDF) rate as a single-phase vector.
    pub fn constant(rate: u32) -> Option<Self> {
        PhaseRates::new(vec![rate])
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.0.len()
    }

    /// Tokens moved by firing `k` (phase `k mod phases`).
    pub fn rate_at(&self, k: u64) -> u32 {
        self.0[(k % self.0.len() as u64) as usize]
    }

    /// Sum over one full phase cycle.
    pub fn cycle_sum(&self) -> u64 {
        self.0.iter().map(|&r| u64::from(r)).sum()
    }

    /// The raw phase vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

/// A CSDF edge: phase vectors on both ports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsdfEdge {
    /// Producing actor.
    pub src: ActorId,
    /// Consuming actor.
    pub dst: ActorId,
    /// Per-phase production rates.
    pub produce: PhaseRates,
    /// Per-phase consumption rates.
    pub consume: PhaseRates,
    /// Initial tokens.
    pub delay: u64,
    /// Raw token size in bytes.
    pub token_bytes: u32,
}

/// A cyclo-static dataflow graph.
///
/// # Examples
///
/// A 1-to-2 distributor that alternates between its two outputs:
///
/// ```
/// use spi_dataflow::{CsdfGraph, PhaseRates};
///
/// let mut g = CsdfGraph::new();
/// let src = g.add_actor("src", 5);
/// let top = g.add_actor("top", 5);
/// let bot = g.add_actor("bot", 5);
/// // Phases [1,0]: token to `top` on even firings only.
/// g.add_edge(src, top,
///     PhaseRates::new(vec![1, 0]).expect("valid"),
///     PhaseRates::constant(1).expect("valid"), 0, 4)?;
/// // Phases [0,1]: token to `bot` on odd firings only.
/// g.add_edge(src, bot,
///     PhaseRates::new(vec![0, 1]).expect("valid"),
///     PhaseRates::constant(1).expect("valid"), 0, 4)?;
///
/// let sdf = g.to_sdf()?;
/// let q = sdf.graph().repetition_vector()?;
/// // One SDF firing of `src` = one full 2-phase cycle.
/// assert_eq!(q[src], 1);
/// # Ok::<(), spi_dataflow::DataflowError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsdfGraph {
    names: Vec<String>,
    exec_cycles: Vec<u64>,
    edges: Vec<CsdfEdge>,
}

impl CsdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CsdfGraph::default()
    }

    /// Adds an actor; `exec_cycles` is the per-*phase* firing estimate.
    pub fn add_actor(&mut self, name: impl Into<String>, exec_cycles: u64) -> ActorId {
        self.names.push(name.into());
        self.exec_cycles.push(exec_cycles);
        ActorId(self.names.len() - 1)
    }

    /// Adds a cyclo-static edge.
    ///
    /// # Errors
    ///
    /// [`DataflowError::UnknownActor`] for bad endpoints.
    pub fn add_edge(
        &mut self,
        src: ActorId,
        dst: ActorId,
        produce: PhaseRates,
        consume: PhaseRates,
        delay: u64,
        token_bytes: u32,
    ) -> Result<EdgeId> {
        if src.0 >= self.names.len() {
            return Err(DataflowError::UnknownActor(src));
        }
        if dst.0 >= self.names.len() {
            return Err(DataflowError::UnknownActor(dst));
        }
        self.edges.push(CsdfEdge {
            src,
            dst,
            produce,
            consume,
            delay,
            token_bytes,
        });
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.names.len()
    }

    /// Phase count of `actor`: the lcm of the phase lengths of all its
    /// ports (1 if it has none).
    pub fn actor_phases(&self, actor: ActorId) -> u64 {
        let mut phases = 1u64;
        for e in &self.edges {
            if e.src == actor {
                phases = crate::rates::lcm(phases, e.produce.phases() as u64);
            }
            if e.dst == actor {
                phases = crate::rates::lcm(phases, e.consume.phases() as u64);
            }
        }
        phases.max(1)
    }

    /// Reduces to SDF: one SDF firing of an actor = one full phase cycle.
    ///
    /// Rates become per-cycle token sums, scaled so that all ports of an
    /// actor cover the same number of phases.
    ///
    /// # Errors
    ///
    /// Anything [`SdfGraph::add_edge`] can return (zero cycle sums map to
    /// zero SDF rates and are rejected there, keeping the invariant that
    /// consistent graphs move data on every edge).
    pub fn to_sdf(&self) -> Result<CsdfReduction> {
        let mut sdf = SdfGraph::new();
        let mut cycle_of = Vec::with_capacity(self.names.len());
        for (i, name) in self.names.iter().enumerate() {
            let phases = self.actor_phases(ActorId(i));
            cycle_of.push(phases);
            // One SDF firing = `phases` CSDF firings.
            sdf.add_actor(name.clone(), self.exec_cycles[i] * phases);
        }
        for e in &self.edges {
            let src_scale = cycle_of[e.src.0] / e.produce.phases() as u64;
            let dst_scale = cycle_of[e.dst.0] / e.consume.phases() as u64;
            let p = e.produce.cycle_sum() * src_scale;
            let c = e.consume.cycle_sum() * dst_scale;
            let p32 = u32::try_from(p).map_err(|_| DataflowError::Overflow)?;
            let c32 = u32::try_from(c).map_err(|_| DataflowError::Overflow)?;
            sdf.add_edge(e.src, e.dst, p32, c32, e.delay, e.token_bytes)?;
        }
        Ok(CsdfReduction {
            graph: sdf,
            phases: cycle_of,
        })
    }

    /// Phase-accurate admissible schedule by simulation: fires any actor
    /// whose next phase's consumptions are satisfied, until every actor
    /// completes `repetitions × phases` firings.
    ///
    /// # Errors
    ///
    /// * Everything [`CsdfGraph::to_sdf`] can return (the reduction
    ///   provides the per-iteration firing quota);
    /// * [`DataflowError::Deadlock`] if the phase-level simulation stalls
    ///   (a graph can be SDF-consistent yet phase-deadlocked).
    pub fn phase_schedule(&self) -> Result<Vec<(ActorId, u64)>> {
        let reduction = self.to_sdf()?;
        let q = reduction.graph.repetition_vector()?;
        let n = self.names.len();
        let quota: Vec<u64> = (0..n)
            .map(|i| q[ActorId(i)] * reduction.phases[i])
            .collect();

        let mut tokens: Vec<u64> = self.edges.iter().map(|e| e.delay).collect();
        let mut fired = vec![0u64; n];
        let mut schedule = Vec::new();
        loop {
            let candidate = (0..n).filter(|&a| fired[a] < quota[a]).find(|&a| {
                self.edges.iter().enumerate().all(|(ei, e)| {
                    e.dst != ActorId(a) || tokens[ei] >= u64::from(e.consume.rate_at(fired[a]))
                })
            });
            let Some(a) = candidate else { break };
            for (ei, e) in self.edges.iter().enumerate() {
                if e.dst == ActorId(a) {
                    tokens[ei] -= u64::from(e.consume.rate_at(fired[a]));
                }
            }
            for (ei, e) in self.edges.iter().enumerate() {
                if e.src == ActorId(a) {
                    tokens[ei] += u64::from(e.produce.rate_at(fired[a]));
                }
            }
            schedule.push((ActorId(a), fired[a]));
            fired[a] += 1;
        }
        let starved: Vec<ActorId> = (0..n)
            .filter(|&a| fired[a] < quota[a])
            .map(ActorId)
            .collect();
        if !starved.is_empty() {
            return Err(DataflowError::Deadlock { starved });
        }
        // One full iteration must return every edge to its delay count.
        debug_assert_eq!(
            tokens,
            self.edges.iter().map(|e| e.delay).collect::<Vec<_>>()
        );
        Ok(schedule)
    }
}

/// Outcome of the CSDF→SDF reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsdfReduction {
    graph: SdfGraph,
    phases: Vec<u64>,
}

impl CsdfReduction {
    /// The reduced SDF graph (feed it to the regular SPI flow).
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// CSDF firings folded into one SDF firing of `actor`.
    pub fn phases_of(&self, actor: ActorId) -> u64 {
        self.phases[actor.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distributor() -> (CsdfGraph, ActorId, ActorId, ActorId) {
        let mut g = CsdfGraph::new();
        let src = g.add_actor("src", 5);
        let top = g.add_actor("top", 7);
        let bot = g.add_actor("bot", 7);
        g.add_edge(
            src,
            top,
            PhaseRates::new(vec![1, 0]).unwrap(),
            PhaseRates::constant(1).unwrap(),
            0,
            4,
        )
        .unwrap();
        g.add_edge(
            src,
            bot,
            PhaseRates::new(vec![0, 1]).unwrap(),
            PhaseRates::constant(1).unwrap(),
            0,
            4,
        )
        .unwrap();
        (g, src, top, bot)
    }

    #[test]
    fn phase_rates_validation() {
        assert!(PhaseRates::new(vec![]).is_none());
        assert!(PhaseRates::new(vec![0, 0]).is_none());
        let r = PhaseRates::new(vec![2, 0, 1]).unwrap();
        assert_eq!(r.phases(), 3);
        assert_eq!(r.cycle_sum(), 3);
        assert_eq!(r.rate_at(0), 2);
        assert_eq!(r.rate_at(4), 0);
        assert_eq!(r.rate_at(5), 1);
    }

    #[test]
    fn distributor_reduces_to_consistent_sdf() {
        let (g, src, top, bot) = distributor();
        assert_eq!(g.actor_phases(src), 2);
        assert_eq!(g.actor_phases(top), 1);
        let sdf = g.to_sdf().unwrap();
        let q = sdf.graph().repetition_vector().unwrap();
        assert_eq!((q[src], q[top], q[bot]), (1, 1, 1));
        assert_eq!(sdf.phases_of(src), 2);
        // The reduced actor's cost covers the full cycle.
        assert_eq!(sdf.graph().actor(src).exec_cycles, 10);
    }

    #[test]
    fn phase_schedule_interleaves_correctly() {
        let (g, src, top, bot) = distributor();
        let schedule = g.phase_schedule().unwrap();
        // src fires twice (two phases), sinks once each.
        let count = |a: ActorId| schedule.iter().filter(|&&(x, _)| x == a).count();
        assert_eq!(count(src), 2);
        assert_eq!(count(top), 1);
        assert_eq!(count(bot), 1);
        // top can only fire after src's phase 0, bot after phase 1.
        let pos = |a: ActorId, k: u64| {
            schedule
                .iter()
                .position(|&(x, kk)| x == a && kk == k)
                .unwrap()
        };
        assert!(pos(top, 0) > pos(src, 0));
        assert!(pos(bot, 0) > pos(src, 1));
    }

    #[test]
    fn mismatched_phase_lengths_scale_via_lcm() {
        // Port with 2 phases and port with 3 phases on one actor → 6.
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        let c = g.add_actor("c", 1);
        g.add_edge(
            a,
            b,
            PhaseRates::new(vec![1, 2]).unwrap(),
            PhaseRates::constant(1).unwrap(),
            0,
            4,
        )
        .unwrap();
        g.add_edge(
            a,
            c,
            PhaseRates::new(vec![1, 0, 2]).unwrap(),
            PhaseRates::constant(1).unwrap(),
            0,
            4,
        )
        .unwrap();
        assert_eq!(g.actor_phases(a), 6);
        let sdf = g.to_sdf().unwrap();
        // Per 6 phases: edge to b moves 3·(1+2)=9; edge to c moves 2·3=6.
        let q = sdf.graph().repetition_vector().unwrap();
        assert_eq!(q[a] * 9, q[b]);
        assert_eq!(q[a] * 6, q[c]);
    }

    #[test]
    fn phase_deadlock_detected() {
        // a and b each need the other's token in phase 0 with no delays.
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(
            a,
            b,
            PhaseRates::constant(1).unwrap(),
            PhaseRates::constant(1).unwrap(),
            0,
            4,
        )
        .unwrap();
        g.add_edge(
            b,
            a,
            PhaseRates::constant(1).unwrap(),
            PhaseRates::constant(1).unwrap(),
            0,
            4,
        )
        .unwrap();
        assert!(matches!(
            g.phase_schedule(),
            Err(DataflowError::Deadlock { .. })
        ));
    }

    #[test]
    fn csdf_with_delay_breaks_deadlock() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(
            a,
            b,
            PhaseRates::new(vec![2, 1]).unwrap(),
            PhaseRates::new(vec![1, 2]).unwrap(),
            0,
            4,
        )
        .unwrap();
        g.add_edge(
            b,
            a,
            PhaseRates::new(vec![1, 2]).unwrap(),
            PhaseRates::new(vec![2, 1]).unwrap(),
            3,
            4,
        )
        .unwrap();
        let schedule = g.phase_schedule().unwrap();
        assert_eq!(schedule.len(), 4, "two phases each");
    }

    #[test]
    fn unknown_actor_rejected() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", 1);
        let ghost = ActorId(9);
        assert!(g
            .add_edge(
                a,
                ghost,
                PhaseRates::constant(1).unwrap(),
                PhaseRates::constant(1).unwrap(),
                0,
                4
            )
            .is_err());
    }
}

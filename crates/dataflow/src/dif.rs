//! A DIF-style textual interchange format for dataflow graphs.
//!
//! The paper's research lineage uses the *Dataflow Interchange Format*
//! (DIF) to move graphs between tools; this module provides a compact
//! dialect sufficient for SPI systems so graphs can live in version
//! control, be diffed, and round-trip through external generators:
//!
//! ```text
//! graph lpc {
//!   actor A exec 100;
//!   actor B exec 200;
//!   edge A -> B produce 2 consume 3 delay 1 bytes 4;
//!   edge A -> B produce dyn 10 consume dyn 8 bytes 4;
//! }
//! ```
//!
//! `produce`/`consume` accept either a static count or `dyn <bound>`;
//! `delay` defaults to 0. Comments run from `#` to end of line.

use std::collections::HashMap;

use crate::error::{DataflowError, Result};
use crate::graph::{Rate, SdfGraph};

/// Serializes `graph` to the DIF dialect.
pub fn to_dif(graph: &SdfGraph, name: &str) -> String {
    let mut out = format!("graph {name} {{\n");
    for (_, actor) in graph.actors() {
        out.push_str(&format!(
            "  actor {} exec {};\n",
            actor.name, actor.exec_cycles
        ));
    }
    for (_, e) in graph.edges() {
        let rate = |r: Rate| match r {
            Rate::Static(n) => n.to_string(),
            Rate::Dynamic { bound } => format!("dyn {bound}"),
        };
        out.push_str(&format!(
            "  edge {} -> {} produce {} consume {} delay {} bytes {};\n",
            graph.actor(e.src).name,
            graph.actor(e.dst).name,
            rate(e.produce),
            rate(e.consume),
            e.delay,
            e.token_bytes,
        ));
    }
    out.push_str("}\n");
    out
}

/// Parses the DIF dialect back into a graph.
///
/// # Errors
///
/// [`DataflowError::Parse`] with a line number and message on any
/// syntactic or referential problem (unknown actor names, duplicate
/// actors, malformed rates).
pub fn from_dif(text: &str) -> Result<SdfGraph> {
    let mut graph = SdfGraph::new();
    let mut actors: HashMap<String, crate::graph::ActorId> = HashMap::new();
    let mut in_graph = false;
    let mut closed = false;

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| DataflowError::Parse {
            line: lineno + 1,
            message,
        };

        if !in_graph {
            let mut toks = line.split_whitespace();
            if toks.next() != Some("graph") {
                return Err(err("expected `graph <name> {`".into()));
            }
            let _name = toks
                .next()
                .ok_or_else(|| err("missing graph name".into()))?;
            if toks.next() != Some("{") {
                return Err(err("expected `{` after graph name".into()));
            }
            in_graph = true;
            continue;
        }
        if line == "}" {
            closed = true;
            continue;
        }
        if closed {
            return Err(err("content after closing `}`".into()));
        }

        let line = line
            .strip_suffix(';')
            .ok_or_else(|| err("statements end with `;`".into()))?
            .trim();
        let mut toks = line.split_whitespace().peekable();
        match toks.next() {
            Some("actor") => {
                let name = toks
                    .next()
                    .ok_or_else(|| err("actor needs a name".into()))?
                    .to_string();
                if toks.next() != Some("exec") {
                    return Err(err("expected `exec <cycles>`".into()));
                }
                let cycles: u64 = toks
                    .next()
                    .ok_or_else(|| err("missing exec cycles".into()))?
                    .parse()
                    .map_err(|_| err("exec cycles must be an integer".into()))?;
                if actors.contains_key(&name) {
                    return Err(err(format!("duplicate actor `{name}`")));
                }
                let id = graph.add_actor(name.clone(), cycles);
                actors.insert(name, id);
            }
            Some("edge") => {
                let src_name = toks
                    .next()
                    .ok_or_else(|| err("edge needs a source".into()))?;
                if toks.next() != Some("->") {
                    return Err(err("expected `->`".into()));
                }
                let dst_name = toks
                    .next()
                    .ok_or_else(|| err("edge needs a destination".into()))?;
                let src = *actors
                    .get(src_name)
                    .ok_or_else(|| err(format!("unknown actor `{src_name}`")))?;
                let dst = *actors
                    .get(dst_name)
                    .ok_or_else(|| err(format!("unknown actor `{dst_name}`")))?;

                let mut produce = None;
                let mut consume = None;
                let mut delay = 0u64;
                let mut bytes = None;
                while let Some(key) = toks.next() {
                    let parse_rate = |toks: &mut std::iter::Peekable<std::str::SplitWhitespace>| -> Result<Rate> {
                        match toks.next() {
                            Some("dyn") => {
                                let bound: u32 = toks
                                    .next()
                                    .ok_or_else(|| err("`dyn` needs a bound".into()))?
                                    .parse()
                                    .map_err(|_| err("rate bound must be an integer".into()))?;
                                Ok(Rate::Dynamic { bound })
                            }
                            Some(tok) => Ok(Rate::Static(
                                tok.parse()
                                    .map_err(|_| err(format!("bad rate `{tok}`")))?,
                            )),
                            None => Err(err("missing rate value".into())),
                        }
                    };
                    match key {
                        "produce" => produce = Some(parse_rate(&mut toks)?),
                        "consume" => consume = Some(parse_rate(&mut toks)?),
                        "delay" => {
                            delay = toks
                                .next()
                                .ok_or_else(|| err("missing delay value".into()))?
                                .parse()
                                .map_err(|_| err("delay must be an integer".into()))?;
                        }
                        "bytes" => {
                            bytes = Some(
                                toks.next()
                                    .ok_or_else(|| err("missing bytes value".into()))?
                                    .parse::<u32>()
                                    .map_err(|_| err("bytes must be an integer".into()))?,
                            );
                        }
                        other => return Err(err(format!("unknown edge attribute `{other}`"))),
                    }
                }
                let produce = produce.ok_or_else(|| err("edge needs `produce`".into()))?;
                let consume = consume.ok_or_else(|| err("edge needs `consume`".into()))?;
                let bytes = bytes.ok_or_else(|| err("edge needs `bytes`".into()))?;
                graph
                    .add_edge_with_rates(src, dst, produce, consume, delay, bytes)
                    .map_err(|e| err(e.to_string()))?;
            }
            Some(other) => return Err(err(format!("unknown statement `{other}`"))),
            None => unreachable!("blank lines skipped"),
        }
    }
    if !in_graph || !closed {
        return Err(DataflowError::Parse {
            line: text.lines().count(),
            message: "unterminated graph block".into(),
        });
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# application 1, reduced
graph lpc {
  actor A exec 100;
  actor B exec 200;   # the FFT
  actor C exec 150;
  edge A -> B produce 2 consume 3 delay 1 bytes 4;
  edge B -> C produce dyn 10 consume dyn 8 bytes 4;
}
"#;

    #[test]
    fn parses_sample() {
        let g = from_dif(SAMPLE).unwrap();
        assert_eq!(g.actor_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let a = g.actor_by_name("A").unwrap();
        assert_eq!(g.actor(a).exec_cycles, 100);
        let (_, e0) = g.edges().next().unwrap();
        assert_eq!(e0.produce, Rate::Static(2));
        assert_eq!(e0.delay, 1);
        let dyn_edge = g.edges().nth(1).unwrap().1;
        assert_eq!(dyn_edge.produce, Rate::Dynamic { bound: 10 });
        assert_eq!(dyn_edge.consume, Rate::Dynamic { bound: 8 });
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = from_dif(SAMPLE).unwrap();
        let text = to_dif(&g, "lpc");
        let g2 = from_dif(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "graph g {\n  actor A exec ten;\n}\n";
        match from_dif(bad) {
            Err(DataflowError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("integer"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_actor_in_edge_rejected() {
        let bad = "graph g {\n  actor A exec 1;\n  edge A -> Z produce 1 consume 1 bytes 4;\n}\n";
        assert!(matches!(
            from_dif(bad),
            Err(DataflowError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn duplicate_actor_rejected() {
        let bad = "graph g {\n  actor A exec 1;\n  actor A exec 2;\n}\n";
        assert!(from_dif(bad).is_err());
    }

    #[test]
    fn missing_attributes_rejected() {
        let bad = "graph g {\n  actor A exec 1;\n  actor B exec 1;\n  edge A -> B produce 1 bytes 4;\n}\n";
        match from_dif(bad) {
            Err(DataflowError::Parse { message, .. }) => assert!(message.contains("consume")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(from_dif("graph g {\n actor A exec 1;\n").is_err());
        assert!(from_dif("").is_err());
    }

    #[test]
    fn delay_defaults_to_zero() {
        let g = from_dif(
            "graph g {\n actor A exec 1;\n actor B exec 1;\n edge A -> B produce 1 consume 1 bytes 4;\n}\n",
        )
        .unwrap();
        assert_eq!(g.edges().next().unwrap().1.delay, 0);
    }

    #[test]
    fn zero_rate_rejected_with_location() {
        let bad =
            "graph g {\n actor A exec 1;\n actor B exec 1;\n edge A -> B produce 0 consume 1 bytes 4;\n}\n";
        assert!(matches!(
            from_dif(bad),
            Err(DataflowError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn apps_graphs_roundtrip() {
        // Serialize a real application graph and parse it back.
        let mut g = SdfGraph::new();
        let a = g.add_actor("reader", 10);
        let b = g.add_actor("worker", 20);
        let c = g.add_actor("writer", 5);
        g.add_dynamic_edge(a, b, 64, 64, 0, 8).unwrap();
        g.add_edge(b, c, 4, 2, 2, 8).unwrap();
        let text = to_dif(&g, "demo");
        assert_eq!(from_dif(&text).unwrap(), g);
    }
}

//! Property-based tests of the dataflow crate's core invariants.

use proptest::prelude::*;

use spi_dataflow::loops::{buffer_memory, flat_single_appearance, optimal_chain_schedule};
use spi_dataflow::{
    dif, CsdfGraph, FirePolicy, PhaseRates, PrecedenceGraph, SdfGraph, VtsConversion,
};

/// Strategy: a random consistent chain graph with bounded rates/delays.
fn chain_strategy() -> impl Strategy<Value = SdfGraph> {
    prop::collection::vec((1u32..8, 1u32..8, 0u64..5), 1..6).prop_map(|spec| {
        let mut g = SdfGraph::new();
        let mut prev = g.add_actor("a0", 1 + spec.len() as u64);
        for (i, &(p, c, d)) in spec.iter().enumerate() {
            let next = g.add_actor(format!("a{}", i + 1), 2 + i as u64);
            g.add_edge(prev, next, p, c, d, 4).expect("valid edge");
            prev = next;
        }
        g
    })
}

proptest! {
    #[test]
    fn class_s_bounds_are_sufficient_for_replay(g in chain_strategy()) {
        // Any buffer sized to the class-S bound replays the schedule
        // without overflow.
        let report = g.class_s_schedule(FirePolicy::FewestFirings).expect("chains are live");
        let mut tokens: Vec<u64> = g.edges().map(|(_, e)| e.delay).collect();
        for &f in report.schedule.firings() {
            for e in g.in_edges(f) {
                tokens[e.0] -= u64::from(g.edge(e).consume.bound());
            }
            for e in g.out_edges(f) {
                tokens[e.0] += u64::from(g.edge(e).produce.bound());
                prop_assert!(tokens[e.0] <= report.bounds.bound(e));
            }
        }
    }

    #[test]
    fn precedence_expansion_covers_every_consumption(g in chain_strategy()) {
        // Every consumer firing's token demand is covered by delays plus
        // its precedence-edge producers.
        let pg = PrecedenceGraph::expand(&g).expect("consistent");
        for (eid, e) in g.edges() {
            let q = pg.repetitions();
            for j in 0..q[e.dst] {
                let firing = spi_dataflow::Firing { actor: e.dst, k: j };
                let producers = pg
                    .edges()
                    .iter()
                    .filter(|p| p.via == eid && p.to == firing)
                    .count() as u64;
                let demand = u64::from(e.consume.bound());
                let supply = producers * u64::from(e.produce.bound()) + e.delay;
                prop_assert!(
                    supply >= demand,
                    "firing {firing} demand {demand} supply {supply}"
                );
            }
        }
    }

    #[test]
    fn dif_roundtrips_random_graphs(g in chain_strategy()) {
        let text = dif::to_dif(&g, "random");
        let back = dif::from_dif(&text).expect("self-produced text parses");
        prop_assert_eq!(g, back);
    }

    #[test]
    fn vts_static_edges_identical_after_conversion(g in chain_strategy()) {
        let vts = VtsConversion::convert(&g).expect("no dynamic edges");
        prop_assert_eq!(vts.graph(), &g);
        prop_assert!(vts.converted_edges().is_empty());
    }

    #[test]
    fn optimal_chain_never_worse_than_flat(
        spec in prop::collection::vec((1u32..6, 1u32..6), 1..5)
    ) {
        // Delay-free chains: the DP schedule's measured memory must not
        // exceed the flat single-appearance schedule's.
        let mut g = SdfGraph::new();
        let mut prev = g.add_actor("a0", 1);
        for (i, &(p, c)) in spec.iter().enumerate() {
            let next = g.add_actor(format!("a{}", i + 1), 1);
            g.add_edge(prev, next, p, c, 0, 4).expect("edge");
            prev = next;
        }
        let flat = flat_single_appearance(&g).expect("acyclic");
        let opt = optimal_chain_schedule(&g).expect("chain");
        prop_assert!(opt.is_single_appearance());
        let m_flat = buffer_memory(&g, &flat).expect("valid");
        let m_opt = buffer_memory(&g, &opt).expect("valid");
        prop_assert!(m_opt <= m_flat, "opt {m_opt} > flat {m_flat}");
    }

    #[test]
    fn csdf_reduction_conserves_tokens(
        phases in prop::collection::vec(0u32..4, 1..5),
        consume in 1u32..6,
    ) {
        // Any phase vector with a positive sum must reduce to an SDF
        // graph whose per-cycle token flow matches the phase sums.
        let mut rates = phases;
        if rates.iter().all(|&r| r == 0) {
            rates[0] = 1;
        }
        let sum: u64 = rates.iter().map(|&r| u64::from(r)).sum();
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(
            a,
            b,
            PhaseRates::new(rates).expect("positive sum"),
            PhaseRates::constant(consume).expect("positive"),
            0,
            4,
        )
        .expect("edge");
        let sdf = g.to_sdf().expect("reducible");
        let edge = sdf.graph().edge(spi_dataflow::EdgeId(0));
        prop_assert_eq!(u64::from(edge.produce.bound()), sum);
        prop_assert_eq!(u64::from(edge.consume.bound()), u64::from(consume));
        // Balance holds in the reduction.
        let q = sdf.graph().repetition_vector().expect("consistent");
        prop_assert_eq!(
            q[a] * sum,
            q[b] * u64::from(consume)
        );
    }
}
